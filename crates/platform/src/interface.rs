//! The advertiser-facing platform interface.
//!
//! An [`AdPlatform`] bundles a universe, a catalog with materialised
//! attribute audiences, an interface policy ([`Capabilities`]) and a size
//! estimator ([`RoundingRule`]). Its advertiser-visible surface is
//! deliberately narrow — browse the catalog, validate a spec, request a
//! rounded reach estimate — because that is all the paper's methodology
//! (and any real advertiser) gets to see. Ground-truth accessors exist for
//! tests and ablations and are clearly marked.

use std::sync::Arc;
use std::time::Duration;

use adcomp_bitset::Bitset;
use adcomp_obs::metrics::{size_buckets, Counter, Histogram, Registry};
use adcomp_population::{AgeBucket, Gender, InferredView, Universe};
use adcomp_targeting::{
    evaluate, validate, AttributeId, AttributeResolver, Capabilities, EvalError, TargetingSpec,
    ValidationError,
};
use parking_lot::Mutex;

use crate::catalog::Catalog;
use crate::estimate::{EstimateKind, RoundingRule, SizeEstimate};
use crate::objective::{FrequencyCap, Objective};
use crate::ratelimit::QueryStats;

/// Which real-world interface a platform simulates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InterfaceKind {
    /// Facebook's normal ads interface.
    FacebookNormal,
    /// Facebook's restricted interface for special ad categories
    /// (housing, employment, credit).
    FacebookRestricted,
    /// Google Display campaigns.
    GoogleDisplay,
    /// LinkedIn campaign manager.
    LinkedIn,
}

impl InterfaceKind {
    /// Short label used in reports (matches the paper's figure captions).
    pub fn label(self) -> &'static str {
        match self {
            InterfaceKind::FacebookNormal => "Facebook",
            InterfaceKind::FacebookRestricted => "FB-restricted",
            InterfaceKind::GoogleDisplay => "Google",
            InterfaceKind::LinkedIn => "LinkedIn",
        }
    }
}

/// Static configuration of a platform interface.
#[derive(Clone, Debug)]
pub struct PlatformConfig {
    /// Which interface this simulates.
    pub kind: InterfaceKind,
    /// What the interface permits.
    pub capabilities: Capabilities,
    /// Size-estimate rounding ladder.
    pub rounding: RoundingRule,
    /// Users or impressions.
    pub estimate_kind: EstimateKind,
    /// Objectives the interface offers.
    pub supported_objectives: Vec<Objective>,
    /// The broadest-reach objective (what the audit selects).
    pub default_objective: Objective,
}

/// A reach-estimate request, as assembled by the targeting UI.
///
/// The spec is a [`Cow`](std::borrow::Cow) so the audit's hot path can
/// issue a request without cloning the `TargetingSpec` it already holds
/// ([`EstimateRequest::borrowed`]); callers that own their spec use
/// [`EstimateRequest::new`] as before.
#[derive(Clone, Debug, PartialEq)]
pub struct EstimateRequest<'a> {
    /// The targeting specification.
    pub spec: std::borrow::Cow<'a, TargetingSpec>,
    /// Campaign objective.
    pub objective: Objective,
    /// Frequency capping (only meaningful on impression platforms).
    pub frequency_cap: FrequencyCap,
}

impl EstimateRequest<'static> {
    /// Request owning the given spec, with the platform defaults the
    /// paper uses (broadest objective chosen by the caller, most
    /// restrictive frequency cap).
    pub fn new(spec: TargetingSpec, objective: Objective) -> Self {
        EstimateRequest {
            spec: std::borrow::Cow::Owned(spec),
            objective,
            frequency_cap: FrequencyCap::most_restrictive(),
        }
    }
}

impl<'a> EstimateRequest<'a> {
    /// Request borrowing the caller's spec — no clone per query, which
    /// matters when the audit issues hundreds of thousands of them.
    pub fn borrowed(spec: &'a TargetingSpec, objective: Objective) -> Self {
        EstimateRequest {
            spec: std::borrow::Cow::Borrowed(spec),
            objective,
            frequency_cap: FrequencyCap::most_restrictive(),
        }
    }
}

/// Advertiser-visible request failures.
#[derive(Clone, Debug, PartialEq)]
pub enum PlatformError {
    /// The spec violates the interface policy.
    Validation(ValidationError),
    /// The spec references unknown attributes (evaluation-time).
    Eval(EvalError),
    /// The objective is not offered by this interface.
    UnsupportedObjective(Objective),
    /// Too many requests; retry after the given duration.
    RateLimited {
        /// Suggested back-off.
        retry_after: Duration,
    },
    /// A transient server-side failure; safe to retry.
    Transient(String),
}

impl std::fmt::Display for PlatformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlatformError::Validation(e) => write!(f, "invalid targeting: {e}"),
            PlatformError::Eval(e) => write!(f, "evaluation failed: {e}"),
            PlatformError::UnsupportedObjective(o) => {
                write!(f, "objective '{o}' is not offered by this interface")
            }
            PlatformError::RateLimited { retry_after } => {
                write!(f, "rate limited; retry after {retry_after:?}")
            }
            PlatformError::Transient(msg) => write!(f, "transient failure: {msg}"),
        }
    }
}

impl std::error::Error for PlatformError {}

impl From<ValidationError> for PlatformError {
    fn from(e: ValidationError) -> Self {
        PlatformError::Validation(e)
    }
}

impl From<EvalError> for PlatformError {
    fn from(e: EvalError) -> Self {
        PlatformError::Eval(e)
    }
}

/// Per-platform instrument handles, resolved once at construction so the
/// estimate hot path never touches the registry mutex. Shared with the
/// segment-backed platform (`crate::segmented`), which instruments the
/// same counters under its own `platform` label.
pub(crate) struct PlatformMetrics {
    pub(crate) estimates: Arc<Counter>,
    pub(crate) validation_failures: Arc<Counter>,
    pub(crate) rate_limited: Arc<Counter>,
    pub(crate) rounding_applied: Arc<Counter>,
    pub(crate) estimate_size: Arc<Histogram>,
}

impl PlatformMetrics {
    pub(crate) fn for_kind(kind: InterfaceKind) -> Self {
        let reg = Registry::global();
        let labels: &[(&str, &str)] = &[("platform", kind.label())];
        PlatformMetrics {
            estimates: reg.counter_with("adcomp_platform_estimates_total", labels),
            validation_failures: reg
                .counter_with("adcomp_platform_validation_failures_total", labels),
            rate_limited: reg.counter_with("adcomp_platform_rate_limited_total", labels),
            rounding_applied: reg.counter_with("adcomp_platform_rounding_applied_total", labels),
            estimate_size: reg.histogram_with(
                "adcomp_platform_estimate_size",
                labels,
                size_buckets(),
            ),
        }
    }
}

/// One simulated advertising platform interface.
pub struct AdPlatform {
    config: PlatformConfig,
    universe: Arc<Universe>,
    catalog: Catalog,
    /// Materialised audience per catalog entry (same index as the id).
    audiences: Vec<Bitset>,
    /// For derived (restricted) interfaces: each attribute's id on the
    /// parent interface.
    parent_ids: Option<Vec<AttributeId>>,
    /// When present, demographic constraints resolve against this
    /// *inferred* view of the universe instead of ground truth — the
    /// platform classifies users rather than asking them. The oracle
    /// universe itself is untouched; only constraint resolution changes.
    inferred: Option<Arc<InferredView>>,
    stats: Mutex<QueryStats>,
    metrics: PlatformMetrics,
}

impl AdPlatform {
    /// Builds a platform, materialising every catalog audience.
    pub fn new(config: PlatformConfig, universe: Arc<Universe>, catalog: Catalog) -> AdPlatform {
        assert!(
            config
                .supported_objectives
                .contains(&config.default_objective),
            "default objective must be supported"
        );
        let audiences = catalog
            .entries()
            .iter()
            .map(|e| universe.materialize(&e.model))
            .collect();
        AdPlatform {
            metrics: PlatformMetrics::for_kind(config.kind),
            config,
            universe,
            catalog,
            audiences,
            parent_ids: None,
            inferred: None,
            stats: Mutex::new(QueryStats::default()),
        }
    }

    /// Rebuilds this platform with an inferred demographic view: gender
    /// and age constraints will resolve against `view`'s (noisy, possibly
    /// missing) labels instead of the universe's ground truth. Totals and
    /// attribute audiences are unchanged — the platform still serves every
    /// user; it just *classifies* them differently.
    pub fn with_inferred_view(mut self, view: Arc<InferredView>) -> AdPlatform {
        self.inferred = Some(view);
        self
    }

    /// The inferred demographic view, if one is attached.
    pub fn inferred_view(&self) -> Option<&Arc<InferredView>> {
        self.inferred.as_ref()
    }

    /// Builds a *derived* interface over the same universe as `parent`,
    /// with a catalog whose entries are a subset of the parent's
    /// (`parent_ids[i]` = id of entry `i` on the parent). Audiences are
    /// shared (cloned bitsets), not re-materialised.
    ///
    /// This models Facebook's restricted interface, which exposes a
    /// sanitized subset of the normal interface's options over the same
    /// user base.
    pub fn derived(
        config: PlatformConfig,
        parent: &AdPlatform,
        catalog: Catalog,
        parent_ids: Vec<AttributeId>,
    ) -> AdPlatform {
        assert_eq!(catalog.len(), parent_ids.len(), "one parent id per entry");
        let audiences = parent_ids
            .iter()
            .map(|pid| {
                parent
                    .audiences
                    .get(pid.0 as usize)
                    .unwrap_or_else(|| panic!("parent id #{} out of range", pid.0))
                    .clone()
            })
            .collect();
        AdPlatform {
            metrics: PlatformMetrics::for_kind(config.kind),
            config,
            universe: parent.universe.clone(),
            catalog,
            audiences,
            parent_ids: Some(parent_ids),
            inferred: parent.inferred.clone(),
            stats: Mutex::new(QueryStats::default()),
        }
    }

    /// The advertiser-visible reach estimate for a targeting request.
    ///
    /// This is the paper's primary measurement endpoint: validate the spec
    /// against the interface policy, compute the audience, scale to
    /// platform range (× frequency-cap multiplier on impression
    /// platforms), and round through the platform's ladder.
    pub fn reach_estimate(&self, request: &EstimateRequest) -> Result<SizeEstimate, PlatformError> {
        if !self
            .config
            .supported_objectives
            .contains(&request.objective)
        {
            return Err(PlatformError::UnsupportedObjective(request.objective));
        }
        if let Err(e) = validate(&request.spec, &self.config.capabilities, &self.catalog) {
            self.stats.lock().validation_failures += 1;
            self.metrics.validation_failures.inc();
            return Err(e.into());
        }
        let audience = evaluate(self, &request.spec)?;
        let mut value = audience.len() as f64 * self.universe.scale();
        if self.config.estimate_kind == EstimateKind::Impressions {
            value *= request.frequency_cap.impressions_multiplier();
        }
        self.stats.lock().estimates += 1;
        let raw = value.round() as u64;
        let rounded = self.config.rounding.apply(raw);
        self.metrics.estimates.inc();
        self.metrics.estimate_size.observe(rounded);
        if rounded != raw {
            self.metrics.rounding_applied.inc();
        }
        Ok(SizeEstimate {
            value: rounded,
            kind: self.config.estimate_kind,
        })
    }

    /// Validates a spec without estimating (the UI does this eagerly).
    pub fn check(&self, spec: &TargetingSpec) -> Result<(), PlatformError> {
        validate(spec, &self.config.capabilities, &self.catalog).map_err(Into::into)
    }

    /// The interface's catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Interface configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// Which interface this simulates.
    pub fn kind(&self) -> InterfaceKind {
        self.config.kind
    }

    /// Report label ("Facebook", "FB-restricted", …).
    pub fn label(&self) -> &'static str {
        self.config.kind.label()
    }

    /// For derived interfaces: the id of `id` on the parent interface.
    /// The audit uses this to re-express restricted-interface specs on the
    /// normal interface, which still offers age/gender targeting (paper
    /// §3: "we instead use the corresponding targeting option on
    /// Facebook's normal interface to measure the representation ratio").
    pub fn parent_id(&self, id: AttributeId) -> Option<AttributeId> {
        self.parent_ids
            .as_ref()
            .and_then(|ids| ids.get(id.0 as usize).copied())
    }

    /// Snapshot of the query counters.
    pub fn stats(&self) -> QueryStats {
        *self.stats.lock()
    }

    /// Record a rate-limited request (called by the serving layer).
    pub fn note_rate_limited(&self) {
        self.stats.lock().rate_limited += 1;
        self.metrics.rate_limited.inc();
    }

    // ------------------------------------------------------------------
    // Ground-truth access — NOT part of the advertiser-visible surface.
    // Used by tests, calibration, and the rounding ablation; the audit
    // pipeline never calls these.
    // ------------------------------------------------------------------

    /// Ground truth: the exact audience of a spec, bypassing interface
    /// policy (but not attribute existence).
    pub fn exact_audience(&self, spec: &TargetingSpec) -> Result<Bitset, PlatformError> {
        evaluate(self, spec).map_err(Into::into)
    }

    /// Ground truth: the materialised audience of catalog entry `idx`
    /// (index = attribute id). Used by the lookalike engine and tests.
    pub fn attribute_audience_raw(&self, idx: usize) -> Option<&Bitset> {
        self.audiences.get(idx)
    }

    /// Ground truth: the universe behind the interface.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// Ground truth: the shared universe handle (for building derived
    /// interfaces or cross-interface audits).
    pub fn universe_arc(&self) -> Arc<Universe> {
        self.universe.clone()
    }
}

impl AttributeResolver for AdPlatform {
    fn attribute_audience(&self, id: AttributeId) -> Option<&Bitset> {
        self.audiences.get(id.0 as usize)
    }
    fn universe(&self) -> &Universe {
        &self.universe
    }
    fn gender_audience(&self, gender: Gender) -> &Bitset {
        match &self.inferred {
            Some(view) => view.gender_audience(gender),
            None => self.universe.gender_audience(gender),
        }
    }
    fn age_audience(&self, age: AgeBucket) -> &Bitset {
        match &self.inferred {
            Some(view) => view.age_audience(age),
            None => self.universe.age_audience(age),
        }
    }
}

impl std::fmt::Debug for AdPlatform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdPlatform")
            .field("kind", &self.config.kind)
            .field("catalog", &self.catalog.len())
            .field("users", &self.universe.n_users())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{CategorySpec, SkewProfile};
    use adcomp_population::{DemographicProfile, Gender, UniverseConfig};
    use adcomp_targeting::FeatureId;

    fn test_platform(kind: InterfaceKind, caps: Capabilities) -> AdPlatform {
        let universe = Arc::new(Universe::generate(&UniverseConfig {
            n_users: 20_000,
            seed: 5,
            scale: 1_000.0,
            profile: DemographicProfile::balanced(),
        }));
        let catalog = Catalog::generate(
            5,
            &[
                CategorySpec {
                    name: "Games",
                    domain: "games",
                    feature: FeatureId(0),
                    count: 20,
                    skew: SkewProfile::neutral().lean_male(0.8),
                },
                CategorySpec {
                    name: "Topics",
                    domain: "media",
                    feature: FeatureId(1),
                    count: 20,
                    skew: SkewProfile::neutral(),
                },
            ],
        );
        let config = PlatformConfig {
            kind,
            capabilities: caps,
            rounding: RoundingRule::facebook(),
            estimate_kind: EstimateKind::Users,
            supported_objectives: vec![Objective::Reach, Objective::Traffic],
            default_objective: Objective::Reach,
        };
        AdPlatform::new(config, universe, catalog)
    }

    #[test]
    fn estimate_scales_and_rounds() {
        let p = test_platform(InterfaceKind::FacebookNormal, Capabilities::permissive());
        let spec = TargetingSpec::and_of([AttributeId(0)]);
        let exact = p.exact_audience(&spec).unwrap().len();
        let est = p
            .reach_estimate(&EstimateRequest::new(spec, Objective::Reach))
            .unwrap();
        assert_eq!(est.kind, EstimateKind::Users);
        assert_eq!(est.value, RoundingRule::facebook().apply(exact * 1_000));
        assert_eq!(p.stats().estimates, 1);
    }

    #[test]
    fn estimates_are_consistent_across_repeats() {
        // Paper §3: 100 back-to-back repeated calls return consistent
        // estimates on all platforms.
        let p = test_platform(InterfaceKind::FacebookNormal, Capabilities::permissive());
        let spec = TargetingSpec::and_of([AttributeId(1), AttributeId(2)]);
        let first = p.reach_estimate(&EstimateRequest::new(spec.clone(), Objective::Reach));
        for _ in 0..99 {
            assert_eq!(
                p.reach_estimate(&EstimateRequest::new(spec.clone(), Objective::Reach)),
                first
            );
        }
    }

    #[test]
    fn unsupported_objective_rejected() {
        let p = test_platform(InterfaceKind::FacebookNormal, Capabilities::permissive());
        let req = EstimateRequest::new(TargetingSpec::everyone(), Objective::BrandAwareness);
        assert_eq!(
            p.reach_estimate(&req),
            Err(PlatformError::UnsupportedObjective(
                Objective::BrandAwareness
            ))
        );
    }

    #[test]
    fn policy_violations_rejected_and_counted() {
        let p = test_platform(
            InterfaceKind::FacebookRestricted,
            Capabilities::restricted(),
        );
        let req = EstimateRequest::new(
            TargetingSpec::builder().gender(Gender::Male).build(),
            Objective::Reach,
        );
        assert!(matches!(
            p.reach_estimate(&req),
            Err(PlatformError::Validation(_))
        ));
        assert_eq!(p.stats().validation_failures, 1);
        assert_eq!(p.stats().estimates, 0);
    }

    #[test]
    fn derived_interface_shares_audiences_and_maps_parents() {
        let parent = test_platform(InterfaceKind::FacebookNormal, Capabilities::permissive());
        let (sub, parents) = parent.catalog().sanitized(10);
        let config = PlatformConfig {
            kind: InterfaceKind::FacebookRestricted,
            capabilities: Capabilities::restricted(),
            ..parent.config().clone()
        };
        let restricted = AdPlatform::derived(config, &parent, sub, parents);
        assert_eq!(restricted.catalog().len(), 10);
        for id in restricted.catalog().ids() {
            let parent_id = restricted.parent_id(id).unwrap();
            assert_eq!(
                restricted.attribute_audience(id).unwrap(),
                parent.attribute_audience(parent_id).unwrap(),
                "audience must be identical on both interfaces"
            );
        }
        // Same spec on both interfaces gives the same estimate value when
        // expressed in each one's ids.
        let rid = AttributeId(3);
        let pid = restricted.parent_id(rid).unwrap();
        let on_restricted = restricted
            .reach_estimate(&EstimateRequest::new(
                TargetingSpec::and_of([rid]),
                Objective::Reach,
            ))
            .unwrap();
        let on_parent = parent
            .reach_estimate(&EstimateRequest::new(
                TargetingSpec::and_of([pid]),
                Objective::Reach,
            ))
            .unwrap();
        assert_eq!(on_restricted, on_parent);
    }

    #[test]
    fn impressions_scale_with_frequency_cap() {
        let universe = Arc::new(Universe::generate(&UniverseConfig {
            n_users: 10_000,
            seed: 6,
            scale: 100.0,
            profile: DemographicProfile::balanced(),
        }));
        let catalog = Catalog::generate(
            6,
            &[CategorySpec {
                name: "Topics",
                domain: "media",
                feature: FeatureId(0),
                count: 5,
                skew: SkewProfile::neutral(),
            }],
        );
        let p = AdPlatform::new(
            PlatformConfig {
                kind: InterfaceKind::GoogleDisplay,
                capabilities: Capabilities::cross_feature_only(),
                rounding: RoundingRule::Exact,
                estimate_kind: EstimateKind::Impressions,
                supported_objectives: vec![Objective::BrandAwarenessAndReach],
                default_objective: Objective::BrandAwarenessAndReach,
            },
            universe,
            catalog,
        );
        let spec = TargetingSpec::and_of([AttributeId(0)]);
        let capped = EstimateRequest::new(spec.clone(), Objective::BrandAwarenessAndReach);
        let mut uncapped = capped.clone();
        uncapped.frequency_cap = FrequencyCap { per_month: 12 };
        let low = p.reach_estimate(&capped).unwrap().value;
        let high = p.reach_estimate(&uncapped).unwrap().value;
        assert_eq!(high, low * 12, "impressions scale with the cap");
        assert_eq!(
            p.reach_estimate(&capped).unwrap().kind,
            EstimateKind::Impressions
        );
    }

    #[test]
    fn unknown_attribute_surfaces_as_validation_error() {
        let p = test_platform(InterfaceKind::FacebookNormal, Capabilities::permissive());
        let req = EstimateRequest::new(TargetingSpec::and_of([AttributeId(999)]), Objective::Reach);
        assert!(matches!(
            p.reach_estimate(&req),
            Err(PlatformError::Validation(
                ValidationError::UnknownAttribute(_)
            ))
        ));
    }
}
