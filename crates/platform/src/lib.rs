//! Simulated advertising platforms.
//!
//! The paper audits the advertiser-visible side of Facebook (normal and
//! restricted interfaces), Google Display, and LinkedIn. Live access to
//! the 2020-era interfaces is gated, so this crate rebuilds that surface
//! over the synthetic universes of `adcomp-population`:
//!
//! * [`Catalog`] — browsable attribute catalogs of the paper's exact
//!   sizes (393/667 Facebook restricted/normal, 873 attributes + 2 424
//!   topics on Google, 552 on LinkedIn), each entry backed by a
//!   generative audience model;
//! * [`AdPlatform`] — validate a [`TargetingSpec`](adcomp_targeting::TargetingSpec)
//!   against the interface policy and return a **rounded**
//!   [`SizeEstimate`] exactly as the targeting UIs did (two significant
//!   digits with a 1 000 floor on Facebook; one-then-two digits with a 40
//!   floor on Google; two digits with a 300 floor on LinkedIn);
//! * [`Simulation`] — the calibrated four-interface bundle experiments
//!   run against;
//! * [`TokenBucket`]/[`QueryStats`] — the query-budget machinery the
//!   paper's ethics section describes.
//!
//! The audit pipeline in `adcomp-core` sees only this advertiser surface;
//! ground-truth accessors ([`AdPlatform::exact_audience`] and friends)
//! exist solely for tests and ablations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod api;
mod catalog;
mod custom_audience;
mod estimate;
mod faults;
mod interface;
mod lookalike;
mod names;
mod objective;
mod oracle;
mod presets;
mod ratelimit;
mod retry;
mod segmented;

pub use api::PlatformApi;
pub use catalog::{Catalog, CatalogEntry, CategorySpec, SkewProfile};
pub use custom_audience::{ContactHash, MatchedAudience};
pub use estimate::{round_significant, EstimateKind, RoundingRule, SizeEstimate};
pub use faults::{FaultKind, FaultPlan, FaultRule, FaultStats, FaultyPlatform, Schedule};
pub use interface::{AdPlatform, EstimateRequest, InterfaceKind, PlatformConfig, PlatformError};
pub use lookalike::{LookalikeConfig, LookalikeError, MIN_SEED};
pub use objective::{FrequencyCap, Objective};
pub use oracle::ReachOracle;
pub use presets::{
    build_facebook, build_facebook_restricted, build_google, build_linkedin, SimScale, Simulation,
};
pub use ratelimit::{QueryStats, TokenBucket};
pub use retry::{CircuitBreaker, CircuitState, RetryPolicy};
pub use segmented::SegmentedPlatform;
