//! Lookalike audiences and "Special Ad Audiences".
//!
//! The paper's background (§2.1–2.2): platforms let advertisers expand a
//! *seed* audience (from PII upload or site activity) to the users most
//! similar to it. On Facebook's restricted interface, Lookalike
//! Audiences are replaced by **Special Ad Audiences** — "adjusted to
//! comply with the audience selection restrictions" — which drop
//! demographic features from the similarity model but keep behavioural
//! ones.
//!
//! The simulator implements both:
//!
//! * the similarity model scores a candidate by weighted co-membership
//!   with the seed's most *characteristic* attributes (highest lift
//!   `P(a | seed) / P(a)`), the behavioural part;
//! * regular lookalikes add a demographic affinity bonus for matching
//!   the seed's majority gender/age, the part SAAs remove.
//!
//! Because attribute memberships themselves correlate with demographics
//! (that is the whole point of the paper), dropping the explicit
//! demographic features does **not** make the expansion neutral — a
//! seed of mostly-male users still expands to a mostly-male audience
//! through its characteristic attributes. The audit can measure exactly
//! how much skew survives the adjustment.

use adcomp_bitset::Bitset;

use crate::interface::AdPlatform;

/// Lookalike expansion parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LookalikeConfig {
    /// Output size as a multiple of the seed size (platforms offer 1–10 %
    /// of the country; we model it relative to the seed).
    pub expansion: f64,
    /// Number of characteristic attributes the similarity model uses.
    pub top_attributes: usize,
    /// Weight of the demographic affinity bonus (regular lookalikes).
    pub demographic_weight: f32,
    /// Special Ad Audience mode: drop the demographic features entirely.
    pub special_ad_audience: bool,
}

impl Default for LookalikeConfig {
    fn default() -> Self {
        LookalikeConfig {
            expansion: 5.0,
            top_attributes: 24,
            demographic_weight: 1.5,
            special_ad_audience: false,
        }
    }
}

impl LookalikeConfig {
    /// The restricted interface's variant.
    pub fn special_ad_audience() -> Self {
        LookalikeConfig {
            special_ad_audience: true,
            ..LookalikeConfig::default()
        }
    }
}

/// Errors specific to lookalike construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LookalikeError {
    /// The seed has too few users for a stable similarity model
    /// (platforms require ≥ 100).
    SeedTooSmall {
        /// Seed size provided.
        size: u64,
        /// Required minimum.
        minimum: u64,
    },
}

impl std::fmt::Display for LookalikeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LookalikeError::SeedTooSmall { size, minimum } => {
                write!(
                    f,
                    "seed audience of {size} users is below the minimum of {minimum}"
                )
            }
        }
    }
}

impl std::error::Error for LookalikeError {}

/// Minimum seed size (Facebook requires 100 matched users).
pub const MIN_SEED: u64 = 100;

impl AdPlatform {
    /// Expands `seed` into a lookalike audience.
    ///
    /// Deterministic: scores every non-seed user and keeps the
    /// `expansion × |seed|` highest, breaking ties by user id.
    pub fn lookalike(
        &self,
        seed: &Bitset,
        config: &LookalikeConfig,
    ) -> Result<Bitset, LookalikeError> {
        let seed_size = seed.len();
        if seed_size < MIN_SEED {
            return Err(LookalikeError::SeedTooSmall {
                size: seed_size,
                minimum: MIN_SEED,
            });
        }
        let universe = self.universe();
        let n = universe.n_users();

        // 1. Characteristic attributes: highest lift P(a|seed)/P(a).
        let mut lifts: Vec<(usize, f64)> = Vec::with_capacity(self.catalog().len());
        for (idx, id) in self.catalog().ids().enumerate() {
            let audience = self
                .attribute_audience_raw(idx)
                .unwrap_or_else(|| panic!("audience for {id:?}"));
            let in_seed = audience.intersection_len(seed);
            if in_seed == 0 {
                continue;
            }
            let p_given_seed = in_seed as f64 / seed_size as f64;
            let p = audience.len() as f64 / n as f64;
            if p > 0.0 {
                lifts.push((idx, p_given_seed / p));
            }
        }
        lifts.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite lifts")
                .then(a.0.cmp(&b.0))
        });
        lifts.truncate(config.top_attributes);

        // 2. Score candidates by weighted co-membership (log-lift weights).
        let mut scores = vec![0f32; n as usize];
        for &(idx, lift) in &lifts {
            let weight = (lift.max(1.0)).ln() as f32;
            if weight <= 0.0 {
                continue;
            }
            let audience = self.attribute_audience_raw(idx).expect("audience");
            for user in audience.iter() {
                scores[user as usize] += weight;
            }
        }

        // 3. Demographic affinity (regular lookalikes only): each user
        //    gains weight proportional to how over-represented their
        //    gender/age is in the seed relative to the platform base rate.
        //    A balanced seed therefore contributes no demographic signal.
        if !config.special_ad_audience && config.demographic_weight > 0.0 {
            use adcomp_population::{AgeBucket, Gender};
            for gender in Gender::ALL {
                let audience = universe.gender_audience(gender);
                let seed_rate = audience.intersection_len(seed) as f64 / seed_size as f64;
                let base_rate = audience.len() as f64 / n as f64;
                let excess = (seed_rate - base_rate) as f32;
                if excess > 0.0 {
                    for user in audience.iter() {
                        scores[user as usize] += config.demographic_weight * excess;
                    }
                }
            }
            for age in AgeBucket::ALL {
                let audience = universe.age_audience(age);
                let seed_rate = audience.intersection_len(seed) as f64 / seed_size as f64;
                let base_rate = audience.len() as f64 / n as f64;
                let excess = (seed_rate - base_rate) as f32;
                if excess > 0.0 {
                    for user in audience.iter() {
                        scores[user as usize] += config.demographic_weight * 0.5 * excess;
                    }
                }
            }
        }

        // 4. Top-k non-seed users, ties by id.
        let want = ((seed_size as f64 * config.expansion).round() as usize).min(n as usize);
        let mut candidates: Vec<u32> = (0..n).filter(|u| !seed.contains(*u)).collect();
        candidates.sort_by(|&a, &b| {
            scores[b as usize]
                .partial_cmp(&scores[a as usize])
                .expect("finite scores")
                .then(a.cmp(&b))
        });
        candidates.truncate(want);
        candidates.sort_unstable();
        Ok(Bitset::from_sorted_iter(candidates))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{SimScale, Simulation};
    use adcomp_population::Gender;
    use std::sync::OnceLock;

    fn sim() -> &'static Simulation {
        static SIM: OnceLock<Simulation> = OnceLock::new();
        SIM.get_or_init(|| Simulation::build(48, SimScale::Test))
    }

    /// A male-heavy seed: males holding a male-skewed attribute.
    fn male_seed() -> Bitset {
        let fb = &sim().facebook;
        let u = fb.universe();
        // Find a clearly male-skewed attribute to seed from.
        let males = u.gender_audience(Gender::Male);
        let females = u.gender_audience(Gender::Female);
        let best = fb
            .catalog()
            .ids()
            .max_by(|&a, &b| {
                let skew = |id: adcomp_targeting::AttributeId| {
                    let aud = fb.attribute_audience_raw(id.0 as usize).unwrap();
                    aud.intersection_len(males) as f64 / aud.intersection_len(females).max(1) as f64
                };
                skew(a).partial_cmp(&skew(b)).unwrap()
            })
            .unwrap();
        fb.attribute_audience_raw(best.0 as usize).unwrap().clone()
    }

    fn male_fraction(set: &Bitset) -> f64 {
        let u = sim().facebook.universe();
        set.intersection_len(u.gender_audience(Gender::Male)) as f64 / set.len() as f64
    }

    #[test]
    fn lookalike_has_requested_size_and_excludes_seed() {
        let seed = male_seed();
        let config = LookalikeConfig {
            expansion: 3.0,
            ..LookalikeConfig::default()
        };
        let lal = sim().facebook.lookalike(&seed, &config).unwrap();
        assert_eq!(lal.len(), (seed.len() as f64 * 3.0).round() as u64);
        assert!(
            lal.is_disjoint(&seed),
            "lookalike must not contain seed users"
        );
    }

    #[test]
    fn lookalike_replicates_seed_skew() {
        let seed = male_seed();
        let base_rate = male_fraction(sim().facebook.universe().everyone());
        let seed_rate = male_fraction(&seed);
        assert!(
            seed_rate > base_rate + 0.05,
            "seed must be male-heavy ({seed_rate})"
        );
        let lal = sim()
            .facebook
            .lookalike(&seed, &LookalikeConfig::default())
            .unwrap();
        let lal_rate = male_fraction(&lal);
        assert!(
            lal_rate > base_rate + 0.05,
            "lookalike must replicate skew: {lal_rate} vs base {base_rate}"
        );
    }

    #[test]
    fn special_ad_audience_reduces_but_does_not_remove_skew() {
        // The headline of the lookalike extension: dropping explicit
        // demographic features (the SAA "adjustment") leaves behavioural
        // leakage — attribute co-membership still carries gender.
        let seed = male_seed();
        let base_rate = male_fraction(sim().facebook.universe().everyone());
        let regular = sim()
            .facebook
            .lookalike(&seed, &LookalikeConfig::default())
            .unwrap();
        let saa = sim()
            .facebook
            .lookalike(&seed, &LookalikeConfig::special_ad_audience())
            .unwrap();
        let regular_rate = male_fraction(&regular);
        let saa_rate = male_fraction(&saa);
        assert!(
            saa_rate <= regular_rate + 1e-9,
            "adjustment must not increase skew ({saa_rate} vs {regular_rate})"
        );
        assert!(
            saa_rate > base_rate + 0.03,
            "behavioural leakage keeps the SAA skewed: {saa_rate} vs base {base_rate}"
        );
    }

    #[test]
    fn tiny_seed_rejected() {
        let seed: Bitset = (0..50u32).collect();
        let err = sim()
            .facebook
            .lookalike(&seed, &LookalikeConfig::default())
            .unwrap_err();
        assert_eq!(
            err,
            LookalikeError::SeedTooSmall {
                size: 50,
                minimum: MIN_SEED
            }
        );
        assert!(err.to_string().contains("50"));
    }

    #[test]
    fn lookalike_is_deterministic() {
        let seed = male_seed();
        let a = sim()
            .facebook
            .lookalike(&seed, &LookalikeConfig::default())
            .unwrap();
        let b = sim()
            .facebook
            .lookalike(&seed, &LookalikeConfig::default())
            .unwrap();
        assert_eq!(a, b);
    }
}
