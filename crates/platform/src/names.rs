//! Deterministic generation of human-readable attribute names.
//!
//! The real catalogs contain entries like *"Interests — Electrical
//! engineering"* or *"Gamers — Shooter Game Fans"* (paper Tables 2–3).
//! Synthetic catalogs reproduce that shape: every attribute is named
//! `"<Category> — <Phrase>"`, with phrases drawn from per-domain word
//! pools and extended with qualifiers when a category needs more entries
//! than its pool holds. Generation is deterministic and collision-free.

/// Qualifiers appended to base phrases when a category's pool runs out.
const QUALIFIERS: &[&str] = &[
    "Fans",
    "Enthusiasts",
    "Beginners",
    "Professionals",
    "News",
    "Magazines",
    "Equipment",
    "Accessories",
    "Events",
    "Clubs",
    "Communities",
    "Courses",
    "Tutorials",
    "Reviews",
    "Deals",
    "Brands",
    "Collectors",
    "Culture",
    "History",
    "Trends",
    "Startups",
    "Services",
    "Supplies",
    "Workshops",
];

/// A lazily expanding pool of distinct phrases for one category.
pub(crate) struct NamePool {
    base: &'static [&'static str],
}

impl NamePool {
    pub(crate) fn new(base: &'static [&'static str]) -> Self {
        assert!(!base.is_empty(), "name pool needs at least one phrase");
        NamePool { base }
    }

    /// Number of distinct names this pool can produce.
    pub(crate) fn capacity(&self) -> usize {
        self.base.len() * (1 + QUALIFIERS.len())
    }

    /// The `i`-th distinct phrase: bare phrases first, then
    /// phrase–qualifier combinations.
    pub(crate) fn phrase(&self, i: usize) -> String {
        let n = self.base.len();
        if i < n {
            self.base[i].to_string()
        } else {
            let j = i - n;
            let qualifier = QUALIFIERS[(j / n) % QUALIFIERS.len()];
            format!("{} {}", self.base[j % n], qualifier)
        }
    }
}

/// Word pools keyed by domain; shared across platforms so the same domain
/// produces the same flavour of names everywhere.
pub(crate) fn pool(domain: &str) -> NamePool {
    let base: &'static [&'static str] = match domain {
        "interests" => &[
            "Electrical engineering",
            "Mechanical engineering",
            "Cars",
            "Sedans",
            "Hatchbacks",
            "Sports cars",
            "Automobile repair",
            "Computer engineering",
            "Interior design",
            "Epidemiology",
            "Veterinary medicine",
            "Multi-level marketing",
            "Product design",
            "Grocery stores",
            "Credit monitoring",
            "Mortgage calculators",
            "Reverse mortgages",
            "Life insurance",
            "Home equity",
            "Government debt",
            "Data security",
            "Fundraising",
            "Vocational education",
            "Entry-level jobs",
            "Apartment hunting",
            "Moving services",
            "Microcredit",
            "Income tax",
            "Consumer reports",
            "Living rooms",
            "Bungalows",
            "Buy to let",
        ],
        "games" => &[
            "Strategy games",
            "Racing games",
            "Shooter games",
            "Massively multiplayer online games",
            "Tile games",
            "Sports games",
            "Puzzle games",
            "Card games",
            "Board games",
            "Role-playing games",
            "Arcade games",
            "Simulation games",
            "Platformers",
            "Fighting games",
            "Trivia games",
            "Word games",
        ],
        "industries" => &[
            "Military",
            "Construction and Extraction",
            "Education and Libraries",
            "Community and Social Services",
            "Healthcare and Medical",
            "Legal Services",
            "Transportation and Moving",
            "Sales",
            "Management",
            "Administrative Services",
            "Arts and Entertainment",
            "Farming and Fishing",
            "Installation and Repair",
            "Food and Restaurants",
            "IT and Technical Services",
            "Cleaning and Maintenance",
            "Production",
            "Protective Services",
        ],
        "beauty" => &[
            "Cosmetics",
            "Hair products",
            "Eye makeup",
            "Skin care",
            "Anti-aging products",
            "Fragrances",
            "Nail care",
            "Salons",
            "Spas",
            "Hair styling",
            "Natural beauty",
            "Beauty boxes",
        ],
        "shopping" => &[
            "Boutiques",
            "Children's clothing",
            "Discount stores",
            "Luxury goods",
            "Coupons",
            "Online shopping",
            "Department stores",
            "Handbags",
            "Shoes",
            "Jewelry",
            "Watches",
            "Home decor",
        ],
        "family" => &[
            "Parenting",
            "Toddlers",
            "Motherhood",
            "Fatherhood",
            "Weddings",
            "Engagement",
            "Family vacations",
            "Childcare",
            "Adoption",
            "Grandparenting",
        ],
        "vehicles" => &[
            "Custom vehicles",
            "Performance vehicles",
            "Luxury vehicles",
            "Motorcycles",
            "Trucks",
            "Electric vehicles",
            "Classic cars",
            "Car audio",
            "Off-road vehicles",
            "Auto racing",
            "Car shows",
            "Vehicle leasing",
        ],
        "food" => &[
            "Greek cuisine",
            "South American cuisine",
            "Grains and pasta",
            "Baking",
            "Grilling",
            "Vegetarian cuisine",
            "Coffee",
            "Tea",
            "Wine",
            "Craft beer",
            "Desserts",
            "Street food",
            "Seafood",
            "Barbecue",
        ],
        "crafts" => &[
            "Art and craft supplies",
            "Fiber and textile arts",
            "Woodworking",
            "Scrapbooking",
            "Knitting",
            "Pottery",
            "Painting",
            "Drawing",
            "Quilting",
            "Jewelry making",
        ],
        "tech" => &[
            "Chips and processors",
            "Hardware modding",
            "Operating systems",
            "Linux",
            "CPUs",
            "Graphics cards",
            "Mechanical keyboards",
            "Home networking",
            "Smart home",
            "3D printing",
            "Drones",
            "Virtual reality",
            "Cloud computing",
            "Cybersecurity",
        ],
        "sports" => &[
            "Soccer",
            "Volleyball",
            "Kickboxing",
            "Japanese martial arts",
            "Table tennis",
            "Basketball",
            "Baseball",
            "Running",
            "Cycling",
            "Swimming",
            "Yoga",
            "Weightlifting",
            "Rock climbing",
            "Golf",
            "Tennis",
        ],
        "finance" => &[
            "Retirement planning",
            "Life insurance",
            "Corporate financial planning",
            "Stock trading",
            "Savings accounts",
            "Credit cards",
            "Student loans",
            "Tax preparation",
            "Estate planning",
            "Cryptocurrencies",
            "Budgeting",
            "Mutual funds",
        ],
        "jobs" => &[
            "Engineering",
            "Accounting",
            "Consulting",
            "Operations",
            "Administrative",
            "Marketing",
            "Human resources",
            "Information technology",
            "Business development",
            "Customer support",
            "Research",
            "Design",
            "Legal",
            "Purchasing",
            "Quality assurance",
        ],
        "seniority" => &[
            "CXO",
            "Vice president",
            "Director",
            "Manager",
            "Senior contributor",
            "Entry level",
            "Owner",
            "Partner",
            "Training",
            "Unpaid",
        ],
        "education" => &[
            "Some high school",
            "High school graduates",
            "In college",
            "College graduates",
            "Master's degrees",
            "Doctorates",
            "Alumni and reunions",
            "Online degrees",
            "Trade schools",
            "Continuing education",
        ],
        "lifestyle" => &[
            "Frequent travelers",
            "Expats",
            "Homeowners",
            "Renters",
            "Newlyweds",
            "Retiring soon",
            "Job seekers",
            "Small business owners",
            "Pet owners",
            "Gardeners",
            "Volunteers",
            "Commuters",
        ],
        "media" => &[
            "Classic films",
            "Manga",
            "Fan fiction",
            "Documentaries",
            "Podcasts",
            "Reality television",
            "Science fiction",
            "True crime",
            "Animation",
            "Live music",
            "Opera",
            "Stand-up comedy",
        ],
        _ => panic!("unknown name domain: {domain}"),
    };
    NamePool::new(base)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phrases_are_distinct_up_to_capacity() {
        let p = pool("games");
        let cap = p.capacity();
        let mut seen = std::collections::HashSet::new();
        for i in 0..cap {
            assert!(
                seen.insert(p.phrase(i)),
                "duplicate at {i}: {}",
                p.phrase(i)
            );
        }
    }

    #[test]
    fn bare_phrases_come_first() {
        let p = pool("interests");
        assert_eq!(p.phrase(0), "Electrical engineering");
        assert!(p.phrase(0).split(' ').count() <= 3);
        // Past the pool, qualifiers appear.
        let extended = p.phrase(p.base.len());
        assert!(extended.ends_with("Fans"), "got {extended}");
    }

    #[test]
    fn all_domains_resolve() {
        for d in [
            "interests",
            "games",
            "industries",
            "beauty",
            "shopping",
            "family",
            "vehicles",
            "food",
            "crafts",
            "tech",
            "sports",
            "finance",
            "jobs",
            "seniority",
            "education",
            "lifestyle",
            "media",
        ] {
            assert!(pool(d).capacity() > 100, "domain {d} too small");
        }
    }

    #[test]
    #[should_panic(expected = "unknown name domain")]
    fn unknown_domain_panics() {
        let _ = pool("nope");
    }
}
