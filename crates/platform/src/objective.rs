//! Campaign objectives and Google's frequency capping.
//!
//! The paper selects the objective with the broadest reach on each
//! platform ("Reach" on Facebook, "Brand awareness and reach" on Google,
//! "Brand awareness" on LinkedIn) and pins Google's frequency cap to its
//! most restrictive value so that the impressions estimate approximates a
//! user count (§3, "Measuring audience sizes").

use serde::{Deserialize, Serialize};

/// Campaign objectives across the three platforms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Objective {
    /// Facebook "Reach".
    Reach,
    /// Google "Brand awareness and reach" (Display).
    BrandAwarenessAndReach,
    /// LinkedIn "Brand awareness".
    BrandAwareness,
    /// Facebook/Google "Traffic" (narrower delivery; supported but not
    /// used by the audit).
    Traffic,
    /// Facebook "Conversions" (narrower delivery).
    Conversions,
}

impl std::fmt::Display for Objective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Objective::Reach => "Reach",
            Objective::BrandAwarenessAndReach => "Brand awareness and reach",
            Objective::BrandAwareness => "Brand awareness",
            Objective::Traffic => "Traffic",
            Objective::Conversions => "Conversions",
        })
    }
}

/// Google's per-user frequency capping setting: how many times the same
/// user may see the ad per month. The impressions estimate scales with
/// it; the paper pins it to 1 ("one impression across the campaign every
/// month per-user") so the estimate approximates unique users.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FrequencyCap {
    /// Max impressions per user per month.
    pub per_month: u32,
}

impl FrequencyCap {
    /// The paper's setting: one impression per user per month.
    pub fn most_restrictive() -> Self {
        FrequencyCap { per_month: 1 }
    }

    /// Google's default when the advertiser sets no cap (the UI then
    /// estimates several impressions per user per month).
    pub fn platform_default() -> Self {
        FrequencyCap { per_month: 12 }
    }

    /// Multiplier applied to the unique-user count to obtain the
    /// theoretical impressions estimate.
    pub fn impressions_multiplier(&self) -> f64 {
        self.per_month as f64
    }
}

impl Default for FrequencyCap {
    fn default() -> Self {
        FrequencyCap::most_restrictive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_match_ui_labels() {
        assert_eq!(Objective::Reach.to_string(), "Reach");
        assert_eq!(
            Objective::BrandAwarenessAndReach.to_string(),
            "Brand awareness and reach"
        );
        assert_eq!(Objective::BrandAwareness.to_string(), "Brand awareness");
    }

    #[test]
    fn frequency_cap_scales_impressions() {
        assert_eq!(
            FrequencyCap::most_restrictive().impressions_multiplier(),
            1.0
        );
        assert!(
            FrequencyCap::platform_default().impressions_multiplier()
                > FrequencyCap::most_restrictive().impressions_multiplier()
        );
        assert_eq!(FrequencyCap::default(), FrequencyCap::most_restrictive());
    }
}
