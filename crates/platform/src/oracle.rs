//! Ground-truth reach oracles for bounded composition search.
//!
//! The greedy discovery of `adcomp-core` measures every sampled candidate
//! with seven estimate queries and then discards the ones below the
//! min-reach floor. Most of that work is wasted when the floor is high:
//! `|A ∧ B| ≤ min(|A|, |B|)`, so a candidate whose smallest member is
//! already below the floor can never pass, and a thresholded intersection
//! can decide the reach test without materialising the intersection or
//! touching demographics at all.
//!
//! [`ReachOracle`] is that decision surface. It answers three questions —
//! an attribute's exact audience size, the audience size a given rounded
//! estimate requires, and whether an AND of attributes reaches a size
//! threshold — and nothing else, so the search in `adcomp-core` stays
//! byte-identical to the greedy scan: the oracle only *rules out*
//! candidates that the measurement filter would rule out anyway, and
//! every surviving candidate is still measured through the ordinary
//! estimate path.
//!
//! Implementations must be **consistent with the platform's estimates**:
//! `and_reaches(attrs, min_len_for_estimate(m))` must be `true` exactly
//! when the platform's rounded estimate of `AND(attrs)` is `≥ m`. Both
//! implementations here derive from the same audience bitsets and the
//! same rounding ladder the estimate path uses, so the equivalence is
//! structural. When an oracle cannot decide (I/O failure on a
//! segment-backed store, unknown attribute), it must err on the side of
//! `true` — an over-approximation only costs a measurement, never an
//! output difference.

use adcomp_targeting::AttributeId;

use crate::estimate::EstimateKind;
use crate::interface::{AdPlatform, PlatformConfig};
use crate::objective::FrequencyCap;

/// Answers reach-threshold questions about AND-compositions from ground
/// truth, without issuing advertiser-visible estimate queries.
pub trait ReachOracle: Send + Sync {
    /// Exact audience size of a single catalog attribute, or `None` for
    /// an unknown id.
    fn attribute_len(&self, id: AttributeId) -> Option<u64>;

    /// The smallest exact audience length whose advertiser-visible
    /// estimate is `≥ min_estimate` (under the platform's default
    /// request settings). Returns `n_users + 1` when no length qualifies.
    fn min_len_for_estimate(&self, min_estimate: u64) -> u64;

    /// Whether `|AND(attrs)| ≥ threshold_len`. Must return `true` when
    /// undecidable (unknown attribute, storage failure).
    fn and_reaches(&self, attrs: &[AttributeId], threshold_len: u64) -> bool;
}

/// The advertiser-visible estimate a platform would report for an exact
/// audience length, under the default request settings the audit uses
/// ([`FrequencyCap::most_restrictive`]). This is the same
/// scale-multiply-round pipeline as `reach_estimate`, expressed as a pure
/// function of the length.
pub(crate) fn estimate_for_len(config: &PlatformConfig, scale: f64, len: u64) -> u64 {
    let mut value = len as f64 * scale;
    if config.estimate_kind == EstimateKind::Impressions {
        value *= FrequencyCap::most_restrictive().impressions_multiplier();
    }
    config.rounding.apply(value.round() as u64)
}

/// Smallest length in `0..=n_users` whose estimate is `≥ min_estimate`,
/// or `n_users + 1` when even the full universe falls short. Binary
/// search is exact because [`estimate_for_len`] is monotone in `len`
/// (positive scale, monotone rounding ladder).
pub(crate) fn min_len_reaching(
    config: &PlatformConfig,
    scale: f64,
    n_users: u64,
    min_estimate: u64,
) -> u64 {
    if estimate_for_len(config, scale, n_users) < min_estimate {
        return n_users + 1;
    }
    let (mut lo, mut hi) = (0u64, n_users);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if estimate_for_len(config, scale, mid) >= min_estimate {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

impl ReachOracle for AdPlatform {
    fn attribute_len(&self, id: AttributeId) -> Option<u64> {
        self.attribute_audience_raw(id.0 as usize).map(|a| a.len())
    }

    fn min_len_for_estimate(&self, min_estimate: u64) -> u64 {
        min_len_reaching(
            self.config(),
            self.universe().scale(),
            self.universe().n_users() as u64,
            min_estimate,
        )
    }

    fn and_reaches(&self, attrs: &[AttributeId], threshold_len: u64) -> bool {
        let mut audiences = Vec::with_capacity(attrs.len());
        for &id in attrs {
            match self.attribute_audience_raw(id.0 as usize) {
                Some(a) => audiences.push(a),
                None => return true, // undecidable: let measurement decide
            }
        }
        match audiences.len() {
            0 => self.universe().n_users() as u64 >= threshold_len,
            1 => audiences[0].len() >= threshold_len,
            _ => {
                // Smallest operands first: the running intersection
                // shrinks fastest and the upper bound fails earliest.
                audiences.sort_by_key(|a| a.len());
                if audiences[0].len() < threshold_len {
                    return false;
                }
                let mut acc = None;
                for pair in 0..audiences.len() - 1 {
                    let next = audiences[pair + 1];
                    let last = pair + 1 == audiences.len() - 1;
                    match acc {
                        None if last => {
                            return audiences[0].intersection_len_at_least(next, threshold_len)
                        }
                        None => acc = Some(audiences[0].and(next)),
                        Some(cur) if last => {
                            return cur.intersection_len_at_least(next, threshold_len)
                        }
                        Some(cur) => {
                            let cur = cur.and(next);
                            if cur.len() < threshold_len {
                                return false;
                            }
                            acc = Some(cur);
                        }
                    }
                }
                unreachable!("arity ≥ 2 always returns from the final pair")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, CategorySpec, SkewProfile};
    use crate::estimate::RoundingRule;
    use crate::interface::{EstimateRequest, InterfaceKind};
    use crate::objective::Objective;
    use adcomp_population::{DemographicProfile, Universe, UniverseConfig};
    use adcomp_targeting::{Capabilities, FeatureId, TargetingSpec};
    use std::sync::Arc;

    fn platform(rounding: RoundingRule, scale: f64) -> AdPlatform {
        let universe = Arc::new(Universe::generate(&UniverseConfig {
            n_users: 30_000,
            seed: 11,
            scale,
            profile: DemographicProfile::balanced(),
        }));
        let catalog = Catalog::generate(
            11,
            &[CategorySpec {
                name: "Games",
                domain: "games",
                feature: FeatureId(0),
                count: 12,
                skew: SkewProfile::neutral().lean_male(0.5),
            }],
        );
        AdPlatform::new(
            PlatformConfig {
                kind: InterfaceKind::FacebookNormal,
                capabilities: Capabilities::permissive(),
                rounding,
                estimate_kind: EstimateKind::Users,
                supported_objectives: vec![Objective::Reach],
                default_objective: Objective::Reach,
            },
            universe,
            catalog,
        )
    }

    #[test]
    fn threshold_inverts_the_estimate_exactly() {
        for (rounding, scale) in [
            (RoundingRule::facebook(), 1_000.0),
            (RoundingRule::google(), 37.5),
            (RoundingRule::linkedin(), 250.0),
            (RoundingRule::Exact, 1.0),
        ] {
            let p = platform(rounding, scale);
            let n = p.universe().n_users() as u64;
            for min_estimate in [1u64, 300, 10_000, 1_000_000, u64::MAX / 2] {
                let t = p.min_len_for_estimate(min_estimate);
                // t is the exact boundary: len ≥ t ⟺ estimate ≥ min.
                if t > 0 && t <= n {
                    assert!(
                        estimate_for_len(p.config(), scale, t - 1) < min_estimate,
                        "{rounding:?} min {min_estimate}: t={t} not minimal"
                    );
                }
                if t <= n {
                    assert!(
                        estimate_for_len(p.config(), scale, t) >= min_estimate,
                        "{rounding:?} min {min_estimate}: t={t} does not reach"
                    );
                } else {
                    assert!(estimate_for_len(p.config(), scale, n) < min_estimate);
                }
            }
        }
    }

    #[test]
    fn and_reaches_agrees_with_measured_estimates() {
        let p = platform(RoundingRule::facebook(), 1_000.0);
        let min_reach = 10_000u64;
        let t = p.min_len_for_estimate(min_reach);
        for a in 0..6u32 {
            for b in (a + 1)..6u32 {
                let pair = [AttributeId(a), AttributeId(b)];
                let spec = TargetingSpec::and_of(pair);
                let est = p
                    .reach_estimate(&EstimateRequest::new(spec, Objective::Reach))
                    .unwrap()
                    .value;
                assert_eq!(
                    p.and_reaches(&pair, t),
                    est >= min_reach,
                    "pair ({a},{b}): estimate {est}"
                );
            }
        }
    }

    #[test]
    fn and_reaches_handles_degenerate_inputs() {
        let p = platform(RoundingRule::facebook(), 1_000.0);
        let n = p.universe().n_users() as u64;
        assert!(p.and_reaches(&[], n));
        assert!(!p.and_reaches(&[], n + 1));
        let single = [AttributeId(0)];
        let len = p.attribute_len(AttributeId(0)).unwrap();
        assert!(p.and_reaches(&single, len));
        assert!(!p.and_reaches(&single, len + 1));
        // Unknown attribute: undecidable, must not prune.
        assert!(p.and_reaches(&[AttributeId(0), AttributeId(9_999)], u64::MAX));
        // Triples exercise the materialising path.
        let triple = [AttributeId(0), AttributeId(1), AttributeId(2)];
        let exact = p
            .exact_audience(&TargetingSpec::and_of(triple))
            .unwrap()
            .len();
        assert!(p.and_reaches(&triple, exact));
        assert!(!p.and_reaches(&triple, exact + 1));
    }
}
