//! Calibrated platform presets.
//!
//! One constructor per studied interface, with demographic priors, catalog
//! composition and scale factors chosen so the *shape* of the paper's
//! findings reproduces (see DESIGN.md §5 for the calibration targets):
//!
//! * Facebook: 667 attributes, user base slightly female-skewed, total
//!   ≈ 220 M US users at paper scale.
//! * FB-restricted: the 393 least demographically loaded of Facebook's
//!   attributes, same user base, restricted capabilities.
//! * Google: 873 affinity attributes + 2 424 placement topics (two
//!   features; AND only across features), impressions estimates, total
//!   in the billions of monthly impressions.
//! * LinkedIn: 552 attributes, male- and older-skewed professional user
//!   base, ≈ 170 M US members.

use std::sync::Arc;

use adcomp_population::{AttributeInference, DemographicProfile, Universe, UniverseConfig};
use adcomp_targeting::{Capabilities, FeatureId};

use crate::catalog::{Catalog, CategorySpec, SkewProfile};
use crate::estimate::{EstimateKind, RoundingRule};
use crate::interface::{AdPlatform, InterfaceKind, PlatformConfig};
use crate::objective::Objective;

/// How big a simulation to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimScale {
    /// Small universes and catalogs for unit/integration tests
    /// (hundreds of attributes, tens of thousands of users).
    Test,
    /// Full paper-scale catalogs (393/667, 873+2424, 552) and universes
    /// large enough for stable tail percentiles.
    Paper,
}

impl SimScale {
    fn catalog_factor(self) -> f64 {
        match self {
            SimScale::Test => 0.12,
            SimScale::Paper => 1.0,
        }
    }

    fn users(self, paper_users: u32) -> u32 {
        match self {
            SimScale::Test => (paper_users / 10).max(10_000),
            SimScale::Paper => paper_users,
        }
    }

    /// Scale factor preserving the platform-range totals regardless of
    /// simulated user count.
    fn scale(self, paper_users: u32, per_user: f64) -> f64 {
        paper_users as f64 * per_user / self.users(paper_users) as f64
    }
}

fn scaled(count: u32, factor: f64) -> u32 {
    ((count as f64 * factor).round() as u32).max(4)
}

/// The full four-interface simulation the experiments run against.
pub struct Simulation {
    /// Facebook's normal interface.
    pub facebook: Arc<AdPlatform>,
    /// Facebook's restricted (special ad category) interface; shares
    /// Facebook's universe and maps attributes onto it via
    /// [`AdPlatform::parent_id`].
    pub facebook_restricted: Arc<AdPlatform>,
    /// Google Display.
    pub google: Arc<AdPlatform>,
    /// LinkedIn.
    pub linkedin: Arc<AdPlatform>,
}

impl Simulation {
    /// Builds all four interfaces deterministically from one seed.
    pub fn build(seed: u64, scale: SimScale) -> Simulation {
        Simulation::build_inferred(seed, scale, None)
    }

    /// Builds all four interfaces, optionally attaching an inferred
    /// demographic view to each.
    ///
    /// With `Some(inference)`, every platform classifies its own universe
    /// through the inference model (each draws from streams salted by its
    /// universe seed, so the per-platform noise realisations are
    /// independent), and demographic targeting resolves against the
    /// resulting noisy/missing labels. The restricted interface inherits
    /// Facebook's view, mirroring how it shares Facebook's universe. With
    /// `None` this is exactly [`Simulation::build`].
    pub fn build_inferred(
        seed: u64,
        scale: SimScale,
        inference: Option<&AttributeInference>,
    ) -> Simulation {
        let attach = |platform: AdPlatform| match inference {
            Some(model) => {
                let view = Arc::new(model.view(platform.universe()));
                platform.with_inferred_view(view)
            }
            None => platform,
        };
        let facebook = Arc::new(attach(build_facebook(seed, scale)));
        // Derived *after* the view is attached so it inherits it.
        let facebook_restricted = Arc::new(build_facebook_restricted(&facebook, scale));
        let google = Arc::new(attach(build_google(seed ^ 0x6006, scale)));
        let linkedin = Arc::new(attach(build_linkedin(seed ^ 0x11, scale)));
        Simulation {
            facebook,
            facebook_restricted,
            google,
            linkedin,
        }
    }

    /// The four interfaces in the paper's presentation order.
    pub fn interfaces(&self) -> [&Arc<AdPlatform>; 4] {
        [
            &self.facebook_restricted,
            &self.facebook,
            &self.google,
            &self.linkedin,
        ]
    }
}

/// Paper-scale Facebook user count (≈ US monthly actives, 2020).
const FB_USERS: u32 = 220_000;
/// Paper-scale Google user count.
const GOOGLE_USERS: u32 = 250_000;
/// Paper-scale LinkedIn member count.
const LINKEDIN_USERS: u32 = 170_000;

/// Facebook's normal interface: 667 attributes over a slightly
/// female-skewed user base of ≈ 220 M.
pub fn build_facebook(seed: u64, scale: SimScale) -> AdPlatform {
    let universe = Arc::new(Universe::generate(&UniverseConfig {
        n_users: scale.users(FB_USERS),
        seed: seed ^ 0xFB,
        scale: scale.scale(FB_USERS, 1_000.0),
        profile: DemographicProfile {
            male_fraction: 0.46,
            age_weights: [0.22, 0.28, 0.30, 0.20],
            gender_signal: 0.55,
            age_signal: 0.65,
        },
    }));
    let f = scale.catalog_factor();
    let feat = FeatureId(0);
    let n = SkewProfile::neutral;
    let specs = [
        CategorySpec {
            name: "Interests",
            domain: "interests",
            feature: feat,
            count: scaled(100, f),
            skew: n(),
        },
        CategorySpec {
            name: "Games",
            domain: "games",
            feature: feat,
            count: scaled(55, f),
            skew: n().lean_male(0.5).lean_old(-0.25),
        },
        CategorySpec {
            name: "Industries",
            domain: "industries",
            feature: feat,
            count: scaled(70, f),
            skew: n().lean_male(0.18),
        },
        CategorySpec {
            name: "Beauty",
            domain: "beauty",
            feature: feat,
            count: scaled(45, f),
            skew: n().lean_male(-0.6),
        },
        CategorySpec {
            name: "Shopping",
            domain: "shopping",
            feature: feat,
            count: scaled(55, f),
            skew: n().lean_male(-0.4),
        },
        CategorySpec {
            name: "Family and relationships",
            domain: "family",
            feature: feat,
            count: scaled(50, f),
            skew: n().lean_male(-0.3).lean_old(0.1),
        },
        CategorySpec {
            name: "Vehicles",
            domain: "vehicles",
            feature: feat,
            count: scaled(50, f),
            skew: n().lean_male(0.5),
        },
        CategorySpec {
            name: "Consumer electronics",
            domain: "tech",
            feature: feat,
            count: scaled(50, f),
            skew: n().lean_male(0.45).lean_old(-0.15),
        },
        CategorySpec {
            name: "Sports",
            domain: "sports",
            feature: feat,
            count: scaled(45, f),
            skew: n().lean_male(0.3).lean_old(-0.1),
        },
        CategorySpec {
            name: "Entertainment",
            domain: "media",
            feature: feat,
            count: scaled(27, f),
            skew: n(),
        },
        CategorySpec {
            name: "Finance",
            domain: "finance",
            feature: feat,
            count: scaled(40, f),
            skew: n().lean_old(0.35),
        },
        CategorySpec {
            name: "Education",
            domain: "education",
            feature: feat,
            count: scaled(30, f),
            skew: n().lean_old(-0.35),
        },
        CategorySpec {
            name: "Lifestyle",
            domain: "lifestyle",
            feature: feat,
            count: scaled(50, f),
            skew: n().lean_old(0.18),
        },
    ];
    let catalog = Catalog::generate(seed ^ 0xCAFB, &specs);
    AdPlatform::new(
        PlatformConfig {
            kind: InterfaceKind::FacebookNormal,
            capabilities: Capabilities::permissive(),
            rounding: RoundingRule::facebook(),
            estimate_kind: EstimateKind::Users,
            supported_objectives: vec![
                Objective::Reach,
                Objective::Traffic,
                Objective::Conversions,
            ],
            default_objective: Objective::Reach,
        },
        universe,
        catalog,
    )
}

/// Facebook's restricted interface, derived from the normal one: the 393
/// least demographically loaded attributes (paper-scale), no age/gender
/// targeting, no exclusions.
pub fn build_facebook_restricted(facebook: &AdPlatform, scale: SimScale) -> AdPlatform {
    // Keep the same sanitisation ratio the real interfaces had
    // (393 of 667 ≈ 59 %).
    let keep = match scale {
        SimScale::Paper => 393.min(facebook.catalog().len()),
        SimScale::Test => (facebook.catalog().len() * 393).div_euclid(667),
    };
    let (catalog, parents) = facebook.catalog().sanitized(keep);
    AdPlatform::derived(
        PlatformConfig {
            kind: InterfaceKind::FacebookRestricted,
            capabilities: Capabilities::restricted(),
            rounding: RoundingRule::facebook(),
            estimate_kind: EstimateKind::Users,
            supported_objectives: vec![Objective::Reach, Objective::Traffic],
            default_objective: Objective::Reach,
        },
        facebook,
        catalog,
        parents,
    )
}

/// Google Display: 873 affinity attributes (feature 0) + 2 424 placement
/// topics (feature 1); impressions estimates; composition only across
/// features.
pub fn build_google(seed: u64, scale: SimScale) -> AdPlatform {
    let universe = Arc::new(Universe::generate(&UniverseConfig {
        n_users: scale.users(GOOGLE_USERS),
        seed: seed ^ 0x600613,
        // Per-user multiplier 9600 puts totals in the billions of monthly
        // impressions, matching the magnitudes in the paper's Fig. 5.
        scale: scale.scale(GOOGLE_USERS, 9_600.0),
        profile: DemographicProfile {
            male_fraction: 0.49,
            age_weights: [0.16, 0.24, 0.33, 0.27],
            gender_signal: 0.5,
            age_signal: 0.7,
        },
    }));
    let f = scale.catalog_factor();
    let attrs = FeatureId(0);
    let topics = FeatureId(1);
    let n = SkewProfile::neutral;
    let specs = [
        // Affinity attributes (873 at paper scale).
        CategorySpec {
            name: "Gamers",
            domain: "games",
            feature: attrs,
            count: scaled(120, f),
            skew: n().lean_male(0.55).lean_old(-0.1),
        },
        CategorySpec {
            name: "Makeup & Cosmetics",
            domain: "beauty",
            feature: attrs,
            count: scaled(90, f),
            skew: n().lean_male(-0.6).lean_old(0.1),
        },
        CategorySpec {
            name: "Autos & Vehicles",
            domain: "vehicles",
            feature: attrs,
            count: scaled(110, f),
            skew: n().lean_male(0.55).lean_old(0.15),
        },
        CategorySpec {
            name: "Sports & Fitness",
            domain: "sports",
            feature: attrs,
            count: scaled(100, f),
            skew: n().lean_male(0.25),
        },
        CategorySpec {
            name: "Food & Dining",
            domain: "food",
            feature: attrs,
            count: scaled(110, f),
            skew: n().lean_male(-0.2).lean_old(0.18),
        },
        CategorySpec {
            name: "Crafts",
            domain: "crafts",
            feature: attrs,
            count: scaled(80, f),
            skew: n().lean_male(-0.45).lean_old(0.28),
        },
        CategorySpec {
            name: "Computers & Electronics",
            domain: "tech",
            feature: attrs,
            count: scaled(100, f),
            skew: n().lean_male(0.45).lean_old(-0.05),
        },
        CategorySpec {
            name: "Education",
            domain: "education",
            feature: attrs,
            count: scaled(60, f),
            skew: n().lean_old(-0.25),
        },
        CategorySpec {
            name: "Lifestyles & Hobbies",
            domain: "lifestyle",
            feature: attrs,
            count: scaled(103, f),
            skew: n().lean_old(0.35),
        },
        // Placement topics (2424 at paper scale).
        CategorySpec {
            name: "Topics/Arts & Entertainment",
            domain: "media",
            feature: topics,
            count: scaled(300, f),
            skew: n().lean_old(0.15),
        },
        CategorySpec {
            name: "Topics/Food & Drink",
            domain: "food",
            feature: topics,
            count: scaled(300, f),
            skew: n().lean_male(-0.15).lean_old(0.18),
        },
        CategorySpec {
            name: "Topics/Computers",
            domain: "tech",
            feature: topics,
            count: scaled(324, f),
            skew: n().lean_male(0.4),
        },
        CategorySpec {
            name: "Topics/Sports",
            domain: "sports",
            feature: topics,
            count: scaled(300, f),
            skew: n().lean_male(0.3).lean_old(0.07),
        },
        CategorySpec {
            name: "Topics/Autos",
            domain: "vehicles",
            feature: topics,
            count: scaled(300, f),
            skew: n().lean_male(0.5).lean_old(0.18),
        },
        CategorySpec {
            name: "Topics/Finance",
            domain: "finance",
            feature: topics,
            count: scaled(300, f),
            skew: n().lean_old(0.42),
        },
        CategorySpec {
            name: "Topics/Hobbies & Leisure",
            domain: "crafts",
            feature: topics,
            count: scaled(250, f),
            skew: n().lean_male(-0.3).lean_old(0.32),
        },
        CategorySpec {
            name: "Topics/Games",
            domain: "games",
            feature: topics,
            count: scaled(350, f),
            skew: n().lean_male(0.5).lean_old(-0.15),
        },
    ];
    let catalog = Catalog::generate(seed ^ 0xCA60, &specs);
    AdPlatform::new(
        PlatformConfig {
            kind: InterfaceKind::GoogleDisplay,
            capabilities: Capabilities::cross_feature_only(),
            rounding: RoundingRule::google(),
            estimate_kind: EstimateKind::Impressions,
            supported_objectives: vec![Objective::BrandAwarenessAndReach, Objective::Traffic],
            default_objective: Objective::BrandAwarenessAndReach,
        },
        universe,
        catalog,
    )
}

/// LinkedIn: 552 attributes over a male- and older-skewed professional
/// member base of ≈ 170 M.
pub fn build_linkedin(seed: u64, scale: SimScale) -> AdPlatform {
    let universe = Arc::new(Universe::generate(&UniverseConfig {
        n_users: scale.users(LINKEDIN_USERS),
        seed: seed ^ 0x11D1,
        scale: scale.scale(LINKEDIN_USERS, 1_000.0),
        profile: DemographicProfile {
            male_fraction: 0.56,
            age_weights: [0.20, 0.33, 0.32, 0.15],
            gender_signal: 0.65,
            age_signal: 0.7,
        },
    }));
    let f = scale.catalog_factor();
    let feat = FeatureId(0);
    let n = SkewProfile::neutral;
    let specs = [
        CategorySpec {
            name: "Job Functions",
            domain: "jobs",
            feature: feat,
            count: scaled(90, f),
            skew: n().lean_male(0.25).lean_old(0.1),
        },
        CategorySpec {
            name: "Industries",
            domain: "industries",
            feature: feat,
            count: scaled(80, f),
            skew: n().lean_male(0.3).lean_old(0.07),
        },
        CategorySpec {
            name: "Job Seniorities",
            domain: "seniority",
            feature: feat,
            count: scaled(40, f),
            skew: n().lean_male(0.35).lean_old(0.5),
        },
        CategorySpec {
            name: "Education",
            domain: "education",
            feature: feat,
            count: scaled(50, f),
            skew: n().lean_old(-0.15),
        },
        CategorySpec {
            name: "Technology",
            domain: "tech",
            feature: feat,
            count: scaled(70, f),
            skew: n().lean_male(0.55).lean_old(-0.05),
        },
        CategorySpec {
            name: "Corporate Finance",
            domain: "finance",
            feature: feat,
            count: scaled(60, f),
            skew: n().lean_male(0.18).lean_old(0.35),
        },
        CategorySpec {
            name: "Member Traits",
            domain: "lifestyle",
            feature: feat,
            count: scaled(82, f),
            skew: n().lean_old(0.07),
        },
        CategorySpec {
            name: "Interests",
            domain: "media",
            feature: feat,
            count: scaled(40, f),
            skew: n(),
        },
        CategorySpec {
            name: "Consumer Goods",
            domain: "shopping",
            feature: feat,
            count: scaled(40, f),
            skew: n().lean_male(-0.4),
        },
    ];
    let catalog = Catalog::generate(seed ^ 0xCA11, &specs);
    AdPlatform::new(
        PlatformConfig {
            kind: InterfaceKind::LinkedIn,
            capabilities: Capabilities::permissive(),
            rounding: RoundingRule::linkedin(),
            estimate_kind: EstimateKind::Users,
            supported_objectives: vec![Objective::BrandAwareness, Objective::Traffic],
            default_objective: Objective::BrandAwareness,
        },
        universe,
        catalog,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcomp_population::Gender;
    use adcomp_targeting::TargetingSpec;

    use crate::interface::EstimateRequest;

    #[test]
    fn test_scale_builds_all_interfaces() {
        let sim = Simulation::build(1, SimScale::Test);
        assert_eq!(sim.facebook.kind(), InterfaceKind::FacebookNormal);
        assert_eq!(
            sim.facebook_restricted.kind(),
            InterfaceKind::FacebookRestricted
        );
        assert_eq!(sim.google.kind(), InterfaceKind::GoogleDisplay);
        assert_eq!(sim.linkedin.kind(), InterfaceKind::LinkedIn);
        // Restricted shares Facebook's universe.
        assert_eq!(
            sim.facebook_restricted.universe().n_users(),
            sim.facebook.universe().n_users()
        );
        // Sanitisation ratio ≈ 393/667.
        let ratio =
            sim.facebook_restricted.catalog().len() as f64 / sim.facebook.catalog().len() as f64;
        assert!((ratio - 393.0 / 667.0).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn catalog_sizes_at_paper_scale_match_the_paper() {
        // Only constructing catalogs (not platforms) keeps this fast.
        let f = SimScale::Paper.catalog_factor();
        assert_eq!(f, 1.0);
        // Facebook: 667 total.
        let fb: u32 = [100, 55, 70, 45, 55, 50, 50, 50, 45, 27, 40, 30, 50]
            .iter()
            .sum();
        assert_eq!(fb, 667);
        // Google: 873 attributes + 2424 topics.
        let ga: u32 = [120, 90, 110, 100, 110, 80, 100, 60, 103].iter().sum();
        let gt: u32 = [300, 300, 324, 300, 300, 300, 250, 350].iter().sum();
        assert_eq!(ga, 873);
        assert_eq!(gt, 2424);
        // LinkedIn: 552.
        let li: u32 = [90, 80, 40, 50, 70, 60, 82, 40, 40].iter().sum();
        assert_eq!(li, 552);
    }

    #[test]
    fn platform_demographic_leans_match_paper_direction() {
        let sim = Simulation::build(2, SimScale::Test);
        // LinkedIn's member base is male-skewed, Facebook's female-skewed.
        let male_frac = |p: &AdPlatform| {
            p.universe().gender_audience(Gender::Male).len() as f64 / p.universe().n_users() as f64
        };
        assert!(male_frac(&sim.linkedin) > 0.53);
        assert!(male_frac(&sim.facebook) < 0.48);
        // Google/LinkedIn user bases skew older than Facebook's.
        let young_frac = |p: &AdPlatform| {
            p.universe()
                .age_audience(adcomp_population::AgeBucket::A18_24)
                .len() as f64
                / p.universe().n_users() as f64
        };
        assert!(young_frac(&sim.google) < young_frac(&sim.facebook));
    }

    #[test]
    fn inferred_views_change_demographic_resolution_only() {
        let oracle = Simulation::build(5, SimScale::Test);
        let inference = AttributeInference::noisy(9, 0.2, 0.2).with_missingness(0.3, 2, 1.0);
        let inferred = Simulation::build_inferred(5, SimScale::Test, Some(&inference));
        // The restricted interface inherits Facebook's attached view.
        assert!(inferred.facebook.inferred_view().is_some());
        assert!(inferred.facebook_restricted.inferred_view().is_some());
        for (a, b) in oracle.interfaces().iter().zip(inferred.interfaces().iter()) {
            // Unconstrained totals are untouched: the platform still
            // serves every user, classified or not.
            let everyone =
                EstimateRequest::new(TargetingSpec::everyone(), a.config().default_objective);
            assert_eq!(
                a.reach_estimate(&everyone).unwrap(),
                b.reach_estimate(&everyone).unwrap(),
                "{} total drifted under inference",
                a.label()
            );
        }
        // Demographically constrained reach shrinks under missingness:
        // unobserved users match no gender constraint.
        let spec = TargetingSpec::builder().gender(Gender::Female).build();
        let req = EstimateRequest::new(spec, Objective::Reach);
        let truth = oracle.facebook.reach_estimate(&req).unwrap().value;
        let noisy = inferred.facebook.reach_estimate(&req).unwrap().value;
        assert!(noisy < truth, "inferred {noisy} vs oracle {truth}");
        // A zero-error inference is indistinguishable from ground truth.
        let identity = AttributeInference::oracle(9);
        let same = Simulation::build_inferred(5, SimScale::Test, Some(&identity));
        assert_eq!(same.facebook.reach_estimate(&req).unwrap().value, truth);
    }

    #[test]
    fn default_objectives_work_everywhere() {
        let sim = Simulation::build(3, SimScale::Test);
        for p in sim.interfaces() {
            let req = EstimateRequest::new(TargetingSpec::everyone(), p.config().default_objective);
            let est = p.reach_estimate(&req).unwrap();
            assert!(est.value > 0, "{} returned zero reach", p.label());
        }
    }

    #[test]
    fn totals_land_in_platform_range() {
        let sim = Simulation::build(4, SimScale::Test);
        let total = |p: &AdPlatform| {
            p.reach_estimate(&EstimateRequest::new(
                TargetingSpec::everyone(),
                p.config().default_objective,
            ))
            .unwrap()
            .value
        };
        let fb = total(&sim.facebook);
        assert!(
            (150_000_000..=300_000_000).contains(&fb),
            "facebook total {fb}"
        );
        let go = total(&sim.google);
        assert!(go > 1_000_000_000, "google impressions total {go}");
        let li = total(&sim.linkedin);
        assert!(
            (100_000_000..=250_000_000).contains(&li),
            "linkedin total {li}"
        );
    }
}
