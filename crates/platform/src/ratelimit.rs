//! Query accounting and rate limiting.
//!
//! The paper's ethics section notes the authors "minimized the load placed
//! on the ad platforms by limiting both the count and rate of API queries".
//! The simulated platforms expose the same machinery: a token-bucket rate
//! limiter (enforced by the wire service) and per-endpoint query counters
//! that experiments report alongside their results.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use adcomp_obs::metrics::{duration_us_buckets, Counter, Histogram, Registry};
use serde::{Deserialize, Serialize};

/// Queries denied by the token bucket, process-wide.
fn denied_total() -> &'static Counter {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| Registry::global().counter("adcomp_ratelimit_denied_total"))
}

/// Advertised back-off on denial (what a well-behaved client waits).
fn wait_us() -> &'static Histogram {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| {
        Registry::global().histogram("adcomp_ratelimit_wait_us", duration_us_buckets())
    })
}

/// Token bucket with explicit time injection (deterministic in tests).
#[derive(Clone, Debug)]
pub struct TokenBucket {
    /// Tokens added per second.
    rate: f64,
    /// Maximum tokens held.
    burst: f64,
    /// Current tokens.
    tokens: f64,
    /// Timestamp of the last refill.
    last: Duration,
}

impl TokenBucket {
    /// A bucket allowing `rate` requests per second with bursts of up to
    /// `burst`.
    ///
    /// # Panics
    /// Panics when `rate <= 0` or `burst < 1`.
    pub fn new(rate: f64, burst: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        assert!(burst >= 1.0, "burst must allow at least one request");
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            last: Duration::ZERO,
        }
    }

    /// Attempts to take one token at time `now` (monotonic, relative to an
    /// arbitrary epoch). Returns `true` when the request is admitted.
    ///
    /// # Panics
    /// Panics when `now` moves backwards.
    pub fn try_acquire(&mut self, now: Duration) -> bool {
        assert!(now >= self.last, "time went backwards");
        let elapsed = (now - self.last).as_secs_f64();
        self.tokens = (self.tokens + elapsed * self.rate).min(self.burst);
        self.last = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            denied_total().inc();
            wait_us().observe_duration(self.retry_after(now));
            false
        }
    }

    /// Time until the next token becomes available, from `now`.
    pub fn retry_after(&self, now: Duration) -> Duration {
        let elapsed = (now.saturating_sub(self.last)).as_secs_f64();
        let tokens = (self.tokens + elapsed * self.rate).min(self.burst);
        if tokens >= 1.0 {
            Duration::ZERO
        } else {
            Duration::from_secs_f64((1.0 - tokens) / self.rate)
        }
    }
}

/// Counters of advertiser-visible API activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryStats {
    /// Successful reach-estimate queries.
    pub estimates: u64,
    /// Queries rejected by validation.
    pub validation_failures: u64,
    /// Queries rejected by rate limiting.
    pub rate_limited: u64,
}

impl QueryStats {
    /// Total requests observed.
    pub fn total(&self) -> u64 {
        self.estimates + self.validation_failures + self.rate_limited
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> Duration {
        Duration::from_millis(ms)
    }

    #[test]
    fn burst_then_deny() {
        let mut b = TokenBucket::new(10.0, 3.0);
        assert!(b.try_acquire(at(0)));
        assert!(b.try_acquire(at(0)));
        assert!(b.try_acquire(at(0)));
        assert!(!b.try_acquire(at(0)), "burst exhausted");
    }

    #[test]
    fn refills_over_time() {
        let mut b = TokenBucket::new(10.0, 1.0); // 1 token / 100 ms
        assert!(b.try_acquire(at(0)));
        assert!(!b.try_acquire(at(50)));
        assert!(b.try_acquire(at(150)));
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut b = TokenBucket::new(1000.0, 2.0);
        assert!(b.try_acquire(at(0)));
        // A long pause must not accumulate more than `burst` tokens.
        for _ in 0..2 {
            assert!(b.try_acquire(at(10_000)));
        }
        assert!(!b.try_acquire(at(10_000)));
    }

    #[test]
    fn retry_after_is_consistent() {
        let mut b = TokenBucket::new(10.0, 1.0);
        assert!(b.try_acquire(at(0)));
        let wait = b.retry_after(at(0));
        assert!(wait > Duration::ZERO && wait <= Duration::from_millis(100));
        // Waiting the advertised time admits the next request.
        assert!(b.try_acquire(at(0) + wait + Duration::from_millis(1)));
        assert_eq!(b.retry_after(at(100_000)), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn non_monotonic_time_panics() {
        let mut b = TokenBucket::new(1.0, 1.0);
        let _ = b.try_acquire(at(100));
        let _ = b.try_acquire(at(50));
    }

    #[test]
    fn denials_are_counted() {
        let denied_before = denied_total().get();
        let waits_before = wait_us().count();
        let mut b = TokenBucket::new(10.0, 1.0);
        assert!(b.try_acquire(at(0)));
        assert!(!b.try_acquire(at(0)));
        assert!(denied_total().get() > denied_before);
        assert!(wait_us().count() > waits_before);
    }

    #[test]
    fn stats_total() {
        let s = QueryStats {
            estimates: 5,
            validation_failures: 2,
            rate_limited: 1,
        };
        assert_eq!(s.total(), 8);
    }
}
