//! Retry and circuit-breaking primitives for unreliable platforms.
//!
//! Real measurement campaigns run for days against APIs that throttle,
//! hiccup, and drop connections. The paper's scripts survived by being
//! polite and persistent; this module packages that discipline:
//!
//! * [`RetryPolicy`] — bounded exponential backoff with *deterministic*
//!   jitter, honouring a server-provided `retry_after` hint;
//! * [`CircuitBreaker`] — stops hammering an endpoint after consecutive
//!   failures, admitting a probe request once a cooldown elapses.
//!
//! Both follow the [`TokenBucket`](crate::TokenBucket) idiom of explicit
//! time injection: callers pass monotonic [`Duration`]s relative to an
//! arbitrary epoch, so every schedule is reproducible in tests without a
//! clock.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use adcomp_obs::metrics::{Counter, Registry};

/// `adcomp_circuit_transitions_total{to}` — every breaker in the process
/// reports into the same three counters (breakers are plentiful and
/// short-lived; what matters operationally is how often the fleet trips).
fn transitions_to(state: &'static str) -> &'static Counter {
    static OPEN: OnceLock<Arc<Counter>> = OnceLock::new();
    static HALF_OPEN: OnceLock<Arc<Counter>> = OnceLock::new();
    static CLOSED: OnceLock<Arc<Counter>> = OnceLock::new();
    let cell = match state {
        "open" => &OPEN,
        "half_open" => &HALF_OPEN,
        _ => &CLOSED,
    };
    cell.get_or_init(|| {
        Registry::global().counter_with("adcomp_circuit_transitions_total", &[("to", state)])
    })
}

/// SplitMix64 — the same deterministic mixer the audit RNG seeds with.
fn mix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Bounded exponential backoff with deterministic jitter.
///
/// The delay before retry `attempt` (0-based) is
/// `base · 2^attempt`, capped at `max_backoff`, then jittered down by up
/// to `jitter` (a fraction in `[0, 1]`) using a hash of `seed` and the
/// attempt number — deterministic, so tests can assert exact schedules,
/// but distinct across seeds so a fleet of clients does not thunder in
/// lockstep. A server-provided `retry_after` hint acts as a floor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Maximum retries after the initial attempt.
    pub max_retries: u32,
    /// Delay before the first retry.
    pub base: Duration,
    /// Upper bound on any single delay (pre-jitter).
    pub max_backoff: Duration,
    /// Fraction of the delay randomised away (`0.0` = none).
    pub jitter: f64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl RetryPolicy {
    /// A sensible audit-client default: 5 retries, 50 ms → 1.6 s
    /// exponential, 20 % jitter.
    pub fn standard(seed: u64) -> Self {
        RetryPolicy {
            max_retries: 5,
            base: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            jitter: 0.2,
            seed,
        }
    }

    /// No retries at all (fail on first error).
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter: 0.0,
            seed: 0,
        }
    }

    /// Fast schedule for tests: tiny delays, no jitter.
    pub fn fast(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            base: Duration::from_millis(1),
            max_backoff: Duration::from_millis(8),
            jitter: 0.0,
            seed: 0,
        }
    }

    /// Whether another retry is allowed after `attempt` failures.
    pub fn should_retry(&self, attempt: u32) -> bool {
        attempt < self.max_retries
    }

    /// The delay before retry `attempt` (0-based), honouring an optional
    /// server `retry_after` hint as a floor.
    pub fn backoff(&self, attempt: u32, retry_after: Option<Duration>) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_backoff);
        let jittered = if self.jitter > 0.0 {
            // Deterministic fraction in [0, 1) from (seed, attempt).
            let frac = (mix(self.seed ^ u64::from(attempt)) >> 11) as f64 / (1u64 << 53) as f64;
            exp.mul_f64(1.0 - self.jitter * frac)
        } else {
            exp
        };
        match retry_after {
            Some(hint) => jittered.max(hint),
            None => jittered,
        }
    }
}

/// Circuit-breaker states, reported by [`CircuitBreaker::state`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CircuitState {
    /// Requests flow normally.
    Closed,
    /// Requests are rejected until the cooldown elapses.
    Open,
    /// Cooldown elapsed; one probe request is admitted.
    HalfOpen,
}

/// Trips after `threshold` *consecutive* failures and rejects requests
/// for `cooldown`; then admits a single probe whose outcome closes or
/// re-opens the circuit. Time is injected explicitly ([`TokenBucket`]
/// style), so the breaker is deterministic under test.
///
/// [`TokenBucket`]: crate::TokenBucket
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    consecutive_failures: u32,
    /// When open: the instant the cooldown ends.
    open_until: Option<Duration>,
    /// A half-open probe is in flight.
    probing: bool,
}

impl CircuitBreaker {
    /// A breaker tripping after `threshold` consecutive failures, backing
    /// off for `cooldown` each time it opens.
    ///
    /// # Panics
    /// Panics when `threshold` is zero.
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        assert!(threshold > 0, "threshold must admit at least one failure");
        CircuitBreaker {
            threshold,
            cooldown,
            consecutive_failures: 0,
            open_until: None,
            probing: false,
        }
    }

    /// The state at time `now`.
    pub fn state(&self, now: Duration) -> CircuitState {
        match self.open_until {
            None => CircuitState::Closed,
            Some(until) if now >= until => CircuitState::HalfOpen,
            Some(_) => CircuitState::Open,
        }
    }

    /// Asks permission to issue a request at time `now`. `Err` carries
    /// the time remaining until the next probe is admitted. In the
    /// half-open state only one probe is admitted per cooldown window.
    pub fn check(&mut self, now: Duration) -> Result<(), Duration> {
        match self.open_until {
            None => Ok(()),
            Some(until) if now >= until => {
                if self.probing {
                    Err(self.cooldown)
                } else {
                    self.probing = true;
                    transitions_to("half_open").inc();
                    Ok(())
                }
            }
            Some(until) => Err(until - now),
        }
    }

    /// Records a successful request: closes the circuit.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        if self.open_until.take().is_some() {
            transitions_to("closed").inc();
        }
        self.probing = false;
    }

    /// Records a failed request at time `now`; trips the circuit once
    /// the consecutive-failure threshold is reached (a failed half-open
    /// probe re-opens immediately).
    pub fn record_failure(&mut self, now: Duration) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        if self.probing || self.consecutive_failures >= self.threshold {
            self.open_until = Some(now + self.cooldown);
            self.probing = false;
            transitions_to("open").inc();
        }
    }

    /// Consecutive failures recorded since the last success.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> Duration {
        Duration::from_millis(ms)
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            max_retries: 10,
            base: at(10),
            max_backoff: at(100),
            jitter: 0.0,
            seed: 0,
        };
        assert_eq!(p.backoff(0, None), at(10));
        assert_eq!(p.backoff(1, None), at(20));
        assert_eq!(p.backoff(2, None), at(40));
        assert_eq!(p.backoff(3, None), at(80));
        assert_eq!(p.backoff(4, None), at(100), "capped");
        assert_eq!(p.backoff(9, None), at(100));
    }

    #[test]
    fn jitter_is_deterministic_bounded_and_seed_dependent() {
        let p = RetryPolicy {
            jitter: 0.5,
            ..RetryPolicy::standard(1)
        };
        let q = RetryPolicy {
            jitter: 0.5,
            ..RetryPolicy::standard(2)
        };
        for attempt in 0..5 {
            let a = p.backoff(attempt, None);
            let b = p.backoff(attempt, None);
            assert_eq!(a, b, "same policy, same schedule");
            let nominal = p.base.saturating_mul(1 << attempt).min(p.max_backoff);
            assert!(
                a <= nominal && a >= nominal.mul_f64(0.5),
                "{a:?} vs {nominal:?}"
            );
        }
        assert!(
            (0..5).any(|i| p.backoff(i, None) != q.backoff(i, None)),
            "different seeds must not share the whole schedule"
        );
    }

    #[test]
    fn retry_after_hint_is_a_floor() {
        let p = RetryPolicy::fast(3);
        assert_eq!(p.backoff(0, Some(at(500))), at(500));
        assert!(p.backoff(0, Some(Duration::ZERO)) <= at(1));
    }

    #[test]
    fn retry_budget_is_bounded() {
        let p = RetryPolicy::fast(2);
        assert!(p.should_retry(0));
        assert!(p.should_retry(1));
        assert!(!p.should_retry(2));
        assert!(!RetryPolicy::none().should_retry(0));
    }

    #[test]
    fn breaker_trips_after_threshold_and_recovers_via_probe() {
        let mut b = CircuitBreaker::new(3, at(100));
        assert_eq!(b.state(at(0)), CircuitState::Closed);
        b.record_failure(at(0));
        b.record_failure(at(1));
        assert!(b.check(at(2)).is_ok(), "below threshold stays closed");
        b.record_failure(at(2));
        // Open: rejected with the remaining cooldown.
        assert_eq!(b.state(at(3)), CircuitState::Open);
        assert_eq!(b.check(at(52)), Err(at(50)));
        // Cooldown elapsed: exactly one probe admitted.
        assert_eq!(b.state(at(102)), CircuitState::HalfOpen);
        assert!(b.check(at(102)).is_ok());
        assert!(b.check(at(103)).is_err(), "second probe rejected");
        // Probe succeeds: closed again.
        b.record_success();
        assert_eq!(b.state(at(104)), CircuitState::Closed);
        assert!(b.check(at(104)).is_ok());
    }

    #[test]
    fn failed_probe_reopens_immediately() {
        let mut b = CircuitBreaker::new(1, at(100));
        b.record_failure(at(0));
        assert!(b.check(at(100)).is_ok(), "probe after cooldown");
        b.record_failure(at(100));
        assert_eq!(b.state(at(150)), CircuitState::Open);
        assert_eq!(b.check(at(150)), Err(at(50)));
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = CircuitBreaker::new(2, at(100));
        b.record_failure(at(0));
        b.record_success();
        b.record_failure(at(1));
        assert_eq!(b.state(at(2)), CircuitState::Closed, "streak was broken");
        assert_eq!(b.consecutive_failures(), 1);
    }
}
