//! A platform interface served from an on-disk segment store.
//!
//! [`AdPlatform`](crate::AdPlatform) materialises every catalog audience
//! in memory, which caps universes at a few million users. A
//! [`SegmentedPlatform`] serves the identical advertiser surface from a
//! [`SegmentStore`]: audiences live on disk as per-segment bitsets, a
//! bounded cache keeps the hot ones resident, and every estimate is
//! computed segment-at-a-time — so resident memory stays flat no matter
//! how many users the universe holds.
//!
//! Because segment boundaries are aligned to bitset chunk boundaries
//! (`SEGMENT_ALIGN`), per-segment audiences occupy disjoint chunk ranges
//! of the same global id space, and a spec's per-segment evaluation
//! partitions its monolithic evaluation exactly. Summing the per-segment
//! counts therefore reproduces [`AdPlatform::reach_estimate`] bit for
//! bit: same audience length in, same scale-multiply-round pipeline out.
//! The tests pin that equivalence against a monolithic platform built
//! from the same universe config and catalog.

use adcomp_bitset::Bitset;
use adcomp_population::{SegmentAudience, SegmentError, SegmentStore};
use adcomp_targeting::{validate, AttributeId, EvalError, TargetingSpec};
use parking_lot::Mutex;

use crate::catalog::Catalog;
use crate::estimate::{EstimateKind, SizeEstimate};
use crate::interface::PlatformMetrics;
use crate::interface::{EstimateRequest, InterfaceKind, PlatformConfig, PlatformError};
use crate::oracle::{min_len_reaching, ReachOracle};
use crate::ratelimit::QueryStats;

/// Storage failures surface as transient platform errors: the estimate
/// itself is well-formed, the backing store hiccuped, and a retry may
/// succeed — the same contract remote platforms give their clients.
fn store_err(e: SegmentError) -> PlatformError {
    PlatformError::Transient(format!("segment store: {e}"))
}

/// An advertiser interface over a streamed, disk-backed universe.
pub struct SegmentedPlatform {
    config: PlatformConfig,
    catalog: Catalog,
    store: SegmentStore,
    stats: Mutex<QueryStats>,
    metrics: PlatformMetrics,
}

impl SegmentedPlatform {
    /// Builds a platform over an existing segment store. The catalog must
    /// describe the same attributes the store was generated from, in the
    /// same order (entry `i` ↔ `SegmentAudience::Attribute(i)`).
    pub fn new(config: PlatformConfig, store: SegmentStore, catalog: Catalog) -> SegmentedPlatform {
        assert!(
            config
                .supported_objectives
                .contains(&config.default_objective),
            "default objective must be supported"
        );
        assert_eq!(
            catalog.len() as u32,
            store.n_attributes(),
            "one catalog entry per stored attribute audience"
        );
        SegmentedPlatform {
            metrics: PlatformMetrics::for_kind(config.kind),
            config,
            catalog,
            store,
            stats: Mutex::new(QueryStats::default()),
        }
    }

    /// The advertiser-visible reach estimate — the same pipeline as
    /// [`AdPlatform::reach_estimate`](crate::AdPlatform::reach_estimate),
    /// with the audience length computed segment-at-a-time instead of
    /// from resident bitsets.
    pub fn reach_estimate(&self, request: &EstimateRequest) -> Result<SizeEstimate, PlatformError> {
        if !self
            .config
            .supported_objectives
            .contains(&request.objective)
        {
            return Err(PlatformError::UnsupportedObjective(request.objective));
        }
        if let Err(e) = validate(&request.spec, &self.config.capabilities, &self.catalog) {
            self.stats.lock().validation_failures += 1;
            self.metrics.validation_failures.inc();
            return Err(e.into());
        }
        let len = self.audience_len(&request.spec)?;
        let mut value = len as f64 * self.store.config().scale;
        if self.config.estimate_kind == EstimateKind::Impressions {
            value *= request.frequency_cap.impressions_multiplier();
        }
        self.stats.lock().estimates += 1;
        let raw = value.round() as u64;
        let rounded = self.config.rounding.apply(raw);
        self.metrics.estimates.inc();
        self.metrics.estimate_size.observe(rounded);
        if rounded != raw {
            self.metrics.rounding_applied.inc();
        }
        Ok(SizeEstimate {
            value: rounded,
            kind: self.config.estimate_kind,
        })
    }

    /// Validates a spec without estimating.
    pub fn check(&self, spec: &TargetingSpec) -> Result<(), PlatformError> {
        validate(spec, &self.config.capabilities, &self.catalog).map_err(Into::into)
    }

    /// Interface configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// The interface's catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Which interface this simulates.
    pub fn kind(&self) -> InterfaceKind {
        self.config.kind
    }

    /// The backing segment store (cache statistics, manifest access).
    pub fn store(&self) -> &SegmentStore {
        &self.store
    }

    /// Snapshot of the query counters.
    pub fn stats(&self) -> QueryStats {
        *self.stats.lock()
    }

    /// Record a rate-limited request (called by the serving layer).
    pub fn note_rate_limited(&self) {
        self.stats.lock().rate_limited += 1;
        self.metrics.rate_limited.inc();
    }

    /// Exact audience length of a spec, summed over segments. Mirrors
    /// `adcomp_targeting::evaluate` exactly: OR within include groups
    /// (an empty group matches nobody), AND across groups, demographics
    /// ANDed on, exclusions subtracted.
    fn audience_len(&self, spec: &TargetingSpec) -> Result<u64, PlatformError> {
        let n = self.store.n_attributes();
        for group in &spec.include {
            for &id in &group.attributes {
                if id.0 >= n {
                    return Err(EvalError::UnknownAttribute(id).into());
                }
            }
        }
        for &id in &spec.exclude {
            if id.0 >= n {
                return Err(EvalError::UnknownAttribute(id).into());
            }
        }
        if spec.include.iter().any(|g| g.attributes.is_empty()) {
            return Ok(0);
        }
        // Pure "everyone" needs no segment I/O at all.
        if spec.include.is_empty()
            && spec.exclude.is_empty()
            && spec.demographics.genders.is_none()
            && spec.demographics.ages.is_none()
        {
            return self
                .store
                .total_cardinality(SegmentAudience::Everyone)
                .map_err(store_err);
        }
        let mut total = 0u64;
        for seg in 0..self.store.n_segments() {
            total += self.segment_len(seg, spec)?;
        }
        Ok(total)
    }

    /// The spec's audience length within one segment.
    fn segment_len(&self, seg: u32, spec: &TargetingSpec) -> Result<u64, PlatformError> {
        // Manifest pre-check, zero I/O: an AND over a group whose
        // attributes are all empty in this segment is empty here.
        for group in &spec.include {
            let mut attainable = 0u64;
            for &id in &group.attributes {
                attainable += self
                    .store
                    .cardinality(seg, SegmentAudience::Attribute(id.0))
                    .map_err(store_err)?;
            }
            if attainable == 0 {
                return Ok(0);
            }
        }
        // OR within each group.
        let mut group_sets: Vec<Bitset> = Vec::with_capacity(spec.include.len());
        for group in &spec.include {
            let mut acc: Option<Bitset> = None;
            for &id in &group.attributes {
                let audience = self
                    .store
                    .load(seg, SegmentAudience::Attribute(id.0))
                    .map_err(store_err)?;
                acc = Some(match acc {
                    None => (*audience).clone(),
                    Some(cur) => cur.or(audience.as_ref()),
                });
            }
            group_sets.push(acc.unwrap_or_default());
        }
        // AND across groups, smallest first.
        group_sets.sort_by_key(|s| s.len());
        let mut audience: Option<Bitset> = None;
        for set in group_sets {
            audience = Some(match audience {
                None => set,
                Some(cur) => cur.and(&set),
            });
            if audience.as_ref().is_some_and(|a| a.is_empty()) {
                break;
            }
        }
        let mut audience = match audience {
            Some(a) => a,
            None => (*self
                .store
                .load(seg, SegmentAudience::Everyone)
                .map_err(store_err)?)
            .clone(),
        };
        // Demographics.
        if let Some(genders) = &spec.demographics.genders {
            let mut demo = Bitset::new();
            for g in genders {
                let set = self
                    .store
                    .load(seg, SegmentAudience::Gender(*g))
                    .map_err(store_err)?;
                demo = demo.or(set.as_ref());
            }
            audience = audience.and(&demo);
        }
        if let Some(ages) = &spec.demographics.ages {
            let mut demo = Bitset::new();
            for a in ages {
                let set = self
                    .store
                    .load(seg, SegmentAudience::Age(*a))
                    .map_err(store_err)?;
                demo = demo.or(set.as_ref());
            }
            audience = audience.and(&demo);
        }
        // Exclusions.
        for &id in &spec.exclude {
            if audience.is_empty() {
                break;
            }
            let excluded = self
                .store
                .load(seg, SegmentAudience::Attribute(id.0))
                .map_err(store_err)?;
            audience = audience.and_not(excluded.as_ref());
        }
        Ok(audience.len())
    }
}

impl crate::api::PlatformApi for SegmentedPlatform {
    fn config(&self) -> &PlatformConfig {
        SegmentedPlatform::config(self)
    }

    fn catalog(&self) -> &Catalog {
        SegmentedPlatform::catalog(self)
    }

    fn reach_estimate(&self, request: &EstimateRequest) -> Result<SizeEstimate, PlatformError> {
        SegmentedPlatform::reach_estimate(self, request)
    }

    fn check(&self, spec: &TargetingSpec) -> Result<(), PlatformError> {
        SegmentedPlatform::check(self, spec)
    }

    fn stats(&self) -> QueryStats {
        SegmentedPlatform::stats(self)
    }

    fn note_rate_limited(&self) {
        SegmentedPlatform::note_rate_limited(self)
    }
}

impl ReachOracle for SegmentedPlatform {
    fn attribute_len(&self, id: AttributeId) -> Option<u64> {
        if id.0 >= self.store.n_attributes() {
            return None;
        }
        self.store
            .total_cardinality(SegmentAudience::Attribute(id.0))
            .ok()
    }

    fn min_len_for_estimate(&self, min_estimate: u64) -> u64 {
        min_len_reaching(
            &self.config,
            self.store.config().scale,
            self.store.config().n_users as u64,
            min_estimate,
        )
    }

    fn and_reaches(&self, attrs: &[AttributeId], threshold_len: u64) -> bool {
        if attrs.iter().any(|id| id.0 >= self.store.n_attributes()) {
            return true; // undecidable: let measurement decide
        }
        if attrs.is_empty() {
            return self.store.config().n_users as u64 >= threshold_len;
        }
        // Phase 1, zero I/O: per-segment upper bounds from the manifest
        // (`|∧| ≤ min over attrs of the segment cardinality`).
        let n_segments = self.store.n_segments();
        let mut bounds = Vec::with_capacity(n_segments as usize);
        let mut total_bound = 0u64;
        for seg in 0..n_segments {
            let mut bound = u64::MAX;
            for &id in attrs {
                match self
                    .store
                    .cardinality(seg, SegmentAudience::Attribute(id.0))
                {
                    Ok(c) => bound = bound.min(c),
                    Err(_) => return true, // undecidable
                }
            }
            bounds.push((seg, bound));
            total_bound = total_bound.saturating_add(bound);
        }
        if total_bound < threshold_len {
            return false;
        }
        // Phase 2: exact per-segment counts, biggest bound first so the
        // accumulator crosses the threshold (or the residual bound falls
        // below it) as early as possible.
        bounds.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut acc = 0u64;
        let mut remaining = total_bound;
        for (seg, bound) in bounds {
            if bound == 0 {
                break; // sorted: the rest are empty too
            }
            remaining -= bound;
            let mut sets = Vec::with_capacity(attrs.len());
            for &id in attrs {
                match self.store.load(seg, SegmentAudience::Attribute(id.0)) {
                    Ok(s) => sets.push(s),
                    Err(_) => return true, // undecidable
                }
            }
            sets.sort_by_key(|s| s.len());
            let seg_count = match sets.len() {
                1 => sets[0].len(),
                2 => sets[0].intersection_len(sets[1].as_ref()),
                _ => {
                    let mut cur = sets[0].and(sets[1].as_ref());
                    for s in &sets[2..] {
                        if cur.is_empty() {
                            break;
                        }
                        cur = cur.and(s.as_ref());
                    }
                    cur.len()
                }
            };
            acc += seg_count;
            if acc >= threshold_len {
                return true;
            }
            if acc.saturating_add(remaining) < threshold_len {
                return false;
            }
        }
        acc >= threshold_len
    }
}

impl std::fmt::Debug for SegmentedPlatform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentedPlatform")
            .field("kind", &self.config.kind)
            .field("catalog", &self.catalog.len())
            .field("users", &self.store.config().n_users)
            .field("segments", &self.store.n_segments())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{CategorySpec, SkewProfile};
    use crate::estimate::RoundingRule;
    use crate::interface::AdPlatform;
    use crate::objective::Objective;
    use adcomp_population::{
        AgeBucket, DemographicProfile, Gender, Universe, UniverseConfig, SEGMENT_ALIGN,
    };
    use adcomp_targeting::{Capabilities, FeatureId};
    use std::sync::Arc;

    fn config() -> PlatformConfig {
        PlatformConfig {
            kind: InterfaceKind::FacebookNormal,
            capabilities: Capabilities::permissive(),
            rounding: RoundingRule::facebook(),
            estimate_kind: EstimateKind::Users,
            supported_objectives: vec![Objective::Reach, Objective::Traffic],
            default_objective: Objective::Reach,
        }
    }

    fn catalog() -> Catalog {
        Catalog::generate(
            13,
            &[
                CategorySpec {
                    name: "Games",
                    domain: "games",
                    feature: FeatureId(0),
                    count: 10,
                    skew: SkewProfile::neutral().lean_male(0.7),
                },
                CategorySpec {
                    name: "Topics",
                    domain: "media",
                    feature: FeatureId(1),
                    count: 10,
                    skew: SkewProfile::neutral().lean_old(0.4),
                },
            ],
        )
    }

    /// A segmented and a monolithic platform over the same universe.
    fn pair(n_users: u32) -> (SegmentedPlatform, AdPlatform, tempdir::Guard) {
        let ucfg = UniverseConfig {
            n_users,
            seed: 77,
            scale: 1_000.0,
            profile: DemographicProfile::balanced(),
        };
        let catalog = catalog();
        let models: Vec<_> = catalog.entries().iter().map(|e| e.model.clone()).collect();
        let guard = tempdir::Guard::new("adcomp-segmented-platform");
        let store =
            SegmentStore::create(&guard.path, &ucfg, SEGMENT_ALIGN, &models, 1 << 22).unwrap();
        let segmented = SegmentedPlatform::new(config(), store, catalog.clone());
        let mono = AdPlatform::new(config(), Arc::new(Universe::generate(&ucfg)), catalog);
        (segmented, mono, guard)
    }

    /// Minimal scoped temp dir.
    mod tempdir {
        pub struct Guard {
            pub path: std::path::PathBuf,
        }
        impl Guard {
            pub fn new(tag: &str) -> Guard {
                let path = std::env::temp_dir().join(format!("{tag}-{}", std::process::id()));
                let _ = std::fs::remove_dir_all(&path);
                Guard { path }
            }
        }
        impl Drop for Guard {
            fn drop(&mut self) {
                let _ = std::fs::remove_dir_all(&self.path);
            }
        }
    }

    fn specs() -> Vec<TargetingSpec> {
        vec![
            TargetingSpec::everyone(),
            TargetingSpec::and_of([AttributeId(0)]),
            TargetingSpec::and_of([AttributeId(0), AttributeId(11)]),
            TargetingSpec::and_of([AttributeId(2), AttributeId(5), AttributeId(14)]),
            TargetingSpec::builder()
                .any_of([AttributeId(1), AttributeId(12)])
                .attribute(AttributeId(3))
                .build(),
            TargetingSpec::builder()
                .gender(Gender::Female)
                .attribute(AttributeId(4))
                .build(),
            TargetingSpec::builder()
                .ages([AgeBucket::A18_24, AgeBucket::A55Plus])
                .any_of([AttributeId(6), AttributeId(16)])
                .exclude([AttributeId(9)])
                .build(),
            TargetingSpec::builder().exclude([AttributeId(0)]).build(),
            TargetingSpec::builder()
                .gender(Gender::Male)
                .ages([AgeBucket::A25_34])
                .build(),
        ]
    }

    #[test]
    fn estimates_match_the_monolithic_platform() {
        let (segmented, mono, _guard) = pair(SEGMENT_ALIGN * 2 + 12_345);
        for spec in specs() {
            let req = EstimateRequest::new(spec.clone(), Objective::Reach);
            assert_eq!(
                segmented.reach_estimate(&req).unwrap(),
                mono.reach_estimate(&req).unwrap(),
                "spec: {spec}"
            );
        }
        assert_eq!(segmented.stats().estimates, specs().len() as u64);
    }

    #[test]
    fn error_paths_match_the_monolithic_platform() {
        let (segmented, mono, _guard) = pair(SEGMENT_ALIGN);
        let bad_objective =
            EstimateRequest::new(TargetingSpec::everyone(), Objective::BrandAwareness);
        assert_eq!(
            segmented.reach_estimate(&bad_objective),
            mono.reach_estimate(&bad_objective)
        );
        let unknown =
            EstimateRequest::new(TargetingSpec::and_of([AttributeId(999)]), Objective::Reach);
        assert_eq!(
            segmented.reach_estimate(&unknown),
            mono.reach_estimate(&unknown)
        );
        assert_eq!(segmented.stats().validation_failures, 1);
        // An empty include group evaluates (nobody), matching `evaluate`.
        let empty_group = TargetingSpec {
            include: vec![adcomp_targeting::OrGroup { attributes: vec![] }],
            ..Default::default()
        };
        let req = EstimateRequest::new(empty_group, Objective::Reach);
        assert_eq!(segmented.reach_estimate(&req), mono.reach_estimate(&req));
    }

    #[test]
    fn oracle_agrees_with_the_monolithic_oracle() {
        let (segmented, mono, _guard) = pair(SEGMENT_ALIGN * 2 + 999);
        for min_estimate in [1u64, 10_000, 2_000_000, 40_000_000] {
            assert_eq!(
                ReachOracle::min_len_for_estimate(&segmented, min_estimate),
                ReachOracle::min_len_for_estimate(&mono, min_estimate),
            );
        }
        let t = ReachOracle::min_len_for_estimate(&segmented, 2_000_000);
        for a in 0..5u32 {
            assert_eq!(
                ReachOracle::attribute_len(&segmented, AttributeId(a)),
                ReachOracle::attribute_len(&mono, AttributeId(a)),
            );
            for b in 10..15u32 {
                let pair = [AttributeId(a), AttributeId(b)];
                assert_eq!(
                    segmented.and_reaches(&pair, t),
                    mono.and_reaches(&pair, t),
                    "pair ({a},{b}) at threshold {t}"
                );
            }
        }
        // Triple through the materialising path.
        let triple = [AttributeId(0), AttributeId(1), AttributeId(10)];
        for threshold in [1u64, 100, 10_000, u64::MAX] {
            assert_eq!(
                segmented.and_reaches(&triple, threshold),
                mono.and_reaches(&triple, threshold)
            );
        }
    }

    #[test]
    fn serves_through_the_api_trait() {
        use crate::api::PlatformApi;
        let (segmented, _mono, _guard) = pair(SEGMENT_ALIGN);
        let api: Arc<dyn PlatformApi> = Arc::new(segmented);
        assert_eq!(api.label(), "Facebook");
        let req = EstimateRequest::new(TargetingSpec::everyone(), api.config().default_objective);
        assert!(api.reach_estimate(&req).unwrap().value > 0);
        assert_eq!(api.stats().estimates, 1);
        api.note_rate_limited();
        assert_eq!(api.stats().rate_limited, 1);
    }
}
