//! Property tests for the token-bucket rate limiter: the `retry_after`
//! hint must be *sound* (waiting it out always admits the next request)
//! and the bucket must never admit more than `burst + rate·T` requests
//! over any window of length `T` — the invariant the ethics section's
//! query discipline depends on.

use std::time::Duration;

use adcomp_platform::TokenBucket;
use proptest::prelude::*;

/// A monotone request schedule: cumulative timestamps from millisecond
/// gaps (gap 0 models a burst of back-to-back requests).
fn arb_schedule() -> impl Strategy<Value = Vec<Duration>> {
    proptest::collection::vec(0u64..400, 1..120).prop_map(|gaps| {
        let mut now = Duration::ZERO;
        gaps.iter()
            .map(|g| {
                now += Duration::from_millis(*g);
                now
            })
            .collect()
    })
}

fn arb_bucket() -> impl Strategy<Value = (f64, f64)> {
    // rate in requests/second, burst in requests.
    (0.5f64..50.0, 1.0f64..20.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Whenever a request is denied, `retry_after` is a usable hint:
    /// positive, at most one full token away, and a client that waits
    /// exactly that long (plus a millisecond of slack for the
    /// seconds-to-f64 conversion) is admitted.
    #[test]
    fn retry_after_is_sound((rate, burst) in arb_bucket(), schedule in arb_schedule()) {
        let mut bucket = TokenBucket::new(rate, burst);
        for now in schedule {
            if bucket.try_acquire(now) {
                continue;
            }
            let wait = bucket.retry_after(now);
            prop_assert!(wait > Duration::ZERO, "denied request must carry a wait");
            prop_assert!(
                wait <= Duration::from_secs_f64(1.0 / rate) + Duration::from_millis(1),
                "one token can never be more than 1/rate away: {wait:?}"
            );
            // Probe on a clone so the main trajectory stays untouched.
            let mut probe = bucket.clone();
            prop_assert!(
                probe.try_acquire(now + wait + Duration::from_millis(1)),
                "waiting the advertised {wait:?} must admit the request"
            );
        }
    }

    /// A zero `retry_after` is a promise: the next request is admitted.
    #[test]
    fn zero_retry_after_means_admitted((rate, burst) in arb_bucket(), schedule in arb_schedule()) {
        let mut bucket = TokenBucket::new(rate, burst);
        for now in schedule {
            if bucket.retry_after(now) == Duration::ZERO {
                let mut probe = bucket.clone();
                prop_assert!(probe.try_acquire(now), "zero wait must mean admission");
            }
            let _ = bucket.try_acquire(now);
        }
    }

    /// Over any schedule the number of admitted requests is bounded by
    /// the initial burst allowance plus the tokens refilled across the
    /// window — the bucket can never be talked into exceeding its rate.
    #[test]
    fn admitted_count_respects_rate_and_burst(
        (rate, burst) in arb_bucket(),
        schedule in arb_schedule(),
    ) {
        let mut bucket = TokenBucket::new(rate, burst);
        let window = schedule.last().copied().unwrap_or(Duration::ZERO);
        let admitted = schedule.iter().filter(|now| bucket.try_acquire(**now)).count();
        let cap = burst + rate * window.as_secs_f64();
        prop_assert!(
            admitted as f64 <= cap + 1e-6,
            "admitted {admitted} requests, cap is {cap:.3} (rate {rate}, burst {burst}, \
             window {window:?})"
        );
    }
}
