//! Reproducibility regression tests: the whole point of a simulation
//! substrate is that two builds from the same seed are indistinguishable,
//! and audiences survive serialisation byte-for-byte.

use adcomp_platform::{EstimateRequest, LookalikeConfig, SimScale, Simulation};
use adcomp_targeting::{AttributeId, TargetingSpec};

#[test]
fn rebuilt_simulation_gives_identical_estimates() {
    let a = Simulation::build(31337, SimScale::Test);
    let b = Simulation::build(31337, SimScale::Test);
    for (pa, pb) in a.interfaces().iter().zip(b.interfaces().iter()) {
        assert_eq!(pa.catalog().len(), pb.catalog().len());
        // Same catalog names and estimates for a sample of specs.
        for id in (0..pa.catalog().len() as u32).step_by(7) {
            let id = AttributeId(id);
            assert_eq!(
                pa.catalog().get(id).unwrap().name,
                pb.catalog().get(id).unwrap().name
            );
            let spec = TargetingSpec::and_of([id]);
            let req = |p: &adcomp_platform::AdPlatform| {
                EstimateRequest::new(spec.clone(), p.config().default_objective)
            };
            assert_eq!(
                pa.reach_estimate(&req(pa)).unwrap(),
                pb.reach_estimate(&req(pb)).unwrap(),
                "{} attr {id:?}",
                pa.label()
            );
        }
    }
}

#[test]
fn different_seeds_give_different_platforms() {
    let a = Simulation::build(1, SimScale::Test);
    let b = Simulation::build(2, SimScale::Test);
    let spec = TargetingSpec::and_of([AttributeId(0)]);
    let estimate = |s: &Simulation| {
        s.facebook
            .reach_estimate(&EstimateRequest::new(
                spec.clone(),
                s.facebook.config().default_objective,
            ))
            .unwrap()
            .value
    };
    // Same catalog structure, different realisations.
    assert_eq!(a.facebook.catalog().len(), b.facebook.catalog().len());
    assert_ne!(estimate(&a), estimate(&b), "distinct seeds must differ");
}

#[test]
fn audiences_roundtrip_through_serialization() {
    let sim = Simulation::build(31338, SimScale::Test);
    let fb = &sim.facebook;
    for idx in (0..fb.catalog().len()).step_by(11) {
        let audience = fb.attribute_audience_raw(idx).unwrap();
        let bytes = audience.to_bytes();
        let back = adcomp_bitset::Bitset::from_bytes(&bytes).unwrap();
        assert_eq!(&back, audience, "attribute {idx}");
    }
}

#[test]
fn lookalike_and_custom_audience_are_seed_stable() {
    let a = Simulation::build(31339, SimScale::Test);
    let b = Simulation::build(31339, SimScale::Test);
    // Contact hashes identical across rebuilds.
    for user in (0..1000u32).step_by(97) {
        assert_eq!(a.facebook.contact_hash(user), b.facebook.contact_hash(user));
    }
    // Matching and expansion identical across rebuilds.
    let hashes: Vec<_> = (0..2000u32).map(|u| a.facebook.contact_hash(u)).collect();
    let ma = a.facebook.match_customer_list(&hashes);
    let mb = b.facebook.match_customer_list(&hashes);
    assert_eq!(ma.audience, mb.audience);
    if ma.audience.len() >= adcomp_platform::MIN_SEED {
        let la = a
            .facebook
            .lookalike(&ma.audience, &LookalikeConfig::default())
            .unwrap();
        let lb = b
            .facebook
            .lookalike(&mb.audience, &LookalikeConfig::default())
            .unwrap();
        assert_eq!(la, lb);
    }
}

#[test]
fn restricted_interface_audiences_match_parent() {
    let sim = Simulation::build(31340, SimScale::Test);
    let restricted = &sim.facebook_restricted;
    for id in restricted.catalog().ids() {
        let parent_id = restricted
            .parent_id(id)
            .expect("derived interface maps ids");
        assert_eq!(
            restricted.attribute_audience_raw(id.0 as usize).unwrap(),
            sim.facebook
                .attribute_audience_raw(parent_id.0 as usize)
                .unwrap(),
            "restricted #{} vs parent #{}",
            id.0,
            parent_id.0
        );
        assert_eq!(
            restricted.catalog().get(id).unwrap().name,
            sim.facebook.catalog().get(parent_id).unwrap().name
        );
    }
}
