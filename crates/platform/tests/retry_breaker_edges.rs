//! Edge-case coverage for the resilience primitives under an injected
//! clock: the circuit breaker's half-open transitions (probe success →
//! closed, probe failure → open) including their
//! `adcomp_circuit_transitions_total` reporting, and the retry policy's
//! backoff bounds across its whole schedule.
//!
//! The transition counters live in the *global* registry shared by every
//! test in the process, so all assertions are deltas around the
//! operation under test, never absolute values.

use std::time::Duration;

use adcomp_obs::metrics::Registry;
use adcomp_platform::{CircuitBreaker, CircuitState, RetryPolicy};

fn at(ms: u64) -> Duration {
    Duration::from_millis(ms)
}

/// Current value of `adcomp_circuit_transitions_total{to=<state>}`.
fn transitions(to: &str) -> u64 {
    Registry::global()
        .snapshot()
        .counters
        .iter()
        .filter(|(k, _)| {
            k.name == "adcomp_circuit_transitions_total"
                && k.labels.iter().any(|(lk, lv)| lk == "to" && lv == to)
        })
        .map(|(_, v)| *v)
        .sum()
}

#[test]
fn half_open_probe_success_closes_and_reports() {
    let mut b = CircuitBreaker::new(2, at(100));
    b.record_failure(at(0));

    let open_before = transitions("open");
    b.record_failure(at(1)); // second consecutive failure trips it
    assert_eq!(b.state(at(2)), CircuitState::Open);
    assert!(transitions("open") > open_before, "trip was counted");

    // Cooldown elapsed: exactly one probe is admitted (half-open).
    let half_before = transitions("half_open");
    assert_eq!(b.state(at(101)), CircuitState::HalfOpen);
    assert!(b.check(at(101)).is_ok());
    assert!(transitions("half_open") > half_before);
    assert!(b.check(at(102)).is_err(), "only one probe per window");

    // The probe succeeds: half-open → closed, streak reset.
    let closed_before = transitions("closed");
    b.record_success();
    assert_eq!(b.state(at(103)), CircuitState::Closed);
    assert_eq!(b.consecutive_failures(), 0);
    assert!(transitions("closed") > closed_before);
    assert!(b.check(at(103)).is_ok(), "requests flow again");
}

#[test]
fn half_open_probe_failure_reopens_and_reports() {
    let mut b = CircuitBreaker::new(1, at(50));
    b.record_failure(at(0));
    assert_eq!(b.state(at(10)), CircuitState::Open);

    assert!(b.check(at(50)).is_ok(), "probe admitted after cooldown");
    let open_before = transitions("open");
    let closed_before = transitions("closed");
    b.record_failure(at(50)); // failed probe: half-open → open, full cooldown
    assert_eq!(b.state(at(60)), CircuitState::Open);
    assert_eq!(
        b.check(at(60)),
        Err(at(40)),
        "fresh cooldown from the probe"
    );
    assert!(transitions("open") > open_before, "re-open was counted");
    assert_eq!(
        transitions("closed"),
        closed_before,
        "a failed probe never counts as a close"
    );

    // The next window's probe can still recover the circuit.
    assert!(b.check(at(100)).is_ok());
    b.record_success();
    assert_eq!(b.state(at(101)), CircuitState::Closed);
}

#[test]
fn backoff_stays_within_jitter_bounds_over_the_whole_schedule() {
    let p = RetryPolicy {
        max_retries: 12,
        base: at(10),
        max_backoff: at(640),
        jitter: 0.3,
        seed: 42,
    };
    for attempt in 0..p.max_retries {
        let nominal = p
            .base
            .saturating_mul(1 << attempt.min(16))
            .min(p.max_backoff);
        let d = p.backoff(attempt, None);
        assert!(
            d <= nominal,
            "attempt {attempt}: {d:?} above nominal {nominal:?}"
        );
        assert!(
            d >= nominal.mul_f64(1.0 - p.jitter),
            "attempt {attempt}: {d:?} jittered below the floor"
        );
        assert_eq!(d, p.backoff(attempt, None), "schedule is deterministic");
    }
    // Far past the cap the exponent saturates instead of overflowing.
    assert!(p.backoff(40, None) <= p.max_backoff);
}

#[test]
fn retry_after_hint_floors_but_never_shrinks_backoff() {
    let p = RetryPolicy {
        jitter: 0.0,
        ..RetryPolicy::standard(7)
    };
    let unhinted = p.backoff(3, None);
    // A hint below the computed backoff changes nothing.
    assert_eq!(p.backoff(3, Some(at(1))), unhinted);
    // A hint above it wins, even past max_backoff (the server knows best).
    let big = p.max_backoff + at(500);
    assert_eq!(p.backoff(3, Some(big)), big);
}
