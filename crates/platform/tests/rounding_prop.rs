//! Property tests for the size-estimate rounding ladders: idempotence,
//! monotonicity, bounded relative error, and inverse-interval soundness —
//! the properties the paper's §3 granularity analysis implicitly relies
//! on.

use adcomp_platform::{round_significant, RoundingRule};
use proptest::prelude::*;

fn arb_rule() -> impl Strategy<Value = RoundingRule> {
    prop_oneof![
        Just(RoundingRule::facebook()),
        Just(RoundingRule::google()),
        Just(RoundingRule::linkedin()),
        Just(RoundingRule::Exact),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn rounding_is_idempotent(rule in arb_rule(), v in 0u64..10_000_000_000) {
        let once = rule.apply(v);
        prop_assert_eq!(rule.apply(once), once, "apply must be a projection");
    }

    #[test]
    fn rounding_is_monotone(rule in arb_rule(), a in 0u64..10_000_000_000, b in 0u64..10_000_000_000) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(rule.apply(lo) <= rule.apply(hi));
    }

    #[test]
    fn relative_error_is_bounded(rule in arb_rule(), v in 1u64..10_000_000_000) {
        let rounded = rule.apply(v);
        match rule {
            RoundingRule::Exact => prop_assert_eq!(rounded, v),
            RoundingRule::SignificantClamped { minimum, .. } => {
                if v >= minimum {
                    // Two significant digits: ≤ 5 % relative error at the
                    // worst (half of one unit in the second digit of 10).
                    let rel = (rounded as f64 - v as f64).abs() / v as f64;
                    prop_assert!(rel <= 0.06, "v={v} rounded={rounded} rel={rel}");
                }
            }
            RoundingRule::SignificantTiered { minimum, switch_at, .. } => {
                if v >= minimum {
                    // One significant digit below the switch: ≤ ~33 %
                    // (5 rounds to 10 is the worst case at 100 %? no:
                    // half-up at one digit is ≤ 5/15 ≈ 33 % for v ≥ 10,
                    // and v in [minimum, 10) is returned exactly).
                    let rel = (rounded as f64 - v as f64).abs() / v as f64;
                    let bound = if v < switch_at { 0.34 } else { 0.06 };
                    prop_assert!(rel <= bound, "v={v} rounded={rounded} rel={rel}");
                }
            }
        }
    }

    #[test]
    fn inverse_interval_is_sound_and_tight(rule in arb_rule(), v in 0u64..100_000_000) {
        let rounded = rule.apply(v);
        let (lo, hi) = rule
            .inverse_interval(rounded)
            .expect("every produced value must have a preimage");
        prop_assert!((lo..=hi).contains(&v), "v={v} not in [{lo}, {hi}] for {rounded}");
        // Soundness: the endpoints themselves round back to the value.
        prop_assert_eq!(rule.apply(lo.max(1)), if lo == 0 { rule.apply(0) } else { rounded });
        prop_assert_eq!(rule.apply(hi), rounded);
    }

    #[test]
    fn round_significant_keeps_magnitude(digits in 1u32..5, v in 1u64..10_000_000_000) {
        let r = round_significant(v, digits);
        // Never more than one order of magnitude of drift, and result is
        // representable with `digits` significant digits.
        prop_assert!(r as f64 >= v as f64 * 0.5 && r as f64 <= v as f64 * 1.5);
        let mut stripped = r;
        while stripped > 0 && stripped.is_multiple_of(10) {
            stripped /= 10;
        }
        let mut count = 0;
        while stripped > 0 {
            stripped /= 10;
            count += 1;
        }
        prop_assert!(count <= digits, "{r} has {count} sig digits > {digits}");
    }
}
