//! Sensitive demographic attributes and per-platform priors.
//!
//! The paper studies gender and age because "ad platforms typically have
//! access to these and offer options to explicitly target these
//! attributes" (§3). The age buckets are the most granular ranges common
//! to all three platforms.

use serde::{Deserialize, Serialize};

/// Binary gender as modelled by the 2020-era targeting interfaces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Gender {
    /// Male users.
    Male,
    /// Female users.
    Female,
}

impl Gender {
    /// Both genders, in canonical order.
    pub const ALL: [Gender; 2] = [Gender::Male, Gender::Female];

    /// The other gender (the `RA₋ₛ` population of the metric).
    pub fn other(self) -> Gender {
        match self {
            Gender::Male => Gender::Female,
            Gender::Female => Gender::Male,
        }
    }

    /// Signed signal used by the latent model: male = +1, female = −1.
    /// Positive gender loadings therefore mean "male-skewed".
    pub fn signal(self) -> f32 {
        match self {
            Gender::Male => 1.0,
            Gender::Female => -1.0,
        }
    }

    /// Stable dense index (0 or 1).
    pub fn index(self) -> usize {
        match self {
            Gender::Male => 0,
            Gender::Female => 1,
        }
    }
}

impl std::fmt::Display for Gender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Gender::Male => "male",
            Gender::Female => "female",
        })
    }
}

/// Age ranges — "the most granular targeting options common to the three ad
/// platforms we study" (paper §3, footnote 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AgeBucket {
    /// Ages 18–24.
    A18_24,
    /// Ages 25–34.
    A25_34,
    /// Ages 35–54.
    A35_54,
    /// Ages 55 and above.
    A55Plus,
}

impl AgeBucket {
    /// All buckets, youngest first.
    pub const ALL: [AgeBucket; 4] = [
        AgeBucket::A18_24,
        AgeBucket::A25_34,
        AgeBucket::A35_54,
        AgeBucket::A55Plus,
    ];

    /// Stable dense index (0..4).
    pub fn index(self) -> usize {
        match self {
            AgeBucket::A18_24 => 0,
            AgeBucket::A25_34 => 1,
            AgeBucket::A35_54 => 2,
            AgeBucket::A55Plus => 3,
        }
    }

    /// Bucket from its dense index.
    ///
    /// # Panics
    /// Panics when `index >= 4`.
    pub fn from_index(index: usize) -> AgeBucket {
        AgeBucket::ALL[index]
    }

    /// Signed signal for the latent model's age axis, youngest = −1.5 …
    /// oldest = +1.5. Positive age loadings therefore mean "skewed old".
    pub fn signal(self) -> f32 {
        match self {
            AgeBucket::A18_24 => -1.5,
            AgeBucket::A25_34 => -0.5,
            AgeBucket::A35_54 => 0.5,
            AgeBucket::A55Plus => 1.5,
        }
    }
}

impl std::fmt::Display for AgeBucket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AgeBucket::A18_24 => "18-24",
            AgeBucket::A25_34 => "25-34",
            AgeBucket::A35_54 => "35-54",
            AgeBucket::A55Plus => "55+",
        })
    }
}

/// One user's sensitive attributes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Demographics {
    /// The user's gender.
    pub gender: Gender,
    /// The user's age bucket.
    pub age: AgeBucket,
}

impl Demographics {
    /// Packs into 3 bits (1 gender + 2 age) for the universe's per-user
    /// demographic array.
    pub(crate) fn pack(self) -> u8 {
        (self.gender.index() as u8) | ((self.age.index() as u8) << 1)
    }

    /// Inverse of [`Demographics::pack`].
    pub(crate) fn unpack(bits: u8) -> Demographics {
        Demographics {
            gender: if bits & 1 == 0 {
                Gender::Male
            } else {
                Gender::Female
            },
            age: AgeBucket::from_index(((bits >> 1) & 0b11) as usize),
        }
    }
}

/// Demographic priors of a platform's user base, plus the strength with
/// which demographics shift the latent interest space.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DemographicProfile {
    /// Fraction of users that are male.
    pub male_fraction: f64,
    /// Relative weights of the four age buckets (normalised internally).
    pub age_weights: [f64; 4],
    /// How strongly gender shifts the gender-correlated latent dimension.
    pub gender_signal: f32,
    /// How strongly age shifts the age-correlated latent dimension.
    pub age_signal: f32,
}

impl DemographicProfile {
    /// A 50/50, uniform-age profile with unit demographic signals.
    pub fn balanced() -> Self {
        DemographicProfile {
            male_fraction: 0.5,
            age_weights: [0.25, 0.25, 0.25, 0.25],
            gender_signal: 1.0,
            age_signal: 1.0,
        }
    }

    /// Cumulative age distribution used for sampling.
    pub(crate) fn age_cdf(&self) -> [f64; 4] {
        let total: f64 = self.age_weights.iter().sum();
        assert!(total > 0.0, "age_weights must not all be zero");
        let mut cdf = [0.0; 4];
        let mut acc = 0.0;
        for (i, w) in self.age_weights.iter().enumerate() {
            assert!(*w >= 0.0, "age weights must be non-negative");
            acc += w / total;
            cdf[i] = acc;
        }
        cdf[3] = 1.0; // guard against rounding
        cdf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for gender in Gender::ALL {
            for age in AgeBucket::ALL {
                let d = Demographics { gender, age };
                assert_eq!(Demographics::unpack(d.pack()), d);
            }
        }
    }

    #[test]
    fn gender_other_is_involution() {
        for g in Gender::ALL {
            assert_eq!(g.other().other(), g);
            assert_ne!(g.other(), g);
        }
    }

    #[test]
    fn age_index_roundtrip_and_order() {
        for (i, a) in AgeBucket::ALL.iter().enumerate() {
            assert_eq!(a.index(), i);
            assert_eq!(AgeBucket::from_index(i), *a);
        }
        // Signals are increasing with age and symmetric around zero.
        let signals: Vec<f32> = AgeBucket::ALL.iter().map(|a| a.signal()).collect();
        assert!(signals.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(signals.iter().sum::<f32>(), 0.0);
    }

    #[test]
    fn age_cdf_normalises() {
        let p = DemographicProfile {
            age_weights: [2.0, 1.0, 1.0, 4.0],
            ..DemographicProfile::balanced()
        };
        let cdf = p.age_cdf();
        assert!((cdf[0] - 0.25).abs() < 1e-12);
        assert!((cdf[1] - 0.375).abs() < 1e-12);
        assert!((cdf[2] - 0.5).abs() < 1e-12);
        assert_eq!(cdf[3], 1.0);
    }

    #[test]
    #[should_panic(expected = "age_weights must not all be zero")]
    fn zero_age_weights_rejected() {
        let p = DemographicProfile {
            age_weights: [0.0; 4],
            ..DemographicProfile::balanced()
        };
        let _ = p.age_cdf();
    }

    #[test]
    fn display_strings_match_paper() {
        assert_eq!(AgeBucket::A18_24.to_string(), "18-24");
        assert_eq!(AgeBucket::A55Plus.to_string(), "55+");
        assert_eq!(Gender::Male.to_string(), "male");
    }
}
