//! Deterministic, stateless pseudo-randomness.
//!
//! All sampling in the universe is a pure function of integer inputs so
//! that (a) generation parallelises without coordination, (b) results are
//! independent of thread scheduling, and (c) repeated audience-size queries
//! are perfectly consistent — a property of the real platforms the paper
//! verifies and that the audit pipeline's consistency probe re-checks
//! against our simulators.
//!
//! The mixer is SplitMix64 (Steele et al., "Fast splittable pseudorandom
//! number generators"), which passes BigCrush when used as a stream and is
//! more than sufficient as a hash-to-uniform here.

/// SplitMix64 finalizer over an arbitrary 64-bit input.
#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Combines a seed and two stream coordinates into one well-mixed word.
#[inline]
pub(crate) fn mix(seed: u64, a: u64, b: u64) -> u64 {
    splitmix64(splitmix64(seed ^ a.wrapping_mul(0xA24B_AED4_963E_E407)) ^ b)
}

/// Uniform in `[0, 1)` from `(seed, a, b)`.
#[inline]
pub(crate) fn uniform_f64(seed: u64, a: u64, b: u64) -> f64 {
    // 53 top bits → exactly representable dyadic rationals in [0,1).
    (mix(seed, a, b) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Standard normal from `(seed, a, b)` via Box–Muller.
#[inline]
pub(crate) fn normal_f32(seed: u64, a: u64, b: u64) -> f32 {
    let u1 = uniform_f64(seed, a, b.wrapping_mul(2));
    let u2 = uniform_f64(seed, a, b.wrapping_mul(2).wrapping_add(1));
    // Guard u1 == 0 (probability 2⁻⁵³ but ln(0) would be -inf).
    let u1 = u1.max(f64::MIN_POSITIVE);
    ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(mix(1, 2, 3), mix(1, 2, 3));
        assert_eq!(uniform_f64(9, 8, 7), uniform_f64(9, 8, 7));
        assert_eq!(normal_f32(9, 8, 7), normal_f32(9, 8, 7));
    }

    #[test]
    fn distinct_inputs_decorrelate() {
        // All pairwise-distinct coordinates give distinct outputs.
        let outs = [mix(1, 0, 0), mix(2, 0, 0), mix(1, 1, 0), mix(1, 0, 1)];
        for i in 0..outs.len() {
            for j in i + 1..outs.len() {
                assert_ne!(outs[i], outs[j]);
            }
        }
    }

    #[test]
    fn uniform_range_and_mean() {
        let n = 100_000u64;
        let mut sum = 0.0;
        for i in 0..n {
            let u = uniform_f64(1234, i, 0);
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} not ~0.5");
    }

    #[test]
    fn normal_moments() {
        let n = 100_000u64;
        let (mut sum, mut sumsq) = (0.0f64, 0.0f64);
        for i in 0..n {
            let z = normal_f32(77, i, 3) as f64;
            sum += z;
            sumsq += z * z;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean} not ~0");
        assert!((var - 1.0).abs() < 0.05, "var {var} not ~1");
    }
}
