//! The inferred-attribute channel: what an auditor *without* ground
//! truth sees.
//!
//! Real audits rarely hold true sensitive attributes — they infer them
//! (from names, photos, voter files) with per-group error rates, and
//! their panels have holes that are usually *not* random (arXiv
//! 2410.23394, 2605.12273). An [`AttributeInference`] reproduces both
//! corruptions deterministically on top of an oracle [`Universe`],
//! without mutating it:
//!
//! * **confusion matrices** — per-true-group probabilities of each
//!   observed label, for gender and age independently;
//! * **missingness masks** — a per-user drop probability, optionally
//!   *missing-not-at-random*: the logit of the drop probability shifts
//!   with one of the user's latent factors, so missingness correlates
//!   with exactly the interests that correlate with demographics.
//!
//! Every draw is a pure function of `(inference seed, user)` through
//! the same stateless hash streams the universe generator uses (fresh
//! stream domains, disjoint from generation), so the observed view is
//! byte-identical however it is computed — monolithic, chunked, or
//! segment-at-a-time — and the same `Universe`/`SegmentStore` serves
//! the oracle and any number of inferred views at once.

use adcomp_bitset::Bitset;

use crate::demographics::{AgeBucket, Demographics, Gender};
use crate::hash::{mix, uniform_f64};
use crate::universe::Universe;

/// Stream domains for inference draws. Disjoint from the universe
/// generator's domains (gender `0x01`, age `0x02`, latent `0x10..`) —
/// and the seed itself is salted through [`mix`] first, so inference
/// streams never collide with generation streams even at equal seeds.
mod stream {
    /// Missingness draw.
    pub const MISS: u64 = 0x30;
    /// Observed-gender draw.
    pub const GENDER: u64 = 0x31;
    /// Observed-age draw.
    pub const AGE: u64 = 0x32;
}

/// Salt mixed into the inference seed to decouple it from every other
/// consumer of the universe's hash streams.
const INFERENCE_SALT: u64 = 0x1FE2;

/// A deterministic, seeded model of attribute inference error and
/// panel missingness. `Copy`, so it rides inside experiment configs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AttributeInference {
    /// Seed of the inference draws (independent of the universe seed).
    pub seed: u64,
    /// `gender_confusion[t][o]` = P(observed gender `o` | true gender
    /// `t`), rows indexed by [`Gender::index`]. Rows must sum to 1.
    pub gender_confusion: [[f64; 2]; 2],
    /// `age_confusion[t][o]` = P(observed bucket `o` | true bucket
    /// `t`), rows indexed by [`AgeBucket::index`]. Rows must sum to 1.
    pub age_confusion: [[f64; 4]; 4],
    /// Baseline per-user missingness probability. `<= 0` disables
    /// missingness entirely (every user is observed).
    pub missing_base: f64,
    /// Latent dimension steering missing-not-at-random. Ignored when
    /// `mnar_scale == 0`.
    pub mnar_dim: usize,
    /// Shift of the missingness logit per unit of `latent[mnar_dim]`:
    /// `P(miss) = sigmoid(logit(missing_base) + mnar_scale · z)`.
    pub mnar_scale: f64,
}

impl AttributeInference {
    /// A perfect classifier over a complete panel: identity confusion,
    /// no missingness. Its view is byte-identical to the oracle's.
    pub fn oracle(seed: u64) -> AttributeInference {
        let mut age_confusion = [[0.0; 4]; 4];
        for (t, row) in age_confusion.iter_mut().enumerate() {
            row[t] = 1.0;
        }
        AttributeInference {
            seed,
            gender_confusion: [[1.0, 0.0], [0.0, 1.0]],
            age_confusion,
            missing_base: 0.0,
            mnar_dim: 0,
            mnar_scale: 0.0,
        }
    }

    /// A symmetric-error classifier: each gender flips with probability
    /// `gender_error`; each age bucket is swapped (uniformly into the
    /// other three) with probability `age_error`.
    pub fn noisy(seed: u64, gender_error: f64, age_error: f64) -> AttributeInference {
        let mut inference = AttributeInference::oracle(seed);
        inference.gender_confusion = [
            [1.0 - gender_error, gender_error],
            [gender_error, 1.0 - gender_error],
        ];
        for (t, row) in inference.age_confusion.iter_mut().enumerate() {
            for (o, cell) in row.iter_mut().enumerate() {
                *cell = if o == t {
                    1.0 - age_error
                } else {
                    age_error / 3.0
                };
            }
        }
        inference
    }

    /// Adds missingness: baseline probability `base`, with the logit
    /// shifted by `scale · latent[dim]` per user (missing-not-at-random
    /// when `scale != 0` — latent factors correlate with demographics,
    /// so the holes do too).
    pub fn with_missingness(mut self, base: f64, dim: usize, scale: f64) -> AttributeInference {
        self.missing_base = base;
        self.mnar_dim = dim;
        self.mnar_scale = scale;
        self
    }

    /// Whether this inference is error-free and complete (its view is
    /// the oracle view).
    pub fn is_oracle(&self) -> bool {
        self.missing_base <= 0.0
            && self.gender_confusion == [[1.0, 0.0], [0.0, 1.0]]
            && self.age_confusion.iter().enumerate().all(|(t, row)| {
                row.iter()
                    .enumerate()
                    .all(|(o, p)| if o == t { *p == 1.0 } else { *p == 0.0 })
            })
    }

    /// P(observed = true) for gender class `g` — the sensitivity the
    /// auditor's misclassification correction assumes.
    pub fn gender_sensitivity(&self, g: Gender) -> f64 {
        self.gender_confusion[g.index()][g.index()]
    }

    /// The range of P(observed in bucket `o` | true bucket ≠ `o`)
    /// across the other true buckets — the false-positive-rate interval
    /// a collapsed (bucket vs rest) correction must carry, since the
    /// exact rate depends on the unknown composition of "rest".
    pub fn age_false_positive_range(&self, o: AgeBucket) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for t in AgeBucket::ALL {
            if t == o {
                continue;
            }
            let p = self.age_confusion[t.index()][o.index()];
            lo = lo.min(p);
            hi = hi.max(p);
        }
        (lo, hi)
    }

    /// The per-user draw seed (pure function of the inference seed and
    /// the universe seed, so distinct universes decorrelate).
    fn draw_seed(&self, universe: &Universe) -> u64 {
        mix(self.seed, INFERENCE_SALT, universe.config().seed)
    }

    /// What the auditor observes for `user`: `None` if the user is
    /// missing from the panel, otherwise the (possibly mislabelled)
    /// demographics. A pure function of `(self, universe, user)`.
    pub fn observe(&self, universe: &Universe, user: u32) -> Option<Demographics> {
        let seed = self.draw_seed(universe);
        let truth = universe.demographics(user);
        if self.missing_base > 0.0 {
            let mut p = self.missing_base.min(1.0);
            if self.mnar_scale != 0.0 {
                let z =
                    f64::from(universe.latent(user)[self.mnar_dim % universe.latent(user).len()]);
                let logit = (p / (1.0 - p).max(f64::MIN_POSITIVE)).ln() + self.mnar_scale * z;
                p = 1.0 / (1.0 + (-logit).exp());
            }
            if uniform_f64(seed, u64::from(user), stream::MISS) < p {
                return None;
            }
        }
        let gender = {
            let u = uniform_f64(seed, u64::from(user), stream::GENDER);
            if u < self.gender_confusion[truth.gender.index()][Gender::Male.index()] {
                Gender::Male
            } else {
                Gender::Female
            }
        };
        let age = {
            let u = uniform_f64(seed, u64::from(user), stream::AGE);
            let row = &self.age_confusion[truth.age.index()];
            let mut cdf = 0.0;
            let mut chosen = AgeBucket::from_index(3);
            for o in AgeBucket::ALL {
                cdf += row[o.index()];
                if u < cdf {
                    chosen = o;
                    break;
                }
            }
            chosen
        };
        Some(Demographics { gender, age })
    }

    /// Materializes the full inferred view of `universe`.
    pub fn view(&self, universe: &Universe) -> InferredView {
        self.view_of_range(universe, 0, universe.n_users())
    }

    /// The inferred view restricted to users in `[start, end)` — the
    /// chunk-at-a-time form. Because [`observe`](Self::observe) is a
    /// pure per-user function, the union of chunked views over a
    /// partition of the id space is byte-identical to the monolithic
    /// view (property-tested), and a user masked as missing is masked
    /// in every chunking.
    pub fn view_of_range(&self, universe: &Universe, start: u32, end: u32) -> InferredView {
        let end = end.min(universe.n_users());
        let mut observed: Vec<u32> = Vec::new();
        let mut by_gender: [Vec<u32>; 2] = Default::default();
        let mut by_age: [Vec<u32>; 4] = Default::default();
        for user in start..end {
            let Some(d) = self.observe(universe, user) else {
                continue;
            };
            observed.push(user);
            by_gender[d.gender.index()].push(user);
            by_age[d.age.index()].push(user);
        }
        let build = |ids: Vec<u32>| {
            let mut set = Bitset::from_sorted_iter(ids);
            set.run_optimize();
            set
        };
        InferredView {
            universe_users: universe.n_users(),
            observed: build(observed),
            by_gender: by_gender.map(build),
            by_age: by_age.map(build),
        }
    }
}

/// The materialized audiences of one inference over one universe: who
/// is observed at all, and the observed gender/age audiences. Missing
/// users belong to *no* demographic audience (a demographically
/// constrained query undercounts them; unconstrained queries still see
/// them — the platform knows the user exists, the auditor just cannot
/// label them).
#[derive(Clone, Debug, PartialEq)]
pub struct InferredView {
    universe_users: u32,
    observed: Bitset,
    by_gender: [Bitset; 2],
    by_age: [Bitset; 4],
}

impl InferredView {
    /// Users present in the panel (not masked as missing).
    pub fn observed(&self) -> &Bitset {
        &self.observed
    }

    /// The observed audience of a gender label.
    pub fn gender_audience(&self, gender: Gender) -> &Bitset {
        &self.by_gender[gender.index()]
    }

    /// The observed audience of an age label.
    pub fn age_audience(&self, age: AgeBucket) -> &Bitset {
        &self.by_age[age.index()]
    }

    /// Number of users masked as missing.
    pub fn missing_count(&self) -> u64 {
        u64::from(self.universe_users) - self.observed.len()
    }

    /// Merges a chunked view into this one (chunks must cover disjoint
    /// id ranges; used by segment-at-a-time construction and the
    /// resurrection property tests).
    pub fn merge(&mut self, other: &InferredView) {
        self.observed = self.observed.or(&other.observed);
        for g in Gender::ALL {
            self.by_gender[g.index()] = self.by_gender[g.index()].or(&other.by_gender[g.index()]);
        }
        for a in AgeBucket::ALL {
            self.by_age[a.index()] = self.by_age[a.index()].or(&other.by_age[a.index()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demographics::DemographicProfile;
    use crate::universe::UniverseConfig;

    fn universe(seed: u64) -> Universe {
        Universe::generate(&UniverseConfig {
            n_users: 8_000,
            seed,
            scale: 1.0,
            profile: DemographicProfile::balanced(),
        })
    }

    #[test]
    fn oracle_view_matches_universe_audiences() {
        let u = universe(11);
        let view = AttributeInference::oracle(99).view(&u);
        assert_eq!(view.observed(), u.everyone());
        assert_eq!(view.missing_count(), 0);
        for g in Gender::ALL {
            assert_eq!(view.gender_audience(g), u.gender_audience(g), "{g:?}");
        }
        for a in AgeBucket::ALL {
            assert_eq!(view.age_audience(a), u.age_audience(a), "{a:?}");
        }
        assert!(AttributeInference::oracle(99).is_oracle());
        assert!(!AttributeInference::noisy(99, 0.1, 0.1).is_oracle());
    }

    #[test]
    fn noise_flips_about_the_configured_rate() {
        let u = universe(12);
        let inference = AttributeInference::noisy(5, 0.2, 0.3);
        let mut gender_flips = 0u32;
        let mut age_flips = 0u32;
        for user in 0..u.n_users() {
            let truth = u.demographics(user);
            let obs = inference.observe(&u, user).expect("no missingness");
            gender_flips += u32::from(obs.gender != truth.gender);
            age_flips += u32::from(obs.age != truth.age);
        }
        let n = u.n_users() as f64;
        let g = f64::from(gender_flips) / n;
        let a = f64::from(age_flips) / n;
        assert!((g - 0.2).abs() < 0.02, "gender flip rate {g}");
        assert!((a - 0.3).abs() < 0.02, "age flip rate {a}");
    }

    #[test]
    fn mnar_missingness_correlates_with_latent() {
        let u = universe(13);
        // Latent dim 0 is gender-correlated; positive scale drops
        // high-z users more often.
        let inference = AttributeInference::oracle(7).with_missingness(0.3, 0, 2.0);
        let view = inference.view(&u);
        assert!(view.missing_count() > 0);
        let mut missing_z = 0.0f64;
        let mut observed_z = 0.0f64;
        let (mut n_miss, mut n_obs) = (0u32, 0u32);
        for user in 0..u.n_users() {
            let z = f64::from(u.latent(user)[0]);
            if view.observed().contains(user) {
                observed_z += z;
                n_obs += 1;
            } else {
                missing_z += z;
                n_miss += 1;
            }
        }
        let miss_mean = missing_z / f64::from(n_miss);
        let obs_mean = observed_z / f64::from(n_obs);
        assert!(
            miss_mean > obs_mean + 0.2,
            "missing users should have higher latent[0]: {miss_mean} vs {obs_mean}"
        );
        // MCAR control: scale 0 keeps the means close.
        let mcar = AttributeInference::oracle(7).with_missingness(0.3, 0, 0.0);
        let view = mcar.view(&u);
        let mut diff = 0.0f64;
        let mut n = 0u32;
        for user in 0..u.n_users() {
            let z = f64::from(u.latent(user)[0]);
            if !view.observed().contains(user) {
                diff += z;
                n += 1;
            }
        }
        assert!((diff / f64::from(n)).abs() < 0.15, "MCAR mean {diff}");
    }

    #[test]
    fn missing_users_are_in_no_audience() {
        let u = universe(14);
        let inference = AttributeInference::noisy(3, 0.1, 0.1).with_missingness(0.25, 1, 1.0);
        let view = inference.view(&u);
        assert!(view.missing_count() > 0);
        for user in 0..u.n_users() {
            if view.observed().contains(user) {
                continue;
            }
            for g in Gender::ALL {
                assert!(!view.gender_audience(g).contains(user));
            }
            for a in AgeBucket::ALL {
                assert!(!view.age_audience(a).contains(user));
            }
        }
        // Observed users are in exactly one gender and one age audience.
        let g_total: u64 = Gender::ALL
            .iter()
            .map(|g| view.gender_audience(*g).len())
            .sum();
        let a_total: u64 = AgeBucket::ALL
            .iter()
            .map(|a| view.age_audience(*a).len())
            .sum();
        assert_eq!(g_total, view.observed().len());
        assert_eq!(a_total, view.observed().len());
    }

    #[test]
    fn chunked_view_is_byte_identical_to_monolithic() {
        let u = universe(15);
        let inference = AttributeInference::noisy(9, 0.15, 0.2).with_missingness(0.2, 2, 1.5);
        let full = inference.view(&u);
        let mut merged = inference.view_of_range(&u, 0, 1_000);
        let mut start = 1_000;
        for step in [511u32, 2_048, 64, 5_000] {
            let end = (start + step).min(u.n_users());
            merged.merge(&inference.view_of_range(&u, start, end));
            start = end;
        }
        merged.merge(&inference.view_of_range(&u, start, u.n_users()));
        assert_eq!(merged, full);
    }
}
