//! The latent-factor interest model.
//!
//! A user's interests are summarised by a `LATENT_DIMS`-dimensional vector
//! `z`. Dimension 0 is correlated with gender, dimension 1 with age, and
//! the remaining dimensions are demographic-neutral "topic" axes. An
//! attribute's audience is a Bernoulli draw per user:
//!
//! ```text
//! P(u ∈ audience(a)) = σ( bias_a + w_a · z_u + g_u·γ_a + α_a[age_u] )
//! ```
//!
//! where `σ` is the logistic function, `w_a` the attribute's latent
//! loadings, `γ_a` a direct gender bias and `α_a` direct age biases.
//!
//! Why this reproduces the paper's composition effect: conditioning on
//! membership in one attribute that loads on the gender axis shifts the
//! posterior over `z₀`; conditioning on a *second* such attribute shifts it
//! further, so the AND-audience is more gender-skewed than either
//! individual audience. Attributes with loadings on shared neutral axes
//! also amplify each other when those axes are themselves reachable from
//! demographics — matching the paper's observation that even "facially
//! neutral" combinations skew.

use serde::{Deserialize, Serialize};

use crate::demographics::Demographics;

/// Number of latent interest dimensions.
///
/// Dimension 0 is gender-correlated, dimension 1 age-correlated, the rest
/// neutral topic axes. Twelve dimensions give enough topic diversity for
/// thousands of attributes without making dot products expensive.
pub const LATENT_DIMS: usize = 12;

/// Generative model of one targeting attribute's audience.
///
/// Constructed with a builder-style API; every field has a neutral default
/// so platforms can specify only what matters:
///
/// ```
/// use adcomp_population::AttributeModel;
/// let m = AttributeModel::new(1)
///     .popularity(0.05)
///     .gender_bias(1.2)           // male-skewed
///     .loading(2, 0.9)            // loads on topic axis 2
///     .age_biases([0.3, 0.1, -0.1, -0.3]); // skews young
/// assert_eq!(m.seed, 1);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AttributeModel {
    /// Seed of the attribute's private Bernoulli stream. Must be unique per
    /// attribute within a universe.
    pub seed: u64,
    /// Intercept. Set via [`popularity`](AttributeModel::popularity): the
    /// approximate marginal membership probability for an average user.
    pub bias: f32,
    /// Loadings onto the latent dimensions.
    pub loadings: [f32; LATENT_DIMS],
    /// Direct gender bias: positive = male-skewed (gender signal is +1 for
    /// male users).
    pub gender_bias: f32,
    /// Direct per-age-bucket biases, youngest first.
    pub age_biases: [f32; 4],
}

impl AttributeModel {
    /// A neutral attribute with ~50 % popularity and no skew.
    pub fn new(seed: u64) -> Self {
        AttributeModel {
            seed,
            bias: 0.0,
            loadings: [0.0; LATENT_DIMS],
            gender_bias: 0.0,
            age_biases: [0.0; 4],
        }
    }

    /// Sets the intercept so that an average user (z = 0, no demographic
    /// bias) has membership probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 < p < 1`.
    pub fn popularity(mut self, p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "popularity must be in (0, 1), got {p}");
        self.bias = (p / (1.0 - p)).ln() as f32;
        self
    }

    /// Sets the loading on latent dimension `dim`.
    pub fn loading(mut self, dim: usize, weight: f32) -> Self {
        self.loadings[dim] = weight;
        self
    }

    /// Replaces all loadings.
    pub fn loadings(mut self, loadings: [f32; LATENT_DIMS]) -> Self {
        self.loadings = loadings;
        self
    }

    /// Sets the direct gender bias (positive = male-skewed).
    pub fn gender_bias(mut self, bias: f32) -> Self {
        self.gender_bias = bias;
        self
    }

    /// Sets the direct age biases, youngest bucket first.
    pub fn age_biases(mut self, biases: [f32; 4]) -> Self {
        self.age_biases = biases;
        self
    }

    /// Log-odds of membership for a user with latent vector `z` and
    /// demographics `demo`.
    #[inline]
    pub fn logit(&self, z: &[f32], demo: Demographics) -> f32 {
        debug_assert_eq!(z.len(), LATENT_DIMS);
        let mut acc = self.bias;
        for (w, zi) in self.loadings.iter().zip(z) {
            acc += w * zi;
        }
        acc + demo.gender.signal() * self.gender_bias + self.age_biases[demo.age.index()]
    }

    /// Membership probability for a user (logistic link).
    #[inline]
    pub fn probability(&self, z: &[f32], demo: Demographics) -> f64 {
        sigmoid(self.logit(z, demo) as f64)
    }
}

/// Numerically stable logistic function.
#[inline]
pub(crate) fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demographics::{AgeBucket, Gender};

    fn demo(gender: Gender, age: AgeBucket) -> Demographics {
        Demographics { gender, age }
    }

    #[test]
    fn popularity_sets_matching_intercept() {
        for p in [0.001, 0.1, 0.5, 0.9, 0.999] {
            let m = AttributeModel::new(0).popularity(p);
            let q = m.probability(&[0.0; LATENT_DIMS], demo(Gender::Male, AgeBucket::A25_34));
            // Male gender bias is 0 here so demographics don't move it.
            assert!((q - p).abs() < 1e-6, "p={p} q={q}");
        }
    }

    #[test]
    #[should_panic(expected = "popularity must be in (0, 1)")]
    fn popularity_rejects_one() {
        let _ = AttributeModel::new(0).popularity(1.0);
    }

    #[test]
    fn gender_bias_moves_probability_directionally() {
        let m = AttributeModel::new(0).popularity(0.2).gender_bias(1.0);
        let z = [0.0; LATENT_DIMS];
        let pm = m.probability(&z, demo(Gender::Male, AgeBucket::A35_54));
        let pf = m.probability(&z, demo(Gender::Female, AgeBucket::A35_54));
        assert!(pm > 0.2 && pf < 0.2 && pm > pf);
    }

    #[test]
    fn age_bias_selects_bucket() {
        let m = AttributeModel::new(0)
            .popularity(0.2)
            .age_biases([2.0, 0.0, 0.0, -2.0]);
        let z = [0.0; LATENT_DIMS];
        let young = m.probability(&z, demo(Gender::Male, AgeBucket::A18_24));
        let mid = m.probability(&z, demo(Gender::Male, AgeBucket::A25_34));
        let old = m.probability(&z, demo(Gender::Male, AgeBucket::A55Plus));
        assert!(young > mid && mid > old);
    }

    #[test]
    fn loadings_contribute_linearly() {
        let m = AttributeModel::new(0).loading(3, 2.0);
        let mut z = [0.0f32; LATENT_DIMS];
        z[3] = 1.5;
        assert_eq!(m.logit(&z, demo(Gender::Male, AgeBucket::A25_34)), 3.0);
    }

    #[test]
    fn sigmoid_stable_at_extremes() {
        assert_eq!(sigmoid(1000.0), 1.0);
        assert_eq!(sigmoid(-1000.0), 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
        // Symmetry σ(x) + σ(−x) = 1.
        for x in [-5.0, -0.3, 0.7, 4.2] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-12);
        }
    }
}
