//! Synthetic ad-platform user universes.
//!
//! The paper measures live platforms whose user bases we cannot access, so
//! this crate is the substitute substrate: a deterministic, seeded generator
//! of platform-scale user populations with the two properties the paper's
//! phenomenon depends on:
//!
//! 1. **Demographic structure** — every user has a gender and an age bucket
//!    (the four ranges the paper targets: 18–24, 25–34, 35–54, 55+), drawn
//!    from per-platform priors (LinkedIn skews male, Facebook slightly
//!    female, Google/LinkedIn skew older, …).
//! 2. **Correlated interests** — whether a user matches a targeting
//!    attribute is a Bernoulli draw whose log-odds are a linear function of
//!    the user's *latent interest vector* plus direct demographic bias
//!    terms (see [`AttributeModel`]). Because demographics shift the latent
//!    vector, attributes that load on the same latent directions are
//!    *jointly* more demographically skewed than either is alone — which is
//!    exactly the composition effect the paper studies.
//!
//! Everything is a pure function of `(seed, user id)`, so universes are
//! reproducible bit-for-bit regardless of thread count, and repeated
//! audience-size queries are consistent (the paper verifies this property
//! of the real platforms in §3).
//!
//! # Scale
//!
//! Real platforms have 10⁸–10⁹ users; simulating each would be wasteful.
//! A [`Universe`] simulates `n_users` (typically 10⁵–10⁶) and carries a
//! `scale` factor so that reported audience sizes land in the platform's
//! real range. The scaling is applied by the platform layer when it rounds
//! estimates; all set arithmetic happens at simulation scale.
//!
//! # Example
//!
//! ```
//! use adcomp_population::{
//!     AttributeModel, DemographicProfile, Gender, Universe, UniverseConfig,
//! };
//!
//! let universe = Universe::generate(&UniverseConfig {
//!     n_users: 10_000,
//!     seed: 7,
//!     scale: 1_000.0,
//!     profile: DemographicProfile::balanced(),
//! });
//!
//! // A mildly male-skewed attribute.
//! let model = AttributeModel::new(42).popularity(0.10).gender_bias(0.8);
//! let audience = universe.materialize(&model);
//! let males = universe.gender_audience(Gender::Male);
//! let male_rate = audience.intersection_len(males) as f64 / males.len() as f64;
//! let females = universe.gender_audience(Gender::Female);
//! let female_rate = audience.intersection_len(females) as f64 / females.len() as f64;
//! assert!(male_rate > female_rate);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod demographics;
mod hash;
pub mod inference;
mod latent;
pub mod segment;
mod universe;

pub use demographics::{AgeBucket, DemographicProfile, Demographics, Gender};
pub use inference::{AttributeInference, InferredView};
pub use latent::{AttributeModel, LATENT_DIMS};
pub use segment::{CacheStats, SegmentAudience, SegmentError, SegmentStore, SEGMENT_ALIGN};
pub use universe::{Universe, UniverseConfig};

pub(crate) use hash::{mix, normal_f32, uniform_f64};

/// Deterministic hash-based sampling helpers.
///
/// Exposed so downstream catalog generators can draw per-attribute
/// parameters from the same reproducible, stateless streams the universe
/// itself uses. Coordinates `(seed, a, b)` identify a stream position.
pub mod hash_api {
    /// Uniform sample in `[0, 1)`.
    pub fn uniform(seed: u64, a: u64, b: u64) -> f64 {
        crate::hash::uniform_f64(seed, a, b)
    }

    /// Standard normal sample.
    pub fn normal(seed: u64, a: u64, b: u64) -> f32 {
        crate::hash::normal_f32(seed, a, b)
    }
}
