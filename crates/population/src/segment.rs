//! Streamed, segment-at-a-time universe generation and serving.
//!
//! A monolithic [`Universe`](crate::Universe) holds every user's latent
//! vector in memory (`n × 12 × f32`), which caps practical universes at a
//! few million users. This module scales generation to tens of millions by
//! splitting the id space into fixed-size **segments**: each segment's
//! users are generated, their demographic and attribute audiences
//! materialised into [`Bitset`]s, serialised to one file per segment, and
//! the per-user buffers dropped before the next segment starts. Peak RSS
//! is therefore a function of the segment size, not the universe size.
//!
//! Because every per-user quantity is a pure function of
//! `(seed, user id)` (see [`crate::universe`]'s stream derivation), the
//! segmented generator is **byte-identical** to the monolithic one: the
//! union of the per-segment audiences equals the audience the monolithic
//! generator would materialise. Segment sizes are required to be multiples
//! of 65 536 so per-segment bitsets occupy disjoint chunk ranges.
//!
//! Serving side, a [`SegmentStore`] exposes:
//!
//! * manifest **cardinalities** per `(segment, audience)` — zero-IO upper
//!   bounds for the discovery search's reach pruning;
//! * on-demand audience loading through a bounded LRU [`CacheStats`]
//!   cache, so query-time RSS is bounded by the configured cache size.
//!
//! On-disk layout: `manifest.bin` plus `seg-NNNNN.bin` files, each the
//! concatenation of the segment's serialised audiences (decodable with
//! [`Bitset::from_bytes_prefix`]).

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use adcomp_bitset::{Bitset, DecodeError};

use crate::demographics::{AgeBucket, Demographics, Gender};
use crate::latent::{AttributeModel, LATENT_DIMS};
use crate::universe::{fill_users, UniverseConfig};
use crate::{mix, uniform_f64};

/// Segment sizes must be a multiple of this (one bitset chunk), so that
/// per-segment bitsets never share a chunk and concatenate losslessly.
pub const SEGMENT_ALIGN: u32 = 1 << 16;

/// Magic + version prefix of `manifest.bin`.
const MANIFEST_MAGIC: &[u8; 8] = b"ADSEGM01";

/// Fixed audiences stored before the attribute audiences in every
/// segment file: everyone, 2 genders, 4 age buckets.
const FIXED_AUDIENCES: u32 = 7;

/// One audience of a segmented universe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SegmentAudience {
    /// Every user of the segment (the paper's relevant audience).
    Everyone,
    /// Users of one gender.
    Gender(Gender),
    /// Users of one age bucket.
    Age(AgeBucket),
    /// Users in the audience of the `i`-th attribute model passed to
    /// [`SegmentStore::create`].
    Attribute(u32),
}

impl SegmentAudience {
    fn index(self) -> u32 {
        match self {
            SegmentAudience::Everyone => 0,
            SegmentAudience::Gender(g) => 1 + g.index() as u32,
            SegmentAudience::Age(a) => 3 + a.index() as u32,
            SegmentAudience::Attribute(i) => FIXED_AUDIENCES + i,
        }
    }
}

/// Failures creating or serving a segment store.
#[derive(Debug)]
pub enum SegmentError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A stored bitset failed validation.
    Decode(DecodeError),
    /// The manifest or a request is structurally invalid.
    Corrupt(&'static str),
}

impl std::fmt::Display for SegmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SegmentError::Io(e) => write!(f, "segment io: {e}"),
            SegmentError::Decode(e) => write!(f, "segment decode: {e}"),
            SegmentError::Corrupt(what) => write!(f, "segment store corrupt: {what}"),
        }
    }
}

impl std::error::Error for SegmentError {}

impl From<std::io::Error> for SegmentError {
    fn from(e: std::io::Error) -> Self {
        SegmentError::Io(e)
    }
}

impl From<DecodeError> for SegmentError {
    fn from(e: DecodeError) -> Self {
        SegmentError::Decode(e)
    }
}

/// Location and size of one audience inside its segment file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct AudienceEntry {
    cardinality: u64,
    offset: u64,
    bytes: u64,
}

/// Everything needed to serve a segmented universe without touching the
/// segment files: config, layout, and per-(segment, audience)
/// cardinalities/offsets.
#[derive(Debug)]
pub struct SegmentManifest {
    config: UniverseConfig,
    segment_users: u32,
    n_attributes: u32,
    /// `entries[segment][audience index]`.
    entries: Vec<Vec<AudienceEntry>>,
}

impl SegmentManifest {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MANIFEST_MAGIC);
        out.extend_from_slice(&self.config.n_users.to_le_bytes());
        out.extend_from_slice(&self.config.seed.to_le_bytes());
        out.extend_from_slice(&self.config.scale.to_bits().to_le_bytes());
        let p = &self.config.profile;
        out.extend_from_slice(&p.male_fraction.to_bits().to_le_bytes());
        for w in p.age_weights {
            out.extend_from_slice(&w.to_bits().to_le_bytes());
        }
        // f32 signals are widened to u64 slots for a uniform record layout.
        out.extend_from_slice(&u64::from(p.gender_signal.to_bits()).to_le_bytes());
        out.extend_from_slice(&u64::from(p.age_signal.to_bits()).to_le_bytes());
        out.extend_from_slice(&self.segment_users.to_le_bytes());
        out.extend_from_slice(&self.n_attributes.to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for seg in &self.entries {
            for e in seg {
                out.extend_from_slice(&e.cardinality.to_le_bytes());
                out.extend_from_slice(&e.offset.to_le_bytes());
                out.extend_from_slice(&e.bytes.to_le_bytes());
            }
        }
        out
    }

    fn decode(bytes: &[u8]) -> Result<SegmentManifest, SegmentError> {
        let mut r = ManifestReader { buf: bytes };
        if r.take(8)? != MANIFEST_MAGIC {
            return Err(SegmentError::Corrupt("bad manifest magic"));
        }
        let n_users = r.u32()?;
        let seed = r.u64()?;
        let scale = f64::from_bits(r.u64()?);
        let male_fraction = f64::from_bits(r.u64()?);
        let mut age_weights = [0f64; 4];
        for w in &mut age_weights {
            *w = f64::from_bits(r.u64()?);
        }
        let gender_signal = f32::from_bits(r.u64()? as u32);
        let age_signal = f32::from_bits(r.u64()? as u32);
        let segment_users = r.u32()?;
        let n_attributes = r.u32()?;
        let n_segments = r.u32()? as usize;
        if segment_users == 0 || segment_users % SEGMENT_ALIGN != 0 {
            return Err(SegmentError::Corrupt("segment size not chunk-aligned"));
        }
        if n_segments != (n_users as usize).div_ceil(segment_users as usize) {
            return Err(SegmentError::Corrupt("segment count mismatch"));
        }
        let per_segment = (FIXED_AUDIENCES + n_attributes) as usize;
        let mut entries = Vec::with_capacity(n_segments);
        for _ in 0..n_segments {
            let mut seg = Vec::with_capacity(per_segment);
            for _ in 0..per_segment {
                seg.push(AudienceEntry {
                    cardinality: r.u64()?,
                    offset: r.u64()?,
                    bytes: r.u64()?,
                });
            }
            entries.push(seg);
        }
        if !r.buf.is_empty() {
            return Err(SegmentError::Corrupt("trailing manifest bytes"));
        }
        Ok(SegmentManifest {
            config: UniverseConfig {
                n_users,
                seed,
                scale,
                profile: crate::demographics::DemographicProfile {
                    male_fraction,
                    age_weights,
                    gender_signal,
                    age_signal,
                },
            },
            segment_users,
            n_attributes,
            entries,
        })
    }
}

struct ManifestReader<'a> {
    buf: &'a [u8],
}

impl<'a> ManifestReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SegmentError> {
        if self.buf.len() < n {
            return Err(SegmentError::Corrupt("manifest truncated"));
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    fn u32(&mut self) -> Result<u32, SegmentError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SegmentError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    // f32s are stored widened to u64 slots to keep the record layout
    // uniform; the high bits are zero.
}

/// Snapshot of the audience cache's effectiveness and footprint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Audience loads answered from memory.
    pub hits: u64,
    /// Audience loads that read and decoded a segment file.
    pub misses: u64,
    /// Bytes of decoded audiences currently resident.
    pub resident_bytes: usize,
    /// Decoded audiences currently resident.
    pub resident_entries: usize,
}

/// Bounded LRU over decoded `(segment, audience)` bitsets.
struct AudienceCache {
    capacity_bytes: usize,
    map: HashMap<u64, Arc<Bitset>>,
    /// Least-recently-used at the front.
    order: VecDeque<u64>,
    stats: CacheStats,
}

impl AudienceCache {
    fn new(capacity_bytes: usize) -> Self {
        AudienceCache {
            capacity_bytes,
            map: HashMap::new(),
            order: VecDeque::new(),
            stats: CacheStats::default(),
        }
    }

    fn get(&mut self, key: u64) -> Option<Arc<Bitset>> {
        let hit = self.map.get(&key).cloned();
        if hit.is_some() {
            self.stats.hits += 1;
            if let Some(pos) = self.order.iter().position(|&k| k == key) {
                self.order.remove(pos);
                self.order.push_back(key);
            }
        }
        hit
    }

    fn insert(&mut self, key: u64, set: Arc<Bitset>) {
        self.stats.misses += 1;
        self.stats.resident_bytes += set.memory_bytes();
        self.map.insert(key, set);
        self.order.push_back(key);
        // Evict oldest first, but always keep the newest entry so a
        // single oversized audience can still be served.
        while self.stats.resident_bytes > self.capacity_bytes && self.order.len() > 1 {
            let evict = self.order.pop_front().expect("order non-empty");
            if let Some(gone) = self.map.remove(&evict) {
                self.stats.resident_bytes -= gone.memory_bytes();
            }
        }
        self.stats.resident_entries = self.map.len();
    }
}

/// A segmented universe on disk: generation-complete audiences served
/// through a bounded cache. See the [module docs](self).
pub struct SegmentStore {
    dir: PathBuf,
    manifest: SegmentManifest,
    cache: Mutex<AudienceCache>,
}

impl SegmentStore {
    /// Generates a segmented universe under `dir`, one segment at a time.
    ///
    /// Peak memory is `O(segment_users)` (per-user buffers plus the
    /// segment's audiences), independent of `config.n_users`. The result
    /// is byte-identical to materialising the same `models` on a
    /// monolithic [`Universe`](crate::Universe) with the same config.
    ///
    /// # Panics
    /// Panics when `segment_users` is zero or not a multiple of
    /// [`SEGMENT_ALIGN`], or when the config is invalid.
    pub fn create(
        dir: &Path,
        config: &UniverseConfig,
        segment_users: u32,
        models: &[AttributeModel],
        cache_bytes: usize,
    ) -> Result<SegmentStore, SegmentError> {
        assert!(config.n_users > 0, "universe must have at least one user");
        assert!(config.scale > 0.0, "scale must be positive");
        assert!(
            segment_users > 0 && segment_users.is_multiple_of(SEGMENT_ALIGN),
            "segment_users must be a positive multiple of {SEGMENT_ALIGN}"
        );
        std::fs::create_dir_all(dir)?;
        let n_segments = (config.n_users as usize).div_ceil(segment_users as usize);
        let mut entries = Vec::with_capacity(n_segments);
        for seg in 0..n_segments as u32 {
            let start = seg * segment_users;
            let end = (start + segment_users).min(config.n_users);
            let audiences = generate_segment(config, start, end, models);
            let mut buf = Vec::new();
            let mut seg_entries = Vec::with_capacity(audiences.len());
            for set in &audiences {
                let offset = buf.len() as u64;
                set.write_into(&mut buf);
                seg_entries.push(AudienceEntry {
                    cardinality: set.len(),
                    offset,
                    bytes: buf.len() as u64 - offset,
                });
            }
            let mut file = std::fs::File::create(segment_path(dir, seg))?;
            file.write_all(&buf)?;
            file.sync_all()?;
            entries.push(seg_entries);
        }
        let manifest = SegmentManifest {
            config: config.clone(),
            segment_users,
            n_attributes: models.len() as u32,
            entries,
        };
        std::fs::write(dir.join("manifest.bin"), manifest.encode())?;
        Ok(SegmentStore {
            dir: dir.to_path_buf(),
            manifest,
            cache: Mutex::new(AudienceCache::new(cache_bytes)),
        })
    }

    /// Opens an existing store by reading its manifest.
    pub fn open(dir: &Path, cache_bytes: usize) -> Result<SegmentStore, SegmentError> {
        let manifest = SegmentManifest::decode(&std::fs::read(dir.join("manifest.bin"))?)?;
        Ok(SegmentStore {
            dir: dir.to_path_buf(),
            manifest,
            cache: Mutex::new(AudienceCache::new(cache_bytes)),
        })
    }

    /// The generation config of the stored universe.
    pub fn config(&self) -> &UniverseConfig {
        &self.manifest.config
    }

    /// Users per segment (the last segment may be shorter).
    pub fn segment_users(&self) -> u32 {
        self.manifest.segment_users
    }

    /// Number of segments.
    pub fn n_segments(&self) -> u32 {
        self.manifest.entries.len() as u32
    }

    /// Number of stored attribute audiences.
    pub fn n_attributes(&self) -> u32 {
        self.manifest.n_attributes
    }

    /// Id range `[start, end)` of one segment.
    pub fn segment_bounds(&self, segment: u32) -> (u32, u32) {
        let start = segment * self.manifest.segment_users;
        let end = (start + self.manifest.segment_users).min(self.manifest.config.n_users);
        (start, end)
    }

    fn entry(
        &self,
        segment: u32,
        audience: SegmentAudience,
    ) -> Result<AudienceEntry, SegmentError> {
        let seg = self
            .manifest
            .entries
            .get(segment as usize)
            .ok_or(SegmentError::Corrupt("segment index out of range"))?;
        seg.get(audience.index() as usize)
            .copied()
            .ok_or(SegmentError::Corrupt("audience index out of range"))
    }

    /// Exact size of one audience within one segment, from the manifest
    /// alone (no IO). These are the per-segment cardinality bounds the
    /// discovery search prunes with.
    pub fn cardinality(
        &self,
        segment: u32,
        audience: SegmentAudience,
    ) -> Result<u64, SegmentError> {
        Ok(self.entry(segment, audience)?.cardinality)
    }

    /// Exact size of one audience across the whole universe (no IO).
    pub fn total_cardinality(&self, audience: SegmentAudience) -> Result<u64, SegmentError> {
        let idx = audience.index() as usize;
        let mut total = 0u64;
        for seg in &self.manifest.entries {
            total += seg
                .get(idx)
                .ok_or(SegmentError::Corrupt("audience index out of range"))?
                .cardinality;
        }
        Ok(total)
    }

    /// Loads one audience of one segment through the bounded cache.
    ///
    /// The returned bitset holds **global** user ids (the segment's id
    /// range), so per-segment results combine by disjoint union.
    pub fn load(
        &self,
        segment: u32,
        audience: SegmentAudience,
    ) -> Result<Arc<Bitset>, SegmentError> {
        let key = (u64::from(segment) << 32) | u64::from(audience.index());
        if let Some(hit) = self.cache.lock().expect("cache lock").get(key) {
            return Ok(hit);
        }
        let entry = self.entry(segment, audience)?;
        let mut file = std::fs::File::open(segment_path(&self.dir, segment))?;
        file.seek(SeekFrom::Start(entry.offset))?;
        let mut bytes = vec![0u8; entry.bytes as usize];
        file.read_exact(&mut bytes)?;
        let set = Bitset::from_bytes(&bytes)?;
        if set.len() != entry.cardinality {
            return Err(SegmentError::Corrupt("cardinality mismatch on load"));
        }
        let set = Arc::new(set);
        self.cache
            .lock()
            .expect("cache lock")
            .insert(key, Arc::clone(&set));
        Ok(set)
    }

    /// Materialises one audience across all segments as a single bitset.
    ///
    /// This is the monolithic-equivalence hook (and only sensible at
    /// seed scale): segments occupy disjoint chunk ranges, so the union
    /// is exactly what the monolithic generator would produce.
    pub fn assemble(&self, audience: SegmentAudience) -> Result<Bitset, SegmentError> {
        let mut out = Bitset::new();
        for seg in 0..self.n_segments() {
            out = out.or(self.load(seg, audience)?.as_ref());
        }
        Ok(out)
    }

    /// Current cache effectiveness and footprint.
    pub fn cache_stats(&self) -> CacheStats {
        let cache = self.cache.lock().expect("cache lock");
        let mut stats = cache.stats;
        stats.resident_entries = cache.map.len();
        stats
    }
}

fn segment_path(dir: &Path, segment: u32) -> PathBuf {
    dir.join(format!("seg-{segment:05}.bin"))
}

/// Generates one segment's audiences: everyone, genders, ages, then one
/// audience per attribute model, all over global ids `[start, end)`.
fn generate_segment(
    config: &UniverseConfig,
    start: u32,
    end: u32,
    models: &[AttributeModel],
) -> Vec<Bitset> {
    let seg_len = (end - start) as usize;
    let mut demos = vec![0u8; seg_len];
    let mut latent = vec![0f32; seg_len * LATENT_DIMS];

    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let chunk = seg_len.div_ceil(threads).max(1024);
    crossbeam::thread::scope(|scope| {
        let demo_chunks = demos.chunks_mut(chunk);
        let latent_chunks = latent.chunks_mut(chunk * LATENT_DIMS);
        for (idx, (dchunk, lchunk)) in demo_chunks.zip(latent_chunks).enumerate() {
            let chunk_start = start + (idx * chunk) as u32;
            scope.spawn(move |_| {
                fill_users(config, chunk_start, dchunk, lchunk);
            });
        }
    })
    .expect("segment generation worker panicked");

    let mut gender_ids: [Vec<u32>; 2] = Default::default();
    let mut age_ids: [Vec<u32>; 4] = Default::default();
    for (offset, &packed) in demos.iter().enumerate() {
        let d = Demographics::unpack(packed);
        let user = start + offset as u32;
        gender_ids[d.gender.index()].push(user);
        age_ids[d.age.index()].push(user);
    }

    // Attribute audiences, parallel across models (deterministic: each
    // model's membership is a pure function of the seeds and user id).
    let mut attr_ids: Vec<Vec<u32>> = vec![Vec::new(); models.len()];
    if !models.is_empty() {
        let per = models.len().div_ceil(threads).max(1);
        crossbeam::thread::scope(|scope| {
            for (slot, out_chunk) in attr_ids.chunks_mut(per).enumerate() {
                let model_chunk = &models[slot * per..(slot * per + out_chunk.len())];
                let demos = &demos;
                let latent = &latent;
                scope.spawn(move |_| {
                    for (model, out) in model_chunk.iter().zip(out_chunk.iter_mut()) {
                        *out = materialize_segment(config, model, start, demos, latent);
                    }
                });
            }
        })
        .expect("segment materialisation worker panicked");
    }

    let mut audiences = Vec::with_capacity(FIXED_AUDIENCES as usize + models.len());
    audiences.push(Bitset::from_sorted_iter(start..end));
    for ids in gender_ids {
        audiences.push(Bitset::from_sorted_iter(ids));
    }
    for ids in age_ids {
        audiences.push(Bitset::from_sorted_iter(ids));
    }
    for ids in attr_ids {
        audiences.push(Bitset::from_sorted_iter(ids));
    }
    for set in &mut audiences {
        set.run_optimize();
    }
    audiences
}

/// Segment-local mirror of `Universe::materialize_range`: same draw-seed
/// derivation, same Bernoulli stream, so memberships agree exactly with
/// the monolithic path.
fn materialize_segment(
    config: &UniverseConfig,
    model: &AttributeModel,
    start: u32,
    demos: &[u8],
    latent: &[f32],
) -> Vec<u32> {
    let mut members = Vec::new();
    let draw_seed = mix(config.seed, 0xA77B, model.seed);
    for (offset, &packed) in demos.iter().enumerate() {
        let user = start + offset as u32;
        let demo = Demographics::unpack(packed);
        let z = &latent[offset * LATENT_DIMS..(offset + 1) * LATENT_DIMS];
        let p = model.probability(z, demo);
        if uniform_f64(draw_seed, user as u64, 0) < p {
            members.push(user);
        }
    }
    members
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demographics::DemographicProfile;
    use crate::universe::Universe;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("adcomp-segment-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn test_config(seed: u64, n_users: u32) -> UniverseConfig {
        UniverseConfig {
            n_users,
            seed,
            scale: 10.0,
            profile: DemographicProfile::balanced(),
        }
    }

    fn test_models() -> Vec<AttributeModel> {
        vec![
            AttributeModel::new(1).popularity(0.2),
            AttributeModel::new(2).popularity(0.1).gender_bias(0.8),
            AttributeModel::new(3).popularity(0.05).loading(0, 0.7),
        ]
    }

    #[test]
    fn streamed_matches_monolithic() {
        let config = test_config(41, 150_000); // 3 segments, last short
        let models = test_models();
        let dir = tmpdir("mono");
        let store = SegmentStore::create(&dir, &config, SEGMENT_ALIGN, &models, 1 << 20).unwrap();
        let universe = Universe::generate(&config);

        let mono_everyone = universe.everyone().clone();
        assert_eq!(
            store.assemble(SegmentAudience::Everyone).unwrap(),
            mono_everyone
        );
        for g in [Gender::Male, Gender::Female] {
            assert_eq!(
                &store.assemble(SegmentAudience::Gender(g)).unwrap(),
                universe.gender_audience(g)
            );
        }
        for a in AgeBucket::ALL {
            assert_eq!(
                &store.assemble(SegmentAudience::Age(a)).unwrap(),
                universe.age_audience(a)
            );
        }
        for (i, m) in models.iter().enumerate() {
            let assembled = store
                .assemble(SegmentAudience::Attribute(i as u32))
                .unwrap();
            let mono = universe.materialize(m);
            assert_eq!(assembled, mono, "attribute {i}");
            assert_eq!(
                store
                    .total_cardinality(SegmentAudience::Attribute(i as u32))
                    .unwrap(),
                mono.len()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_roundtrips_manifest_and_serves_identical_audiences() {
        let config = test_config(7, 100_000);
        let models = test_models();
        let dir = tmpdir("open");
        let created = SegmentStore::create(&dir, &config, SEGMENT_ALIGN, &models, 1 << 20).unwrap();
        let opened = SegmentStore::open(&dir, 1 << 20).unwrap();
        assert_eq!(opened.config(), &config);
        assert_eq!(opened.segment_users(), SEGMENT_ALIGN);
        assert_eq!(opened.n_segments(), 2);
        assert_eq!(opened.n_attributes(), models.len() as u32);
        assert_eq!(opened.segment_bounds(1), (65_536, 100_000));
        for seg in 0..opened.n_segments() {
            for aud in [
                SegmentAudience::Everyone,
                SegmentAudience::Gender(Gender::Female),
                SegmentAudience::Age(AgeBucket::A35_54),
                SegmentAudience::Attribute(2),
            ] {
                assert_eq!(
                    opened.load(seg, aud).unwrap(),
                    created.load(seg, aud).unwrap(),
                    "seg {seg} {aud:?}"
                );
                assert_eq!(
                    opened.cardinality(seg, aud).unwrap(),
                    opened.load(seg, aud).unwrap().len()
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_is_bounded_and_counts_hits() {
        let config = test_config(9, 4 * SEGMENT_ALIGN);
        let models = test_models();
        let dir = tmpdir("cache");
        // Tiny cache: a couple of KB forces constant eviction.
        let store = SegmentStore::create(&dir, &config, SEGMENT_ALIGN, &models, 4096).unwrap();
        for round in 0..3 {
            for seg in 0..store.n_segments() {
                let a = store.load(seg, SegmentAudience::Attribute(0)).unwrap();
                assert_eq!(
                    a.len(),
                    store
                        .cardinality(seg, SegmentAudience::Attribute(0))
                        .unwrap(),
                    "round {round}"
                );
            }
        }
        let stats = store.cache_stats();
        assert!(stats.misses > 0);
        assert!(
            stats.resident_bytes <= 4096 || stats.resident_entries == 1,
            "cache exceeded bound: {stats:?}"
        );
        // Repeated loads of one hot audience hit.
        let before = store.cache_stats().hits;
        let first = store.load(0, SegmentAudience::Everyone).unwrap();
        let second = store.load(0, SegmentAudience::Everyone).unwrap();
        assert_eq!(first, second);
        assert!(store.cache_stats().hits > before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn misaligned_segment_size_rejected() {
        let config = test_config(1, 10_000);
        let dir = tmpdir("align");
        let err = std::panic::catch_unwind(|| {
            let _ = SegmentStore::create(&dir, &config, 1000, &[], 1 << 20);
        });
        assert!(err.is_err(), "non-multiple of 65536 must be rejected");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_manifest_rejected() {
        let config = test_config(2, SEGMENT_ALIGN);
        let dir = tmpdir("corrupt");
        let _ = SegmentStore::create(&dir, &config, SEGMENT_ALIGN, &[], 1 << 20).unwrap();
        let path = dir.join("manifest.bin");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            SegmentStore::open(&dir, 1 << 20),
            Err(SegmentError::Corrupt("bad manifest magic"))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
