//! The user universe: generation and attribute-audience materialisation.

use adcomp_bitset::Bitset;

use crate::demographics::{AgeBucket, DemographicProfile, Demographics, Gender};
use crate::latent::{AttributeModel, LATENT_DIMS};
use crate::{mix, normal_f32, uniform_f64};

/// Parameters of a universe.
#[derive(Clone, Debug, PartialEq)]
pub struct UniverseConfig {
    /// Number of simulated users.
    pub n_users: u32,
    /// Master seed; two universes with equal configs are identical.
    pub seed: u64,
    /// Multiplier mapping simulated counts to platform-scale counts
    /// (applied by the platform layer's size estimators, never here).
    pub scale: f64,
    /// Demographic priors of the platform's user base.
    pub profile: DemographicProfile,
}

/// Domains of the per-user random streams (the `a` coordinate of
/// [`mix`]). Keeping them disjoint guarantees the demographic draw never
/// correlates with the latent noise.
mod stream {
    pub const GENDER: u64 = 0x01;
    pub const AGE: u64 = 0x02;
    pub const LATENT_BASE: u64 = 0x10; // .. LATENT_BASE + LATENT_DIMS
}

/// A fully generated synthetic user base.
///
/// Owns, per user: packed demographics (1 byte) and the latent interest
/// vector (`LATENT_DIMS` × f32); plus pre-built demographic audiences.
/// Attribute audiences are *not* stored — platforms materialise and cache
/// what their catalogs need via [`Universe::materialize`].
pub struct Universe {
    config: UniverseConfig,
    /// Packed [`Demographics`], one per user.
    demographics: Vec<u8>,
    /// Row-major `n_users × LATENT_DIMS`.
    latent: Vec<f32>,
    by_gender: [Bitset; 2],
    by_age: [Bitset; 4],
    everyone: Bitset,
}

impl Universe {
    /// Generates the universe described by `config`, in parallel.
    ///
    /// Deterministic in `config` alone — thread count does not matter,
    /// because every per-user quantity is a pure function of
    /// `(seed, user id)`.
    ///
    /// # Panics
    /// Panics when `n_users == 0` or `scale <= 0`.
    pub fn generate(config: &UniverseConfig) -> Universe {
        assert!(config.n_users > 0, "universe must have at least one user");
        assert!(config.scale > 0.0, "scale must be positive");
        let n = config.n_users as usize;
        let mut demographics = vec![0u8; n];
        let mut latent = vec![0f32; n * LATENT_DIMS];

        let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
        let chunk = n.div_ceil(threads).max(1024);

        crossbeam::thread::scope(|scope| {
            let demo_chunks = demographics.chunks_mut(chunk);
            let latent_chunks = latent.chunks_mut(chunk * LATENT_DIMS);
            for (idx, (dchunk, lchunk)) in demo_chunks.zip(latent_chunks).enumerate() {
                let start = idx * chunk;
                let config = &config;
                scope.spawn(move |_| {
                    fill_users(config, start as u32, dchunk, lchunk);
                });
            }
        })
        .expect("universe generation worker panicked");

        let mut gender_ids: [Vec<u32>; 2] = [Vec::new(), Vec::new()];
        let mut age_ids: [Vec<u32>; 4] = Default::default();
        for (user, &packed) in demographics.iter().enumerate() {
            let d = Demographics::unpack(packed);
            gender_ids[d.gender.index()].push(user as u32);
            age_ids[d.age.index()].push(user as u32);
        }
        let mut by_gender = gender_ids.map(Bitset::from_sorted_iter);
        let mut by_age = age_ids.map(Bitset::from_sorted_iter);
        let mut everyone = Bitset::from_sorted_iter(0..config.n_users);
        // Demographic audiences are heavily clustered (everyone is one
        // contiguous run); run encoding shrinks them where it helps and
        // is a no-op where it does not.
        for b in by_gender.iter_mut().chain(by_age.iter_mut()) {
            b.run_optimize();
        }
        everyone.run_optimize();

        Universe {
            config: config.clone(),
            demographics,
            latent,
            by_gender,
            by_age,
            everyone,
        }
    }

    /// Number of simulated users.
    pub fn n_users(&self) -> u32 {
        self.config.n_users
    }

    /// The configured simulation-to-platform scale factor.
    pub fn scale(&self) -> f64 {
        self.config.scale
    }

    /// The generation config.
    pub fn config(&self) -> &UniverseConfig {
        &self.config
    }

    /// Demographics of one user.
    ///
    /// # Panics
    /// Panics when `user >= n_users`.
    pub fn demographics(&self, user: u32) -> Demographics {
        Demographics::unpack(self.demographics[user as usize])
    }

    /// Latent interest vector of one user.
    pub fn latent(&self, user: u32) -> &[f32] {
        let start = user as usize * LATENT_DIMS;
        &self.latent[start..start + LATENT_DIMS]
    }

    /// All users of one gender.
    pub fn gender_audience(&self, gender: Gender) -> &Bitset {
        &self.by_gender[gender.index()]
    }

    /// All users in one age bucket.
    pub fn age_audience(&self, age: AgeBucket) -> &Bitset {
        &self.by_age[age.index()]
    }

    /// Every simulated user (the paper's relevant audience `RA`: all
    /// US-based users of the platform).
    pub fn everyone(&self) -> &Bitset {
        &self.everyone
    }

    /// Materialises the audience of an attribute model: the set of users
    /// whose Bernoulli draw (log-odds from [`AttributeModel::logit`])
    /// succeeds. Deterministic per `(universe seed, model seed, user)`.
    pub fn materialize(&self, model: &AttributeModel) -> Bitset {
        let n = self.config.n_users as usize;
        let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
        let chunk = n.div_ceil(threads).max(4096);
        let n_chunks = n.div_ceil(chunk);
        let mut per_chunk: Vec<Vec<u32>> = vec![Vec::new(); n_chunks];

        crossbeam::thread::scope(|scope| {
            for (idx, out) in per_chunk.iter_mut().enumerate() {
                let start = idx * chunk;
                let end = (start + chunk).min(n);
                scope.spawn(move |_| {
                    *out = self.materialize_range(model, start as u32, end as u32);
                });
            }
        })
        .expect("materialisation worker panicked");

        Bitset::from_sorted_iter(per_chunk.into_iter().flatten())
    }

    /// Sequential kernel over `users ∈ [start, end)`.
    fn materialize_range(&self, model: &AttributeModel, start: u32, end: u32) -> Vec<u32> {
        let mut members = Vec::new();
        // Attribute draws live in their own seed space so they can never
        // collide with the universe's demographic/latent streams.
        let draw_seed = mix(self.config.seed, 0xA77B, model.seed);
        for user in start..end {
            let demo = Demographics::unpack(self.demographics[user as usize]);
            let z = self.latent(user);
            let p = model.probability(z, demo);
            if uniform_f64(draw_seed, user as u64, 0) < p {
                members.push(user);
            }
        }
        members
    }

    /// Exact membership probability of one user for a model (used by tests
    /// and the calibration tooling; the platforms only see realised sets).
    pub fn membership_probability(&self, model: &AttributeModel, user: u32) -> f64 {
        model.probability(self.latent(user), self.demographics(user))
    }
}

impl std::fmt::Debug for Universe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Universe")
            .field("n_users", &self.config.n_users)
            .field("seed", &self.config.seed)
            .field("scale", &self.config.scale)
            .field("males", &self.by_gender[0].len())
            .field("females", &self.by_gender[1].len())
            .finish_non_exhaustive()
    }
}

/// Fills demographics and latent vectors for users starting at `start`.
///
/// Shared with the streamed segment generator ([`crate::segment`]): every
/// per-user quantity is a pure function of `(seed, user id)`, so any
/// partition of the id space produces byte-identical users.
pub(crate) fn fill_users(
    config: &UniverseConfig,
    start: u32,
    demos: &mut [u8],
    latents: &mut [f32],
) {
    let age_cdf = config.profile.age_cdf();
    for (offset, packed) in demos.iter_mut().enumerate() {
        let user = start + offset as u32;
        let gender = if uniform_f64(config.seed, stream::GENDER, user as u64)
            < config.profile.male_fraction
        {
            Gender::Male
        } else {
            Gender::Female
        };
        let age_u = uniform_f64(config.seed, stream::AGE, user as u64);
        let age_idx = age_cdf.iter().position(|&c| age_u < c).unwrap_or(3);
        let age = AgeBucket::from_index(age_idx);
        let demo = Demographics { gender, age };
        *packed = demo.pack();

        let z = &mut latents[offset * LATENT_DIMS..(offset + 1) * LATENT_DIMS];
        for (dim, zi) in z.iter_mut().enumerate() {
            *zi = normal_f32(config.seed, stream::LATENT_BASE + dim as u64, user as u64);
        }
        // Demographic shifts on the correlated axes.
        z[0] += gender.signal() * config.profile.gender_signal;
        z[1] += age.signal() * config.profile.age_signal;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(seed: u64) -> Universe {
        Universe::generate(&UniverseConfig {
            n_users: 20_000,
            seed,
            scale: 100.0,
            profile: DemographicProfile::balanced(),
        })
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small(3);
        let b = small(3);
        assert_eq!(a.demographics, b.demographics);
        assert_eq!(a.latent, b.latent);
        let m = AttributeModel::new(5).popularity(0.1);
        assert_eq!(a.materialize(&m), b.materialize(&m));
    }

    #[test]
    fn different_seeds_differ() {
        let a = small(3);
        let b = small(4);
        assert_ne!(a.demographics, b.demographics);
    }

    #[test]
    fn demographic_partitions_cover_everyone() {
        let u = small(1);
        let males = u.gender_audience(Gender::Male);
        let females = u.gender_audience(Gender::Female);
        assert_eq!(males.len() + females.len(), u.n_users() as u64);
        assert!(males.is_disjoint(females));
        let age_total: u64 = AgeBucket::ALL
            .iter()
            .map(|a| u.age_audience(*a).len())
            .sum();
        assert_eq!(age_total, u.n_users() as u64);
        assert_eq!(u.everyone().len(), u.n_users() as u64);
    }

    #[test]
    fn demographic_priors_are_respected() {
        let u = Universe::generate(&UniverseConfig {
            n_users: 50_000,
            seed: 9,
            scale: 1.0,
            profile: DemographicProfile {
                male_fraction: 0.7,
                age_weights: [0.1, 0.2, 0.3, 0.4],
                gender_signal: 1.0,
                age_signal: 1.0,
            },
        });
        let male_frac = u.gender_audience(Gender::Male).len() as f64 / 50_000.0;
        assert!((male_frac - 0.7).abs() < 0.01, "male fraction {male_frac}");
        let old_frac = u.age_audience(AgeBucket::A55Plus).len() as f64 / 50_000.0;
        assert!((old_frac - 0.4).abs() < 0.01, "55+ fraction {old_frac}");
    }

    #[test]
    fn materialized_popularity_matches_target() {
        let u = small(2);
        for p in [0.02, 0.1, 0.4] {
            let m = AttributeModel::new((p * 1000.0) as u64).popularity(p);
            let audience = u.materialize(&m);
            let observed = audience.len() as f64 / u.n_users() as f64;
            // Logistic over N(0, I) latents keeps the mean near the target
            // (slight attenuation from Jensen is expected; allow 30 %).
            assert!(
                (observed - p).abs() / p < 0.3,
                "target {p} observed {observed}"
            );
        }
    }

    #[test]
    fn gender_biased_attribute_skews_and_composition_amplifies() {
        let u = small(11);
        let males = u.gender_audience(Gender::Male);
        let females = u.gender_audience(Gender::Female);
        let rate = |s: &Bitset, base: &Bitset| s.intersection_len(base) as f64 / base.len() as f64;
        let ratio = |s: &Bitset| rate(s, males) / rate(s, females);

        let a = u.materialize(&AttributeModel::new(1).popularity(0.2).gender_bias(0.8));
        let b = u.materialize(&AttributeModel::new(2).popularity(0.2).gender_bias(0.8));
        let ra = ratio(&a);
        let rb = ratio(&b);
        let rab = ratio(&a.and(&b));
        assert!(ra > 1.2 && rb > 1.2, "individual skews: {ra} {rb}");
        assert!(
            rab > ra.max(rb),
            "composition must amplify: {rab} vs {ra}, {rb}"
        );
    }

    #[test]
    fn latent_loading_composition_amplifies_via_shared_axis() {
        // Two attributes with no direct demographic bias, loading on the
        // gender-correlated axis 0: facially neutral but jointly skewed.
        let u = small(12);
        let males = u.gender_audience(Gender::Male);
        let females = u.gender_audience(Gender::Female);
        let rate = |s: &Bitset, base: &Bitset| s.intersection_len(base) as f64 / base.len() as f64;
        let ratio = |s: &Bitset| rate(s, males) / rate(s, females);

        let a = u.materialize(&AttributeModel::new(21).popularity(0.15).loading(0, 0.7));
        let b = u.materialize(&AttributeModel::new(22).popularity(0.15).loading(0, 0.7));
        let rab = ratio(&a.and(&b));
        assert!(ratio(&a) > 1.1 && ratio(&b) > 1.1);
        assert!(
            rab > ratio(&a) && rab > ratio(&b),
            "shared-axis amplification"
        );
    }

    #[test]
    fn materialize_matches_sequential_reference() {
        let u = small(13);
        let m = AttributeModel::new(77)
            .popularity(0.3)
            .gender_bias(-0.5)
            .loading(4, 1.0);
        let parallel = u.materialize(&m);
        let sequential = Bitset::from_sorted_iter(u.materialize_range(&m, 0, u.n_users()));
        assert_eq!(parallel, sequential);
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn zero_users_rejected() {
        let _ = Universe::generate(&UniverseConfig {
            n_users: 0,
            seed: 0,
            scale: 1.0,
            profile: DemographicProfile::balanced(),
        });
    }
}
