//! Property tests for the universe generator: demographic partitions,
//! prior adherence, determinism, and monotonicity of the attribute model.

use adcomp_population::{
    AgeBucket, AttributeInference, AttributeModel, DemographicProfile, Gender, SegmentAudience,
    SegmentStore, Universe, UniverseConfig, SEGMENT_ALIGN,
};
use proptest::prelude::*;

fn arb_profile() -> impl Strategy<Value = DemographicProfile> {
    (
        0.05f64..0.95,
        proptest::array::uniform4(0.05f64..1.0),
        0.0f32..1.5,
        0.0f32..1.5,
    )
        .prop_map(|(male_fraction, age_weights, gender_signal, age_signal)| {
            DemographicProfile {
                male_fraction,
                age_weights,
                gender_signal,
                age_signal,
            }
        })
}

fn universe(seed: u64, profile: DemographicProfile) -> Universe {
    Universe::generate(&UniverseConfig {
        n_users: 6_000,
        seed,
        scale: 1.0,
        profile,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn demographic_sets_partition_for_any_profile(seed in 0u64..1000, profile in arb_profile()) {
        let u = universe(seed, profile);
        let males = u.gender_audience(Gender::Male);
        let females = u.gender_audience(Gender::Female);
        prop_assert!(males.is_disjoint(females));
        prop_assert_eq!(males.len() + females.len(), u.n_users() as u64);
        let age_total: u64 = AgeBucket::ALL.iter().map(|a| u.age_audience(*a).len()).sum();
        prop_assert_eq!(age_total, u.n_users() as u64);
        // Per-user lookup agrees with the precomputed sets.
        for user in (0..u.n_users()).step_by(997) {
            let d = u.demographics(user);
            prop_assert!(u.gender_audience(d.gender).contains(user));
            prop_assert!(u.age_audience(d.age).contains(user));
        }
    }

    #[test]
    fn priors_hold_within_sampling_error(seed in 0u64..1000, profile in arb_profile()) {
        let u = universe(seed, profile.clone());
        let male_frac = u.gender_audience(Gender::Male).len() as f64 / u.n_users() as f64;
        // Binomial std-err for n=6000 is ≤ 0.0065; allow 5 sigma.
        prop_assert!((male_frac - profile.male_fraction).abs() < 0.033,
                     "male {male_frac} vs prior {}", profile.male_fraction);
        let total: f64 = profile.age_weights.iter().sum();
        for age in AgeBucket::ALL {
            let expect = profile.age_weights[age.index()] / total;
            let got = u.age_audience(age).len() as f64 / u.n_users() as f64;
            prop_assert!((got - expect).abs() < 0.04, "{age}: {got} vs {expect}");
        }
    }

    #[test]
    fn materialisation_deterministic_and_seed_sensitive(
        seed in 0u64..1000, attr_seed in 0u64..1000, p in 0.02f64..0.5)
    {
        let u = universe(seed, DemographicProfile::balanced());
        let m = AttributeModel::new(attr_seed).popularity(p);
        let a = u.materialize(&m);
        prop_assert_eq!(a.clone(), u.materialize(&m), "same model → same audience");
        let m2 = AttributeModel::new(attr_seed ^ 0xFFFF_0000).popularity(p);
        let b = u.materialize(&m2);
        // Different attribute seeds decorrelate membership: the overlap
        // should be near p² of the universe, far from identity.
        prop_assert!(a != b || a.is_empty());
    }

    #[test]
    fn popularity_is_monotone_in_bias(seed in 0u64..200, attr_seed in 0u64..200) {
        let u = universe(seed, DemographicProfile::balanced());
        let low = u.materialize(&AttributeModel::new(attr_seed).popularity(0.05));
        let high = u.materialize(&AttributeModel::new(attr_seed).popularity(0.30));
        // Same Bernoulli stream, higher threshold: strictly nested sets.
        prop_assert!(low.is_subset(&high), "audiences share a draw stream");
        prop_assert!(low.len() < high.len());
    }

    #[test]
    fn gender_bias_direction_is_respected(seed in 0u64..200, bias in 0.4f32..1.5) {
        let u = universe(seed, DemographicProfile::balanced());
        let m = AttributeModel::new(7).popularity(0.2).gender_bias(bias);
        let audience = u.materialize(&m);
        let males = u.gender_audience(Gender::Male);
        let females = u.gender_audience(Gender::Female);
        let male_rate = audience.intersection_len(males) as f64 / males.len() as f64;
        let female_rate = audience.intersection_len(females) as f64 / females.len() as f64;
        prop_assert!(male_rate > female_rate,
                     "bias {bias}: male {male_rate} vs female {female_rate}");
    }

    #[test]
    fn streamed_segments_match_monolithic_generator(
        seed in 0u64..500, extra in 0u32..30_000, p in 0.05f64..0.4)
    {
        // A 2-segment streamed universe must be byte-identical to the
        // monolithic generator: same demographic audiences, same
        // attribute memberships, value for value.
        let config = UniverseConfig {
            n_users: SEGMENT_ALIGN + 1 + extra, // always spills into segment 2
            seed,
            scale: 1.0,
            profile: DemographicProfile::balanced(),
        };
        let models = [
            AttributeModel::new(seed ^ 0xA1).popularity(p),
            AttributeModel::new(seed ^ 0xB2).popularity(p).gender_bias(0.6),
        ];
        let dir = std::env::temp_dir().join(format!(
            "adcomp-prop-segment-{}-{seed}-{extra}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SegmentStore::create(&dir, &config, SEGMENT_ALIGN, &models, 1 << 22).unwrap();
        prop_assert_eq!(store.n_segments(), 2);
        let universe = Universe::generate(&config);
        prop_assert_eq!(
            &store.assemble(SegmentAudience::Everyone).unwrap(),
            universe.everyone()
        );
        for g in [Gender::Male, Gender::Female] {
            prop_assert_eq!(
                &store.assemble(SegmentAudience::Gender(g)).unwrap(),
                universe.gender_audience(g)
            );
        }
        for (i, m) in models.iter().enumerate() {
            let streamed = store.assemble(SegmentAudience::Attribute(i as u32)).unwrap();
            let mono = universe.materialize(m);
            prop_assert_eq!(
                streamed.iter().collect::<Vec<_>>(),
                mono.iter().collect::<Vec<_>>()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_error_inference_is_byte_identical_to_oracle(
        seed in 0u64..500, inf_seed in 0u64..500, profile in arb_profile())
    {
        // Identity confusion + no missingness: the inferred view IS the
        // oracle view, set for set — regardless of the inference seed.
        let u = universe(seed, profile);
        let view = AttributeInference::oracle(inf_seed).view(&u);
        prop_assert_eq!(view.observed(), u.everyone());
        prop_assert_eq!(view.missing_count(), 0);
        for g in Gender::ALL {
            prop_assert_eq!(view.gender_audience(g), u.gender_audience(g));
        }
        for a in AgeBucket::ALL {
            prop_assert_eq!(view.age_audience(a), u.age_audience(a));
        }
    }

    #[test]
    fn masked_users_never_resurrected_across_segments(
        seed in 0u64..500, inf_seed in 0u64..500,
        miss in 0.05f64..0.6, scale in -2.0f64..2.0, chunk in 257u32..3_000)
    {
        // A user the missingness mask drops is dropped in *every*
        // chunking of the id space: chunk-at-a-time views never
        // resurrect them, and their union is byte-identical to the
        // monolithic view.
        let u = universe(seed, DemographicProfile::balanced());
        let inference = AttributeInference::noisy(inf_seed, 0.1, 0.15)
            .with_missingness(miss, (inf_seed % 12) as usize, scale);
        let full = inference.view(&u);
        let mut merged = inference.view_of_range(&u, 0, 0);
        let mut start = 0u32;
        while start < u.n_users() {
            let end = (start + chunk).min(u.n_users());
            let part = inference.view_of_range(&u, start, end);
            for user in start..end {
                if !full.observed().contains(user) {
                    prop_assert!(
                        !part.observed().contains(user),
                        "masked user {user} resurrected in chunk [{start},{end})"
                    );
                    for g in Gender::ALL {
                        prop_assert!(!part.gender_audience(g).contains(user));
                    }
                    for a in AgeBucket::ALL {
                        prop_assert!(!part.age_audience(a).contains(user));
                    }
                }
            }
            merged.merge(&part);
            start = end;
        }
        prop_assert_eq!(merged, full);
    }

    #[test]
    fn membership_probability_matches_realised_rate(seed in 0u64..50) {
        // The mean model probability and the realised audience fraction
        // must agree (law of large numbers over the user dimension).
        let u = universe(seed, DemographicProfile::balanced());
        let m = AttributeModel::new(3).popularity(0.15).gender_bias(0.5).loading(4, 0.8);
        let audience = u.materialize(&m);
        let mean_p: f64 = (0..u.n_users())
            .map(|user| u.membership_probability(&m, user))
            .sum::<f64>()
            / u.n_users() as f64;
        let realised = audience.len() as f64 / u.n_users() as f64;
        prop_assert!((mean_p - realised).abs() < 0.02,
                     "mean p {mean_p} vs realised {realised}");
    }
}
