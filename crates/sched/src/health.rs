//! Per-endpoint health scoring.
//!
//! The pool runs one claiming loop per endpoint worker (a pull model:
//! fast endpoints naturally claim more units — weighted work stealing
//! without a central router). Health scoring is the damper on that
//! loop: consecutive unit failures put the endpoint into a cooldown so
//! a dead or rate-limited replica probes cheaply instead of churning
//! grants through the lease TTL.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use adcomp_obs::clock::Clock;
use adcomp_obs::metrics::{Gauge, Registry};

/// Pool tuning shared by all endpoints.
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Claiming loops per endpoint (each holds at most one unit, so
    /// this bounds outstanding units per endpoint).
    pub workers_per_endpoint: usize,
    /// Consecutive failed units before an endpoint cools down.
    pub failure_threshold: u32,
    /// How long a cooled-down endpoint waits before probing again.
    pub cooldown: Duration,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers_per_endpoint: 2,
            failure_threshold: 3,
            cooldown: Duration::from_millis(200),
        }
    }
}

/// Failure-count health state for one endpoint, shared by its workers.
pub struct EndpointHealth {
    label: String,
    consecutive_failures: AtomicU32,
    cooldown_until_us: AtomicU64,
    units_ok: AtomicU64,
    units_failed: AtomicU64,
    inflight: Arc<Gauge>,
    threshold: u32,
    cooldown: Duration,
}

impl EndpointHealth {
    /// Health tracker for the endpoint named `label` (also the
    /// `endpoint` tag on the in-flight gauge).
    pub fn new(label: &str, cfg: &PoolConfig) -> EndpointHealth {
        EndpointHealth {
            label: label.to_string(),
            consecutive_failures: AtomicU32::new(0),
            cooldown_until_us: AtomicU64::new(0),
            units_ok: AtomicU64::new(0),
            units_failed: AtomicU64::new(0),
            inflight: Registry::global()
                .gauge_with("adcomp_sched_endpoint_inflight", &[("endpoint", label)]),
            threshold: cfg.failure_threshold.max(1),
            cooldown: cfg.cooldown,
        }
    }

    /// Endpoint label this tracker scores.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Time left before this endpoint may claim again (zero = healthy).
    pub fn cooldown_remaining(&self, clock: &dyn Clock) -> Duration {
        let until = self.cooldown_until_us.load(Ordering::Acquire);
        let now = clock.now().as_micros() as u64;
        Duration::from_micros(until.saturating_sub(now))
    }

    /// A unit finished cleanly: failure streak resets.
    pub fn record_success(&self) {
        self.units_ok.fetch_add(1, Ordering::Relaxed);
        self.consecutive_failures.store(0, Ordering::Release);
    }

    /// A unit failed on this endpoint (transport error, circuit open…).
    /// Crossing the threshold starts a cooldown.
    pub fn record_failure(&self, clock: &dyn Clock) {
        self.units_failed.fetch_add(1, Ordering::Relaxed);
        let streak = self.consecutive_failures.fetch_add(1, Ordering::AcqRel) + 1;
        if streak >= self.threshold {
            let until = (clock.now() + self.cooldown).as_micros() as u64;
            self.cooldown_until_us.fetch_max(until, Ordering::AcqRel);
        }
    }

    /// Units completed cleanly / failed on this endpoint so far.
    pub fn totals(&self) -> (u64, u64) {
        (
            self.units_ok.load(Ordering::Relaxed),
            self.units_failed.load(Ordering::Relaxed),
        )
    }

    /// RAII in-flight accounting for the per-endpoint gauge.
    pub fn track_inflight(&self) -> InflightToken<'_> {
        self.inflight.add(1);
        InflightToken {
            gauge: &self.inflight,
        }
    }
}

/// Decrements the endpoint's in-flight gauge on drop.
pub struct InflightToken<'a> {
    gauge: &'a Gauge,
}

impl Drop for InflightToken<'_> {
    fn drop(&mut self) {
        self.gauge.add(-1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcomp_obs::clock::ManualClock;

    #[test]
    fn cooldown_starts_at_threshold_and_clears_after_success() {
        let clock = ManualClock::new();
        let h = EndpointHealth::new(
            "ep-test-health",
            &PoolConfig {
                workers_per_endpoint: 1,
                failure_threshold: 2,
                cooldown: Duration::from_millis(100),
            },
        );
        h.record_failure(&clock);
        assert_eq!(h.cooldown_remaining(&clock), Duration::ZERO);
        h.record_failure(&clock);
        assert!(h.cooldown_remaining(&clock) > Duration::ZERO);
        clock.advance(Duration::from_millis(120));
        assert_eq!(h.cooldown_remaining(&clock), Duration::ZERO);
        h.record_success();
        h.record_failure(&clock);
        assert_eq!(
            h.cooldown_remaining(&clock),
            Duration::ZERO,
            "streak reset by success"
        );
        assert_eq!(h.totals(), (1, 3));
    }

    #[test]
    fn inflight_token_balances() {
        let h = EndpointHealth::new("ep-test-inflight", &PoolConfig::default());
        {
            let _t1 = h.track_inflight();
            let _t2 = h.track_inflight();
        }
        let reg = Registry::global();
        let g = reg.gauge_with(
            "adcomp_sched_endpoint_inflight",
            &[("endpoint", "ep-test-inflight")],
        );
        assert_eq!(g.get(), 0);
    }
}
