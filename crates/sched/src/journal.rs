//! Durable job-state hook.
//!
//! The queue calls a [`UnitJournal`] at every unit transition so a
//! coordinator can persist grants/completions (in this workspace:
//! `adcomp-core`'s `StoreJournal` appends them to an `adcomp-store`
//! `RunStore`). The journal is an audit trail, not the dedup mechanism —
//! answered-query dedup on resume goes through `RecordingSource` keys,
//! which is what guarantees zero re-issued answered queries.

/// Receives unit lifecycle events from a [`UnitQueue`](crate::UnitQueue).
///
/// Calls are made under the queue lock, so implementations should be
/// quick (an in-memory append or a buffered store write); they must not
/// call back into the queue.
pub trait UnitJournal: Send + Sync {
    /// A unit was granted to `worker` (attempt is 1-based).
    fn unit_granted(&self, unit: u64, attempt: u32, worker: &str);
    /// A unit fully completed; `slots` answered under this grant.
    fn unit_completed(&self, unit: u64, worker: &str, slots: usize);
    /// A unit went back on the queue (`reason`: "partial" or
    /// "lease expired").
    fn unit_requeued(&self, unit: u64, worker: &str, reason: &str);
    /// A unit exhausted its attempts with `slots` still unanswered.
    fn unit_failed(&self, unit: u64, worker: &str, slots: usize);
}

/// Journal that drops every event — for tests and unjournaled runs.
#[derive(Debug, Default)]
pub struct NullJournal;

impl UnitJournal for NullJournal {
    fn unit_granted(&self, _unit: u64, _attempt: u32, _worker: &str) {}
    fn unit_completed(&self, _unit: u64, _worker: &str, _slots: usize) {}
    fn unit_requeued(&self, _unit: u64, _worker: &str, _reason: &str) {}
    fn unit_failed(&self, _unit: u64, _worker: &str, _slots: usize) {}
}
