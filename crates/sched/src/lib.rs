//! # adcomp-sched — distributed audit scheduler
//!
//! Shards an audit workload (a batch of query *slots*) across N
//! endpoints and merges results deterministically in submission order,
//! bit-identical to a single-endpoint serial run.
//!
//! The design is three small, separately testable layers:
//!
//! * [`queue::UnitQueue`] — a lease-based work queue. Slots are carved
//!   into fixed-size units; workers claim units under a TTL lease with
//!   heartbeats; an expired lease requeues the unit and rejects late
//!   completions as stale, so a killed or hung endpoint never loses or
//!   double-counts a slot.
//! * [`pool`] — claiming loops per endpoint with consecutive-failure
//!   health scoring and cooldowns. The pull model is the routing
//!   policy: fast endpoints claim more (weighted work stealing), cooled
//!   endpoints probe cheaply, and `workers_per_endpoint` plus the
//!   queue's global in-flight cap provide backpressure.
//! * [`journal::UnitJournal`] — durable job-state hook; grants,
//!   completions, requeues, and failures stream to the coordinator's
//!   store so a crash leaves an auditable trail.
//!
//! This crate is deliberately generic — units are slot-index ranges and
//!   runners are a trait — so it depends only on `adcomp-obs` (for the
//! clock and `adcomp_sched_*` metrics). `adcomp-core` supplies the
//! query-aware runner and wires it in via `AuditTarget::with_scheduler`.

pub mod health;
pub mod journal;
pub mod lock;
pub mod pool;
pub mod queue;

pub use health::{EndpointHealth, PoolConfig};
pub use journal::{NullJournal, UnitJournal};
pub use lock::{into_inner_recovering, lock_recovering};
pub use pool::{run_pool, PoolEndpoint, UnitReport, UnitRunner};
pub use queue::{Completion, Grant, LeaseConfig, SlotCensus, UnitQueue};
