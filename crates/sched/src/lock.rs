//! Poison-recovering mutex access for coordinator state.
//!
//! A panicking worker must not take the whole audit down with it: the
//! lease ledger is what makes scheduler state requeue-safe (an
//! interrupted unit's slots are re-granted and re-run), so the data a
//! poisoned lock guards is always either committed-and-consistent or
//! about to be discarded. Recovering the guard is therefore sound — but
//! it must never be *silent*, so every recovery is counted in
//! `adcomp_sched_lock_poisoned` and logged.

use std::sync::{Mutex, MutexGuard};

use adcomp_obs::metrics::Registry;

/// Counts one poison recovery and warns.
fn note_poisoned() {
    Registry::global()
        .counter("adcomp_sched_lock_poisoned")
        .inc();
    adcomp_obs::warn!("recovered a poisoned scheduler lock (a worker panicked mid-update)");
}

/// Locks `mutex`, recovering (and counting) a poisoned guard instead of
/// cascading the panic into every thread that touches shared state.
pub fn lock_recovering<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| {
        note_poisoned();
        // One count per poisoning event, not per subsequent lock.
        mutex.clear_poison();
        poisoned.into_inner()
    })
}

/// Consumes `mutex`, recovering (and counting) poison on the way out.
pub fn into_inner_recovering<T>(mutex: Mutex<T>) -> T {
    mutex.into_inner().unwrap_or_else(|poisoned| {
        note_poisoned();
        poisoned.into_inner()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisoned_lock_recovers_and_counts() {
        let counter = Registry::global().counter("adcomp_sched_lock_poisoned");
        let before = counter.get();
        let m = Mutex::new(7u32);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = m.lock().unwrap();
            panic!("poison it");
        }));
        assert!(m.is_poisoned());
        *lock_recovering(&m) += 1;
        assert_eq!(counter.get(), before + 1, "recovery must be counted");
        assert!(!m.is_poisoned(), "recovery clears the poison flag");
        assert_eq!(into_inner_recovering(m), 8);
        assert_eq!(counter.get(), before + 1, "one count per poisoning event");
    }
}
