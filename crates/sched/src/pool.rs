//! Endpoint worker pool.
//!
//! [`run_pool`] spawns `workers_per_endpoint` claiming loops per
//! endpoint over one shared [`UnitQueue`] and drives a caller-supplied
//! [`UnitRunner`] for each grant. The commit protocol keeps the queue
//! authoritative: the runner buffers results per lease while executing,
//! the pool calls [`UnitQueue::complete`], and only an `Accepted`
//! verdict commits the buffer — a `Stale` verdict (the lease expired
//! and another endpoint re-ran the unit) discards it. That ordering is
//! what makes a killed or hung endpoint unable to double-write a slot.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use adcomp_obs::clock::Clock;
use adcomp_obs::metrics::Registry;

use crate::health::{EndpointHealth, PoolConfig};
use crate::queue::{Completion, Grant, UnitQueue};

/// What a runner did with one granted unit.
#[derive(Clone, Debug, Default)]
pub struct UnitReport {
    /// Slots that now have a deterministic answer buffered under this
    /// lease (a successful value, or an error the caller treats as
    /// final). Unlisted slots are requeued as a remnant.
    pub answered: Vec<usize>,
    /// Whether the endpoint itself misbehaved (transport failure,
    /// circuit open) — feeds health scoring; per-query rejections that
    /// are deterministic answers should leave this false.
    pub endpoint_failed: bool,
}

/// Executes granted units against one endpoint.
///
/// Implementations buffer results keyed by `grant.lease` inside
/// [`run`](UnitRunner::run) and flush or drop them when the pool calls
/// [`commit`](UnitRunner::commit) / [`discard`](UnitRunner::discard)
/// after the queue rules on the completion.
pub trait UnitRunner: Sync {
    /// Runs the unit. `heartbeat` extends the lease and returns `false`
    /// once the lease is lost, at which point the runner should stop
    /// early (its results will be discarded anyway).
    fn run(&self, endpoint: &str, grant: &Grant, heartbeat: &dyn Fn() -> bool) -> UnitReport;
    /// The queue accepted the completion: flush buffered results for
    /// this lease into the merged output.
    fn commit(&self, endpoint: &str, grant: &Grant);
    /// The lease went stale: drop buffered results for this lease.
    fn discard(&self, endpoint: &str, grant: &Grant);
}

/// One endpoint the pool schedules onto.
pub struct PoolEndpoint {
    /// Name used in grants, journal entries, and metric labels.
    pub label: String,
    health: EndpointHealth,
}

impl PoolEndpoint {
    /// An endpoint named `label`, with health scoring per `cfg`.
    pub fn new(label: impl Into<String>, cfg: &PoolConfig) -> PoolEndpoint {
        let label = label.into();
        let health = EndpointHealth::new(&label, cfg);
        PoolEndpoint { label, health }
    }

    /// This endpoint's health tracker (units ok/failed, cooldown).
    pub fn health(&self) -> &EndpointHealth {
        &self.health
    }
}

/// Runs the pool to completion: returns once every seeded slot is done
/// or failed. Workers claim units whenever their endpoint is out of
/// cooldown; the queue's in-flight cap and `workers_per_endpoint`
/// provide backpressure.
pub fn run_pool(
    queue: &UnitQueue,
    endpoints: &[PoolEndpoint],
    runner: &dyn UnitRunner,
    cfg: &PoolConfig,
    clock: &Arc<dyn Clock>,
) {
    std::thread::scope(|scope| {
        for ep in endpoints {
            for w in 0..cfg.workers_per_endpoint.max(1) {
                let worker = format!("{}#{w}", ep.label);
                let clock = Arc::clone(clock);
                scope.spawn(move || worker_loop(queue, ep, runner, &worker, &clock));
            }
        }
    });
}

fn worker_loop(
    queue: &UnitQueue,
    ep: &PoolEndpoint,
    runner: &dyn UnitRunner,
    worker: &str,
    clock: &Arc<dyn Clock>,
) {
    loop {
        let wait = ep.health.cooldown_remaining(clock.as_ref());
        if !wait.is_zero() {
            // Cooled down: don't hold units we won't serve well. Sleep in
            // short slices so a drained queue still lets us exit promptly.
            std::thread::sleep(wait.min(Duration::from_millis(20)));
            if queue.is_drained() {
                return;
            }
            continue;
        }
        let Some(grant) = queue.claim(worker) else {
            return;
        };
        let _inflight = ep.health.track_inflight();
        // A panicking runner must not unwind through the scoped pool and
        // abort the whole audit: contain it, requeue the unit (empty
        // `answered` returns every slot as a remnant), and charge the
        // endpoint. Runner state stays consistent because buffered
        // results are keyed by lease and discarded below.
        let run = catch_unwind(AssertUnwindSafe(|| {
            runner.run(&ep.label, &grant, &|| queue.heartbeat(grant.lease).is_ok())
        }));
        let report = match run {
            Ok(report) => report,
            Err(_) => {
                Registry::global()
                    .counter("adcomp_sched_worker_panics_total")
                    .inc();
                adcomp_obs::warn!(
                    "worker {worker} panicked running unit {}; requeueing its slots",
                    grant.unit
                );
                UnitReport {
                    answered: Vec::new(),
                    endpoint_failed: true,
                }
            }
        };
        match queue.complete(grant.lease, &report.answered) {
            Completion::Accepted { .. } => {
                runner.commit(&ep.label, &grant);
                if report.endpoint_failed {
                    ep.health.record_failure(clock.as_ref());
                } else {
                    ep.health.record_success();
                }
            }
            Completion::Stale => {
                runner.discard(&ep.label, &grant);
                // The unit was re-granted elsewhere; count it against
                // this endpoint only if the runner blamed the endpoint.
                if report.endpoint_failed {
                    ep.health.record_failure(clock.as_ref());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lock::lock_recovering;
    use crate::queue::LeaseConfig;
    use adcomp_obs::clock::MonotonicClock;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// Runner that squares slot indices, buffering per lease and
    /// committing into a shared output map.
    struct SquareRunner {
        buffers: Mutex<HashMap<u64, Vec<(usize, u64)>>>,
        out: Mutex<HashMap<usize, u64>>,
        flaky_endpoint: Option<String>,
        flaky_budget: AtomicUsize,
    }

    impl SquareRunner {
        fn new() -> SquareRunner {
            SquareRunner {
                buffers: Mutex::new(HashMap::new()),
                out: Mutex::new(HashMap::new()),
                flaky_endpoint: None,
                flaky_budget: AtomicUsize::new(0),
            }
        }

        fn flaky(endpoint: &str, failures: usize) -> SquareRunner {
            let mut r = SquareRunner::new();
            r.flaky_endpoint = Some(endpoint.to_string());
            r.flaky_budget = AtomicUsize::new(failures);
            r
        }
    }

    impl UnitRunner for SquareRunner {
        fn run(&self, endpoint: &str, grant: &Grant, heartbeat: &dyn Fn() -> bool) -> UnitReport {
            assert!(heartbeat());
            if Some(endpoint) == self.flaky_endpoint.as_deref() {
                let left = self
                    .flaky_budget
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                    .is_ok();
                if left {
                    return UnitReport {
                        answered: Vec::new(),
                        endpoint_failed: true,
                    };
                }
            }
            let vals: Vec<(usize, u64)> = grant
                .slots
                .iter()
                .map(|&s| (s, (s as u64) * (s as u64)))
                .collect();
            lock_recovering(&self.buffers).insert(grant.lease, vals);
            UnitReport {
                answered: grant.slots.clone(),
                endpoint_failed: false,
            }
        }

        fn commit(&self, _endpoint: &str, grant: &Grant) {
            if let Some(vals) = lock_recovering(&self.buffers).remove(&grant.lease) {
                let mut out = lock_recovering(&self.out);
                for (slot, v) in vals {
                    let prev = out.insert(slot, v);
                    assert!(prev.is_none(), "slot {slot} committed twice");
                }
            }
        }

        fn discard(&self, _endpoint: &str, grant: &Grant) {
            lock_recovering(&self.buffers).remove(&grant.lease);
        }
    }

    fn pool_cfg() -> PoolConfig {
        PoolConfig {
            workers_per_endpoint: 2,
            failure_threshold: 2,
            cooldown: Duration::from_millis(10),
        }
    }

    #[test]
    fn pool_drains_all_slots_across_endpoints() {
        let clock: Arc<dyn Clock> = Arc::new(MonotonicClock::new());
        let q = UnitQueue::new(LeaseConfig::default(), Arc::clone(&clock), None);
        q.seed_slots(100, 7);
        let eps = vec![
            PoolEndpoint::new("ep-a", &pool_cfg()),
            PoolEndpoint::new("ep-b", &pool_cfg()),
            PoolEndpoint::new("ep-c", &pool_cfg()),
        ];
        let runner = SquareRunner::new();
        run_pool(&q, &eps, &runner, &pool_cfg(), &clock);
        assert!(q.is_drained());
        assert_eq!(q.census().done, 100);
        let out = lock_recovering(&runner.out);
        assert_eq!(out.len(), 100);
        for s in 0..100usize {
            assert_eq!(out[&s], (s as u64) * (s as u64));
        }
    }

    #[test]
    fn flaky_endpoint_cools_down_but_run_completes() {
        let clock: Arc<dyn Clock> = Arc::new(MonotonicClock::new());
        let q = UnitQueue::new(LeaseConfig::default(), Arc::clone(&clock), None);
        q.seed_slots(40, 4);
        // Single endpoint that fails its first 6 units: every failure is
        // charged to it deterministically and cooldowns must engage
        // without wedging the run.
        let eps = vec![PoolEndpoint::new("ep-flaky", &pool_cfg())];
        let runner = SquareRunner::flaky("ep-flaky", 6);
        run_pool(&q, &eps, &runner, &pool_cfg(), &clock);
        assert_eq!(q.census().done, 40);
        assert_eq!(lock_recovering(&runner.out).len(), 40);
        let (ok, failed) = eps[0].health().totals();
        assert_eq!(failed, 6, "every budgeted failure recorded");
        assert_eq!(ok, 10, "all ten units eventually completed");
    }

    /// Runner that panics *while holding its buffer lock* for its first
    /// `budget` units — the worst case the poison-recovery path exists
    /// for: the panic is contained, the lock recovered, the unit
    /// requeued, and the run still completes with every slot correct.
    struct PanickingRunner {
        inner: SquareRunner,
        budget: AtomicUsize,
    }

    impl UnitRunner for PanickingRunner {
        fn run(&self, endpoint: &str, grant: &Grant, heartbeat: &dyn Fn() -> bool) -> UnitReport {
            let panic_now = self
                .budget
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok();
            if panic_now {
                let _guard = self.inner.buffers.lock().unwrap_or_else(|p| p.into_inner());
                panic!("simulated worker crash mid-update");
            }
            self.inner.run(endpoint, grant, heartbeat)
        }

        fn commit(&self, endpoint: &str, grant: &Grant) {
            self.inner.commit(endpoint, grant);
        }

        fn discard(&self, endpoint: &str, grant: &Grant) {
            self.inner.discard(endpoint, grant);
        }
    }

    #[test]
    fn panicking_worker_is_contained_and_counted() {
        let reg = adcomp_obs::metrics::Registry::global();
        let panics = reg.counter("adcomp_sched_worker_panics_total");
        let poisoned = reg.counter("adcomp_sched_lock_poisoned");
        let (panics_before, poisoned_before) = (panics.get(), poisoned.get());

        let clock: Arc<dyn Clock> = Arc::new(MonotonicClock::new());
        let q = UnitQueue::new(LeaseConfig::default(), Arc::clone(&clock), None);
        q.seed_slots(60, 5);
        let eps = vec![
            PoolEndpoint::new("ep-a", &pool_cfg()),
            PoolEndpoint::new("ep-b", &pool_cfg()),
        ];
        let runner = PanickingRunner {
            inner: SquareRunner::new(),
            budget: AtomicUsize::new(3),
        };
        run_pool(&q, &eps, &runner, &pool_cfg(), &clock);

        assert_eq!(q.census().done, 60, "panicked units must be re-run");
        let out = lock_recovering(&runner.inner.out);
        assert_eq!(out.len(), 60);
        for s in 0..60usize {
            assert_eq!(out[&s], (s as u64) * (s as u64));
        }
        assert_eq!(
            panics.get(),
            panics_before + 3,
            "every contained panic is counted"
        );
        assert!(
            poisoned.get() > poisoned_before,
            "the poisoned buffer lock must be recovered through the counting path"
        );
    }
}
