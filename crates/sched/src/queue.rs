//! The lease-based work queue: the scheduler's source of truth.
//!
//! A batch of query *slots* (indices into the caller's spec vector) is
//! carved into fixed-size **work units**. Workers claim units under a
//! TTL lease, heartbeat while executing, and complete with the subset of
//! slots they actually answered; unanswered slots become a *remnant*
//! unit that goes back on the queue. An expired lease requeues its unit
//! wholesale, and any late completion under the expired lease is
//! rejected as stale — so a killed or hung worker never loses a slot and
//! never double-counts one.
//!
//! The invariant the property tests pin down: at every instant each slot
//! is in **exactly one** of four places — done, in a pending unit, in a
//! leased unit, or failed (attempts exhausted). All transitions happen
//! under one mutex, keyed by a monotonically unique lease id, which is
//! what makes the invariant easy to audit.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use adcomp_obs::clock::Clock;
use adcomp_obs::metrics::{duration_us_buckets, Counter, Histogram, Registry};

use crate::journal::UnitJournal;

/// Lease and admission tuning for a [`UnitQueue`].
#[derive(Clone, Debug)]
pub struct LeaseConfig {
    /// How long a granted lease stays valid without a heartbeat.
    pub ttl: Duration,
    /// Grants a unit may receive before its remaining slots are marked
    /// failed instead of requeued (0 = unlimited).
    pub max_attempts: u32,
    /// Maximum units leased out simultaneously across all workers —
    /// the global in-flight cap (0 = unlimited).
    pub inflight_cap: usize,
}

impl Default for LeaseConfig {
    fn default() -> Self {
        LeaseConfig {
            ttl: Duration::from_secs(2),
            max_attempts: 0,
            inflight_cap: 0,
        }
    }
}

/// A granted lease on one work unit.
#[derive(Clone, Debug)]
pub struct Grant {
    /// Unique lease id; completions and heartbeats key on it.
    pub lease: u64,
    /// The unit this lease covers (stable across regrants).
    pub unit: u64,
    /// Slot indices to execute.
    pub slots: Vec<usize>,
    /// 1-based grant count for this unit.
    pub attempt: u32,
}

/// Outcome of [`UnitQueue::complete`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Completion {
    /// The lease was live; answered slots are now done. When some slots
    /// were left unanswered the remnant was requeued (or failed, when
    /// attempts ran out).
    Accepted {
        /// Whether unanswered slots went back on the queue.
        requeued_remnant: bool,
    },
    /// The lease had already expired (its unit was requeued) or was
    /// never granted: nothing changed, the caller must discard its
    /// buffered results.
    Stale,
}

/// Where every slot currently lives — the queue's audit view.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SlotCensus {
    /// Slots answered under an accepted completion.
    pub done: usize,
    /// Slots in units waiting to be claimed.
    pub pending: usize,
    /// Slots in currently leased units.
    pub leased: usize,
    /// Slots whose units exhausted their attempts.
    pub failed: usize,
}

impl SlotCensus {
    /// Sum over all four states — must always equal the seeded total.
    pub fn total(&self) -> usize {
        self.done + self.pending + self.leased + self.failed
    }
}

struct Unit {
    id: u64,
    slots: Vec<usize>,
    attempt: u32,
}

struct Leased {
    unit: Unit,
    deadline: Duration,
    started: Duration,
    worker: String,
}

struct State {
    pending: VecDeque<Unit>,
    leased: HashMap<u64, Leased>,
    done: Vec<bool>,
    done_count: usize,
    failed: Vec<Unit>,
    failed_count: usize,
    total_slots: usize,
    next_lease: u64,
    next_unit: u64,
}

struct Metrics {
    queued: Arc<Counter>,
    leased: Arc<Counter>,
    completed: Arc<Counter>,
    requeued: Arc<Counter>,
    expired: Arc<Counter>,
    latency: Arc<Histogram>,
}

impl Metrics {
    fn new() -> Metrics {
        let reg = Registry::global();
        Metrics {
            queued: reg.counter("adcomp_sched_units_queued"),
            leased: reg.counter("adcomp_sched_units_leased"),
            completed: reg.counter("adcomp_sched_units_completed"),
            requeued: reg.counter("adcomp_sched_units_requeued"),
            expired: reg.counter("adcomp_sched_lease_expired_total"),
            latency: reg.histogram("adcomp_sched_unit_latency_us", duration_us_buckets()),
        }
    }
}

/// Lease-based work queue over a batch of slots. See the module docs for
/// the state machine; all methods are safe to call from any thread.
pub struct UnitQueue {
    state: Mutex<State>,
    cv: Condvar,
    cfg: LeaseConfig,
    clock: Arc<dyn Clock>,
    journal: Option<Arc<dyn UnitJournal>>,
    metrics: Metrics,
}

impl UnitQueue {
    /// An empty queue; seed it with [`seed_slots`](UnitQueue::seed_slots)
    /// or [`seed_units`](UnitQueue::seed_units) before claiming.
    pub fn new(
        cfg: LeaseConfig,
        clock: Arc<dyn Clock>,
        journal: Option<Arc<dyn UnitJournal>>,
    ) -> UnitQueue {
        UnitQueue {
            state: Mutex::new(State {
                pending: VecDeque::new(),
                leased: HashMap::new(),
                done: Vec::new(),
                done_count: 0,
                failed: Vec::new(),
                failed_count: 0,
                total_slots: 0,
                next_lease: 1,
                next_unit: 0,
            }),
            cv: Condvar::new(),
            cfg,
            clock,
            journal,
            metrics: Metrics::new(),
        }
    }

    /// Seeds slots `0..total` carved into units of `unit_size`.
    pub fn seed_slots(&self, total: usize, unit_size: usize) {
        let unit_size = unit_size.max(1);
        let units: Vec<Vec<usize>> = (0..total)
            .step_by(unit_size)
            .map(|start| (start..(start + unit_size).min(total)).collect())
            .collect();
        self.seed_units(units);
    }

    /// Seeds explicit slot groups as units (slot indices must be unique
    /// across all units).
    pub fn seed_units(&self, units: Vec<Vec<usize>>) {
        let mut s = self.lock();
        for slots in units {
            if slots.is_empty() {
                continue;
            }
            let max = slots.iter().copied().max().unwrap_or(0);
            if s.done.len() <= max {
                s.done.resize(max + 1, false);
            }
            s.total_slots += slots.len();
            let id = s.next_unit;
            s.next_unit += 1;
            s.pending.push_back(Unit {
                id,
                slots,
                attempt: 0,
            });
            self.metrics.queued.inc();
        }
        self.cv.notify_all();
    }

    /// Claims the next unit for `worker`, blocking until one is
    /// available, and returning `None` once the queue is drained (no
    /// pending and no leased units remain). Expired leases are swept on
    /// every wake-up.
    pub fn claim(&self, worker: &str) -> Option<Grant> {
        let mut s = self.lock();
        loop {
            self.sweep_expired(&mut s);
            if let Some(grant) = self.try_grant(&mut s, worker) {
                return Some(grant);
            }
            if s.pending.is_empty() && s.leased.is_empty() {
                return None;
            }
            // Wake on state changes, or on a tick to sweep expirations.
            let tick = (self.cfg.ttl / 4).max(Duration::from_millis(5));
            let (guard, _) = self
                .cv
                .wait_timeout(s, tick)
                .unwrap_or_else(|e| panic!("queue lock poisoned: {e}"));
            s = guard;
        }
    }

    /// Non-blocking [`claim`](UnitQueue::claim): grants a unit if one is
    /// immediately available under the in-flight cap.
    pub fn try_claim(&self, worker: &str) -> Option<Grant> {
        let mut s = self.lock();
        self.sweep_expired(&mut s);
        self.try_grant(&mut s, worker)
    }

    /// Extends a live lease's deadline by one TTL. Returns `Err(())` if
    /// the lease expired (its unit was requeued) — the worker should
    /// abandon the execution and discard its buffered results.
    #[allow(clippy::result_unit_err)]
    pub fn heartbeat(&self, lease: u64) -> Result<(), ()> {
        let mut s = self.lock();
        self.sweep_expired(&mut s);
        let now = self.clock.now();
        match s.leased.get_mut(&lease) {
            Some(l) => {
                l.deadline = now + self.cfg.ttl;
                Ok(())
            }
            None => Err(()),
        }
    }

    /// Completes a lease with the slots the worker actually answered.
    /// Unanswered slots are requeued as a remnant unit (counting one
    /// attempt), or failed when attempts ran out. A stale lease changes
    /// nothing.
    pub fn complete(&self, lease: u64, answered: &[usize]) -> Completion {
        let mut s = self.lock();
        self.sweep_expired(&mut s);
        let Some(mut l) = s.leased.remove(&lease) else {
            return Completion::Stale;
        };
        let now = self.clock.now();
        let answered_set: std::collections::HashSet<usize> = answered.iter().copied().collect();
        let mut remnant = Vec::new();
        let mut newly_done = 0usize;
        for slot in l.unit.slots.drain(..) {
            if answered_set.contains(&slot) {
                debug_assert!(!s.done[slot], "slot {slot} answered twice");
                if !s.done[slot] {
                    s.done[slot] = true;
                    newly_done += 1;
                }
            } else {
                remnant.push(slot);
            }
        }
        s.done_count += newly_done;
        let requeued_remnant = !remnant.is_empty();
        if remnant.is_empty() {
            self.metrics.completed.inc();
            self.metrics
                .latency
                .observe_duration(now.saturating_sub(l.started));
            if let Some(j) = &self.journal {
                j.unit_completed(l.unit.id, &l.worker, newly_done);
            }
        } else {
            let unit = Unit {
                id: l.unit.id,
                slots: remnant,
                attempt: l.unit.attempt,
            };
            self.requeue(&mut s, unit, &l.worker, "partial");
        }
        self.cv.notify_all();
        Completion::Accepted { requeued_remnant }
    }

    /// Gives a lease back without answering anything — shorthand for
    /// [`complete`](UnitQueue::complete) with an empty answer set.
    pub fn abandon(&self, lease: u64) -> Completion {
        self.complete(lease, &[])
    }

    /// Sweeps expired leases now (also done implicitly by every other
    /// call); returns how many leases expired.
    pub fn expire_overdue(&self) -> usize {
        let mut s = self.lock();
        self.sweep_expired(&mut s)
    }

    /// Whether every slot has reached a terminal state (done or failed).
    pub fn is_drained(&self) -> bool {
        let s = self.lock();
        s.pending.is_empty() && s.leased.is_empty()
    }

    /// Slots whose units exhausted their attempts, in ascending order.
    pub fn failed_slots(&self) -> Vec<usize> {
        let s = self.lock();
        let mut out: Vec<usize> = s.failed.iter().flat_map(|u| u.slots.clone()).collect();
        out.sort_unstable();
        out
    }

    /// Where every slot currently lives (see [`SlotCensus`]).
    pub fn census(&self) -> SlotCensus {
        let s = self.lock();
        SlotCensus {
            done: s.done_count,
            pending: s.pending.iter().map(|u| u.slots.len()).sum(),
            leased: s.leased.values().map(|l| l.unit.slots.len()).sum(),
            failed: s.failed_count,
        }
    }

    /// Total slots seeded so far.
    pub fn total_slots(&self) -> usize {
        self.lock().total_slots
    }

    fn try_grant(&self, s: &mut State, worker: &str) -> Option<Grant> {
        if self.cfg.inflight_cap != 0 && s.leased.len() >= self.cfg.inflight_cap {
            return None;
        }
        let mut unit = s.pending.pop_front()?;
        unit.attempt += 1;
        let lease = s.next_lease;
        s.next_lease += 1;
        let now = self.clock.now();
        let grant = Grant {
            lease,
            unit: unit.id,
            slots: unit.slots.clone(),
            attempt: unit.attempt,
        };
        if let Some(j) = &self.journal {
            j.unit_granted(unit.id, unit.attempt, worker);
        }
        s.leased.insert(
            lease,
            Leased {
                unit,
                deadline: now + self.cfg.ttl,
                started: now,
                worker: worker.to_string(),
            },
        );
        self.metrics.leased.inc();
        Some(grant)
    }

    fn sweep_expired(&self, s: &mut State) -> usize {
        let now = self.clock.now();
        let overdue: Vec<u64> = s
            .leased
            .iter()
            .filter(|(_, l)| l.deadline < now)
            .map(|(&id, _)| id)
            .collect();
        let n = overdue.len();
        for lease in overdue {
            let l = s.leased.remove(&lease).expect("lease present");
            self.metrics.expired.inc();
            self.requeue(s, l.unit, &l.worker, "lease expired");
        }
        if n > 0 {
            self.cv.notify_all();
        }
        n
    }

    /// Puts a unit back on the queue (counting the grant it just burned)
    /// or fails it when attempts are exhausted.
    fn requeue(&self, s: &mut State, unit: Unit, worker: &str, reason: &str) {
        if self.cfg.max_attempts != 0 && unit.attempt >= self.cfg.max_attempts {
            if let Some(j) = &self.journal {
                j.unit_failed(unit.id, worker, unit.slots.len());
            }
            s.failed_count += unit.slots.len();
            s.failed.push(unit);
            return;
        }
        if let Some(j) = &self.journal {
            j.unit_requeued(unit.id, worker, reason);
        }
        self.metrics.requeued.inc();
        self.metrics.queued.inc();
        s.pending.push_back(unit);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcomp_obs::clock::ManualClock;

    fn queue(ttl_ms: u64, max_attempts: u32, cap: usize) -> (UnitQueue, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let q = UnitQueue::new(
            LeaseConfig {
                ttl: Duration::from_millis(ttl_ms),
                max_attempts,
                inflight_cap: cap,
            },
            clock.clone(),
            None,
        );
        (q, clock)
    }

    #[test]
    fn grant_complete_drains() {
        let (q, _) = queue(100, 0, 0);
        q.seed_slots(10, 4);
        let mut done = 0;
        while let Some(g) = q.try_claim("w") {
            assert!(matches!(
                q.complete(g.lease, &g.slots),
                Completion::Accepted {
                    requeued_remnant: false
                }
            ));
            done += g.slots.len();
        }
        assert_eq!(done, 10);
        assert!(q.is_drained());
        assert_eq!(q.census().done, 10);
        assert!(q.failed_slots().is_empty());
    }

    #[test]
    fn expired_lease_requeues_and_late_complete_is_stale() {
        let (q, clock) = queue(50, 0, 0);
        q.seed_slots(4, 4);
        let g = q.try_claim("w1").unwrap();
        clock.advance(Duration::from_millis(60));
        assert_eq!(q.expire_overdue(), 1);
        // The unit is claimable again by another worker …
        let g2 = q.try_claim("w2").unwrap();
        assert_eq!(g2.unit, g.unit);
        assert_eq!(g2.attempt, 2);
        // … and the original worker's late completion is rejected.
        assert_eq!(q.complete(g.lease, &g.slots), Completion::Stale);
        assert!(matches!(
            q.complete(g2.lease, &g2.slots),
            Completion::Accepted { .. }
        ));
        assert_eq!(q.census().done, 4);
    }

    #[test]
    fn heartbeat_keeps_lease_alive() {
        let (q, clock) = queue(50, 0, 0);
        q.seed_slots(2, 2);
        let g = q.try_claim("w").unwrap();
        for _ in 0..5 {
            clock.advance(Duration::from_millis(40));
            assert!(q.heartbeat(g.lease).is_ok());
        }
        assert_eq!(q.expire_overdue(), 0);
        assert!(matches!(
            q.complete(g.lease, &g.slots),
            Completion::Accepted { .. }
        ));
        // Heartbeat on a finished lease reports staleness.
        assert!(q.heartbeat(g.lease).is_err());
    }

    #[test]
    fn partial_completion_requeues_remnant() {
        let (q, _) = queue(100, 0, 0);
        q.seed_slots(6, 6);
        let g = q.try_claim("w").unwrap();
        assert_eq!(
            q.complete(g.lease, &[0, 2, 4]),
            Completion::Accepted {
                requeued_remnant: true
            }
        );
        let g2 = q.try_claim("w").unwrap();
        assert_eq!(g2.slots, vec![1, 3, 5]);
        assert_eq!(g2.unit, g.unit, "remnant keeps the unit id");
        q.complete(g2.lease, &g2.slots);
        assert_eq!(q.census().done, 6);
    }

    #[test]
    fn attempts_exhaust_into_failed() {
        let (q, _) = queue(100, 2, 0);
        q.seed_slots(3, 3);
        for _ in 0..2 {
            let g = q.try_claim("w").unwrap();
            q.abandon(g.lease);
        }
        assert!(q.try_claim("w").is_none());
        assert!(q.is_drained());
        assert_eq!(q.failed_slots(), vec![0, 1, 2]);
        assert_eq!(q.census().failed, 3);
    }

    #[test]
    fn inflight_cap_bounds_concurrent_leases() {
        let (q, _) = queue(100, 0, 2);
        q.seed_slots(12, 2);
        let g1 = q.try_claim("a").unwrap();
        let _g2 = q.try_claim("b").unwrap();
        assert!(q.try_claim("c").is_none(), "cap of 2 leases");
        q.complete(g1.lease, &g1.slots);
        assert!(q.try_claim("c").is_some());
    }

    #[test]
    fn census_partitions_slots_at_every_step() {
        let (q, clock) = queue(30, 3, 0);
        q.seed_slots(20, 3);
        let total = q.total_slots();
        let mut grants = Vec::new();
        for step in 0..50 {
            assert_eq!(q.census().total(), total, "step {step}: {:?}", q.census());
            match step % 4 {
                0 => {
                    if let Some(g) = q.try_claim("w") {
                        grants.push(g);
                    }
                }
                1 => {
                    if let Some(g) = grants.pop() {
                        let half: Vec<usize> = g.slots.iter().copied().step_by(2).collect();
                        q.complete(g.lease, &half);
                    }
                }
                2 => clock.advance(Duration::from_millis(20)),
                _ => {
                    q.expire_overdue();
                }
            }
        }
        assert_eq!(q.census().total(), total);
    }

    #[test]
    fn blocking_claim_returns_none_when_drained() {
        let (q, _) = queue(100, 0, 0);
        q.seed_slots(2, 2);
        let g = q.try_claim("w").unwrap();
        let handle = std::thread::spawn({
            let slots = g.slots.clone();
            move || slots
        });
        q.complete(g.lease, &handle.join().unwrap());
        assert!(q.claim("w").is_none());
    }
}
