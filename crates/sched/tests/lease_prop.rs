//! Property tests for lease semantics: under *arbitrary* interleavings
//! of claims, partial completions, abandons, heartbeats and clock
//! jumps, the queue never double-completes a slot, never drops one, and
//! its census always partitions the seeded total.
//!
//! This is the invariant the distributed scheduler's determinism
//! guarantee rests on — a slot answered twice could merge conflicting
//! results, a dropped slot would hole the merged batch.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

use adcomp_obs::{Clock, ManualClock};
use adcomp_sched::{Completion, Grant, LeaseConfig, UnitQueue};
use proptest::prelude::*;
use proptest::sample::Index;

/// One step of an adversarial schedule. Grant references index into the
/// list of all grants ever issued, so ops routinely target leases that
/// have since expired or completed — exactly the stale-lease races the
/// queue must shrug off.
#[derive(Clone, Debug)]
enum Op {
    Claim,
    /// Complete grant `grant`, answering only a prefix of its slots.
    Complete {
        grant: Index,
        keep: u8,
    },
    Abandon {
        grant: Index,
    },
    Heartbeat {
        grant: Index,
    },
    /// Advance the manual clock and sweep expired leases.
    Advance {
        ms: u16,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Claim),
        (any::<Index>(), any::<u8>()).prop_map(|(grant, keep)| Op::Complete { grant, keep }),
        any::<Index>().prop_map(|grant| Op::Abandon { grant }),
        any::<Index>().prop_map(|grant| Op::Heartbeat { grant }),
        (0u16..400).prop_map(|ms| Op::Advance { ms }),
    ]
}

struct Harness {
    queue: UnitQueue,
    clock: Arc<ManualClock>,
    /// Every grant the queue ever issued, live or stale.
    grants: Vec<Grant>,
    /// Mirror of slots accepted as done — the double-complete oracle.
    done: HashSet<usize>,
    total: usize,
}

impl Harness {
    fn new(total: usize, unit_size: usize, max_attempts: u32, inflight_cap: usize) -> Harness {
        let clock = Arc::new(ManualClock::new());
        let cfg = LeaseConfig {
            ttl: Duration::from_millis(100),
            max_attempts,
            inflight_cap,
        };
        let queue = UnitQueue::new(cfg, clock.clone() as Arc<dyn Clock>, None);
        queue.seed_slots(total, unit_size);
        Harness {
            queue,
            clock,
            grants: Vec::new(),
            done: HashSet::new(),
            total,
        }
    }

    fn apply(&mut self, op: &Op) {
        match op {
            Op::Claim => {
                if let Some(grant) = self.queue.try_claim("prop-worker") {
                    for slot in &grant.slots {
                        prop_assert!(
                            !self.done.contains(slot),
                            "queue granted already-done slot {slot}"
                        );
                    }
                    self.grants.push(grant);
                }
            }
            Op::Complete { grant, keep } => {
                if self.grants.is_empty() {
                    return;
                }
                let g = self.grants[grant.index(self.grants.len())].clone();
                let cut = *keep as usize % (g.slots.len() + 1);
                let answered = &g.slots[..cut];
                match self.queue.complete(g.lease, answered) {
                    Completion::Accepted { .. } => {
                        for slot in answered {
                            prop_assert!(
                                self.done.insert(*slot),
                                "slot {slot} accepted as done twice"
                            );
                        }
                    }
                    Completion::Stale => {} // buffered results discarded
                }
            }
            Op::Abandon { grant } => {
                if let Some(lease) = pick(&self.grants, grant) {
                    self.queue.abandon(lease);
                }
            }
            Op::Heartbeat { grant } => {
                if let Some(lease) = pick(&self.grants, grant) {
                    let _ = self.queue.heartbeat(lease);
                }
            }
            Op::Advance { ms } => {
                self.clock.advance(Duration::from_millis(*ms as u64));
                self.queue.expire_overdue();
            }
        }
        self.check_census();
    }

    fn check_census(&self) {
        let census = self.queue.census();
        prop_assert_eq!(
            census.total(),
            self.total,
            "census stopped partitioning the seeded slots: {:?}",
            census
        );
        prop_assert_eq!(census.done, self.done.len());
    }

    /// Run the queue dry: keep claiming and fully completing until
    /// nothing is pending or leased.
    fn drain(&mut self) {
        loop {
            while let Some(grant) = self.queue.try_claim("drain-worker") {
                let slots = grant.slots.clone();
                let lease = grant.lease;
                self.grants.push(grant);
                match self.queue.complete(lease, &slots) {
                    Completion::Accepted { .. } => {
                        for slot in &slots {
                            prop_assert!(
                                self.done.insert(*slot),
                                "slot {slot} done twice in drain"
                            );
                        }
                    }
                    Completion::Stale => {}
                }
            }
            if self.queue.is_drained() {
                return;
            }
            // Only expiry can unstick leases abandoned by the schedule.
            self.clock.advance(Duration::from_millis(150));
            self.queue.expire_overdue();
        }
    }
}

fn pick(grants: &[Grant], index: &Index) -> Option<u64> {
    if grants.is_empty() {
        None
    } else {
        Some(grants[index.index(grants.len())].lease)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// No interleaving double-completes a slot, drops one, or breaks
    /// the census partition; after draining, done + failed cover every
    /// slot exactly once.
    #[test]
    fn lease_interleavings_never_double_complete_or_drop(
        total in 1usize..60,
        unit_size in 1usize..9,
        max_attempts in 0u32..4,
        inflight_cap in 0usize..4,
        ops in proptest::collection::vec(arb_op(), 0..80),
    ) {
        let mut h = Harness::new(total, unit_size, max_attempts, inflight_cap);
        h.check_census();
        for op in &ops {
            h.apply(op);
        }
        h.drain();

        let census = h.queue.census();
        prop_assert_eq!(census.pending, 0);
        prop_assert_eq!(census.leased, 0);
        prop_assert_eq!(census.done + census.failed, total, "a slot was dropped");
        let failed: HashSet<usize> = h.queue.failed_slots().into_iter().collect();
        prop_assert_eq!(census.failed, failed.len());
        for slot in 0..total {
            let is_done = h.done.contains(&slot);
            let is_failed = failed.contains(&slot);
            prop_assert!(
                is_done ^ is_failed,
                "slot {} finished in {} states", slot, is_done as u32 + is_failed as u32
            );
        }
    }

    /// Late completions on expired leases are always reported `Stale`
    /// and never mutate slot state.
    #[test]
    fn expired_lease_completion_is_always_stale(
        total in 1usize..40,
        unit_size in 1usize..6,
    ) {
        let clock = Arc::new(ManualClock::new());
        let cfg = LeaseConfig { ttl: Duration::from_millis(50), ..LeaseConfig::default() };
        let queue = UnitQueue::new(cfg, clock.clone() as Arc<dyn Clock>, None);
        queue.seed_slots(total, unit_size);

        let mut expired = Vec::new();
        while let Some(grant) = queue.try_claim("w") {
            expired.push(grant);
        }
        clock.advance(Duration::from_millis(60));
        prop_assert!(queue.expire_overdue() > 0);
        let before = queue.census();
        for grant in &expired {
            prop_assert_eq!(queue.complete(grant.lease, &grant.slots), Completion::Stale);
        }
        prop_assert_eq!(queue.census(), before, "stale completion mutated the census");
    }
}
