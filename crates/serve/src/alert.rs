//! Drift-alert delivery: the [`AlertSink`] fan-out.
//!
//! The journal's `AlertRaised` record is the daemon's *durable*
//! exactly-once truth (see [`crate::daemon`]); sinks are how an alert
//! leaves the process. Delivery is at-least-once: a daemon killed
//! between journaling an alert and delivering it re-delivers on
//! resume, so sinks must tolerate duplicates —
//!
//! * [`JournalAlertSink`] appends one JSON line per delivery to an
//!   `alerts.jsonl` file beside the journal (duplicates are visible,
//!   `grep`-able, and harmless);
//! * [`PushAlertSink`] forwards to a fleet aggregator through a
//!   [`TelemetryPusher`], where the `(source, epoch)` dedup turns
//!   at-least-once delivery into exactly-once observation.

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Mutex;

use adcomp_agg::{AlertFrame, Telemetry, TelemetryPusher};

/// One four-fifths drift alert, as handed to sinks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DriftAlert {
    /// Epoch whose drift crossed the threshold.
    pub epoch: u64,
    /// How many representation ratios crossed.
    pub crossings: u32,
    /// Of those crossings, how many are low-confidence: the ratio's
    /// rounding-slack interval straddles a four-fifths edge, so the
    /// crossing could be an artifact of the platform's rounding ladder
    /// rather than a real shift. Recomputed from the epoch stores on
    /// every delivery (never journaled), so resumed re-deliveries stay
    /// byte-identical to the original.
    pub low_confidence: u32,
    /// The journaled detail line.
    pub detail: String,
}

/// Receives drift alerts as they are raised (and re-raised on resume).
pub trait AlertSink: Send + Sync {
    /// Delivers one alert. Must not block the epoch lifecycle for long
    /// and must tolerate duplicate deliveries of the same epoch.
    fn deliver(&self, alert: &DriftAlert);
}

/// Appends alerts as JSON lines to a file (one object per delivery).
pub struct JournalAlertSink {
    path: PathBuf,
    lock: Mutex<()>,
}

impl JournalAlertSink {
    /// A sink appending to `path` (created on first delivery).
    pub fn new(path: impl Into<PathBuf>) -> JournalAlertSink {
        JournalAlertSink {
            path: path.into(),
            lock: Mutex::new(()),
        }
    }
}

impl AlertSink for JournalAlertSink {
    fn deliver(&self, alert: &DriftAlert) {
        let _guard = self.lock.lock().unwrap_or_else(|p| p.into_inner());
        let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
        else {
            adcomp_obs::warn!("alert sink: cannot open {}", self.path.display());
            return;
        };
        let detail = alert
            .detail
            .replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n");
        let _ = writeln!(
            file,
            "{{\"epoch\":{},\"crossings\":{},\"low_confidence\":{},\"detail\":\"{}\"}}",
            alert.epoch, alert.crossings, alert.low_confidence, detail
        );
    }
}

/// Forwards alerts to a fleet aggregator; never blocks (the pusher's
/// queue drops on overflow).
pub struct PushAlertSink {
    pusher: std::sync::Arc<TelemetryPusher>,
}

impl PushAlertSink {
    /// A sink pushing through `pusher`.
    pub fn new(pusher: std::sync::Arc<TelemetryPusher>) -> PushAlertSink {
        PushAlertSink { pusher }
    }
}

impl AlertSink for PushAlertSink {
    fn deliver(&self, alert: &DriftAlert) {
        // `low_confidence` is deliberately not forwarded: `AlertFrame`
        // is a frozen wire format shared with deployed aggregators.
        self.pusher.push(Telemetry::Alert(AlertFrame {
            epoch: alert.epoch,
            crossings: alert.crossings,
            detail: alert.detail.clone(),
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_sink_appends_parseable_lines() {
        let path = std::env::temp_dir().join(format!(
            "adcomp-alert-sink-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        let sink = JournalAlertSink::new(&path);
        let alert = DriftAlert {
            epoch: 3,
            crossings: 2,
            low_confidence: 1,
            detail: "epoch 3: 2 four-fifths crossing(s) \"quoted\"".into(),
        };
        sink.deliver(&alert);
        sink.deliver(&alert); // duplicates are visible, not fatal
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"epoch\":3"), "{text}");
        assert!(lines[0].contains("\"low_confidence\":1"), "{text}");
        assert!(lines[0].contains("\\\"quoted\\\""), "{text}");
        std::fs::remove_file(&path).ok();
    }
}
