//! The continuous-audit daemon binary.
//!
//! ```text
//! adcomp_serve <config-file>
//! ```
//!
//! Loads the config, builds the simulated world it names, serves the
//! status endpoint (if `status_addr` is set), and runs epochs until the
//! configured budget is exhausted. The config file is re-read between
//! epochs; see `crates/serve/README.md` for the format.

use std::process::ExitCode;
use std::sync::Arc;

use adcomp_obs::MonotonicClock;
use adcomp_serve::{Daemon, SimProvider, StatusService};
use adcomp_wire::{serve_service, ServerConfig};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(config_path), None) = (args.next(), args.next()) else {
        eprintln!("usage: adcomp_serve <config-file>");
        return ExitCode::FAILURE;
    };

    let (config, _) = match adcomp_serve::ServeConfig::load(&config_path) {
        Ok(loaded) => loaded,
        Err(e) => {
            eprintln!("adcomp_serve: {config_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let provider = Arc::new(SimProvider::from_config(&config));
    let label = config.interface.label().to_string();
    let status_addr = config.status_addr.clone();

    let mut daemon =
        match Daemon::open_reloadable(&config_path, provider, Arc::new(MonotonicClock::new())) {
            Ok(daemon) => daemon,
            Err(e) => {
                eprintln!("adcomp_serve: {e}");
                return ExitCode::FAILURE;
            }
        };

    let status_server = if status_addr.is_empty() {
        None
    } else {
        let service = Arc::new(StatusService::new(daemon.status(), label));
        match serve_service(service, &status_addr, ServerConfig::default()) {
            Ok(handle) => {
                eprintln!("adcomp_serve: status on {}", handle.addr());
                Some(handle)
            }
            Err(e) => {
                eprintln!("adcomp_serve: status endpoint failed to bind: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let outcome = daemon.run();
    println!("{}", daemon.report().render());
    if let Some(handle) = status_server {
        handle.shutdown();
    }
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("adcomp_serve: {e}");
            ExitCode::FAILURE
        }
    }
}
