//! Deterministic chaos harness: kill the daemon at seeded fault
//! points, restart it, and prove the run converges to byte-identical
//! results with zero re-issued answered queries.
//!
//! A "kill" here is in-process but honest about what `kill -9` leaves
//! behind: the daemon value is dropped mid-lifecycle (no destructors
//! run any journaling), the provider and its platform counters live
//! on, and the next incarnation sees only what the journal and epoch
//! stores made durable. Three kinds of kill cover the lifecycle:
//!
//! * **mid-survey** — a [`KillAfter`] wrapper below the recording layer
//!   fails the Nth unanswered estimate *before forwarding it*, exactly
//!   where a dying process stops issuing queries;
//! * **during the drift diff** — [`FaultPoint::DuringDrift`], after any
//!   `AlertRaised` is journaled but before `DriftChecked`;
//! * **between epochs** — [`FaultPoint::BetweenEpochs`], after one
//!   lifecycle is fully journaled and before the next is scheduled.
//!
//! [`run_chaos`] drives a whole run through a kill schedule and returns
//! what the journal ended up holding; tests compare that against an
//! identical run with no kills.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Arc, Mutex};

use adcomp_core::recording::EpochEvent;
use adcomp_core::source::{EstimateSource, SourceError};
use adcomp_obs::{Clock, ManualClock};
use adcomp_targeting::{AttributeId, FeatureId, TargetingSpec};

use crate::config::ServeConfig;
use crate::daemon::{Daemon, FaultInjector, FaultPoint, Tick, CHAOS_KILL};
use crate::provider::SourceProvider;

/// One scheduled daemon death.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KillPoint {
    /// Die when `epoch`'s survey asks its `after_queries + 1`-th
    /// *unanswered* estimate (answered ones replay from the store and
    /// never reach the trigger).
    MidSurvey {
        /// Epoch whose survey dies.
        epoch: u64,
        /// Estimates forwarded before the death.
        after_queries: u64,
    },
    /// Die inside `epoch`'s drift stage (alert journaled, check not).
    DuringDrift {
        /// Epoch whose drift stage dies.
        epoch: u64,
    },
    /// Die after `epoch`'s lifecycle, before the next is scheduled.
    BetweenEpochs {
        /// Epoch after which to die.
        epoch: u64,
    },
}

/// A full chaos schedule. Each kill fires exactly once.
#[derive(Clone, Debug, Default)]
pub struct ChaosPlan {
    /// The kills, in any order.
    pub kills: Vec<KillPoint>,
}

/// What a chaos (or clean — run with an empty plan) run converged to.
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    /// Daemon incarnations used (kills + 1).
    pub incarnations: u32,
    /// Kills actually taken.
    pub kills: u32,
    /// Per-epoch digests, in epoch order, from the journal's
    /// `Completed` records.
    pub digests: Vec<u64>,
    /// Epochs with an `AlertRaised` record.
    pub alerted_epochs: Vec<u64>,
    /// Platform-side answered estimates at the end, if the provider
    /// can see them.
    pub answered: Option<u64>,
}

/// Fails the Nth unanswered estimate without forwarding it — and every
/// estimate after it in the same incarnation. A dying process does not
/// answer the query it died on, and it does not keep issuing the rest
/// of its batch either; the `dead` latch (fresh per incarnation, shared
/// across that incarnation's replicas) models the second half, while
/// the shared `armed` flag disarms the trigger for the incarnation that
/// resumes.
struct KillAfter {
    inner: Arc<dyn EstimateSource>,
    remaining: Arc<AtomicI64>,
    armed: Arc<AtomicBool>,
    dead: Arc<AtomicBool>,
}

impl EstimateSource for KillAfter {
    fn label(&self) -> String {
        self.inner.label()
    }

    fn estimate(&self, spec: &TargetingSpec) -> Result<u64, SourceError> {
        if self.dead.load(Ordering::Acquire) {
            return Err(SourceError::Transport(
                "chaos: process died mid-survey".into(),
            ));
        }
        if self.armed.load(Ordering::Acquire) {
            // fetch_sub returns the prior budget: positive means this
            // query is still allowed through; zero-or-less means it is
            // the trigger and must NOT reach the platform.
            if self.remaining.fetch_sub(1, Ordering::AcqRel) <= 0 {
                self.armed.store(false, Ordering::Release);
                self.dead.store(true, Ordering::Release);
                return Err(SourceError::Transport(
                    "chaos: process died mid-survey".into(),
                ));
            }
        }
        self.inner.estimate(spec)
    }

    fn check(&self, spec: &TargetingSpec) -> Result<(), SourceError> {
        self.inner.check(spec)
    }

    fn catalog_len(&self) -> u32 {
        self.inner.catalog_len()
    }

    fn attribute_name(&self, id: AttributeId) -> Option<String> {
        self.inner.attribute_name(id)
    }

    fn attribute_feature(&self, id: AttributeId) -> Option<FeatureId> {
        self.inner.attribute_feature(id)
    }

    fn can_compose(&self, a: AttributeId, b: AttributeId) -> bool {
        self.inner.can_compose(a, b)
    }

    fn supports_demographics(&self) -> bool {
        self.inner.supports_demographics()
    }
}

/// Wraps a provider so scheduled [`KillPoint::MidSurvey`] kills fire on
/// the right epoch. The trigger state is shared across incarnations:
/// re-arming on restart would kill the resumed survey again and again.
pub struct ChaosProvider {
    inner: Arc<dyn SourceProvider>,
    triggers: HashMap<u64, (Arc<AtomicI64>, Arc<AtomicBool>)>,
}

impl ChaosProvider {
    /// Arms `plan`'s mid-survey kills over `inner`.
    pub fn new(inner: Arc<dyn SourceProvider>, plan: &ChaosPlan) -> ChaosProvider {
        let mut triggers = HashMap::new();
        for kill in &plan.kills {
            if let KillPoint::MidSurvey {
                epoch,
                after_queries,
            } = kill
            {
                triggers.insert(
                    *epoch,
                    (
                        Arc::new(AtomicI64::new(*after_queries as i64)),
                        Arc::new(AtomicBool::new(true)),
                    ),
                );
            }
        }
        ChaosProvider { inner, triggers }
    }
}

impl SourceProvider for ChaosProvider {
    fn label(&self) -> String {
        self.inner.label()
    }

    fn endpoints(&self, epoch: u64) -> Vec<Arc<dyn EstimateSource>> {
        let endpoints = self.inner.endpoints(epoch);
        match self.triggers.get(&epoch) {
            None => endpoints,
            Some((remaining, armed)) => {
                // One death latch per endpoint-set request: the
                // incarnation that trips the trigger goes fully dead,
                // the one that resumes starts alive (and disarmed).
                let dead = Arc::new(AtomicBool::new(false));
                endpoints
                    .into_iter()
                    .map(|inner| {
                        Arc::new(KillAfter {
                            inner,
                            remaining: remaining.clone(),
                            armed: armed.clone(),
                            dead: dead.clone(),
                        }) as Arc<dyn EstimateSource>
                    })
                    .collect()
            }
        }
    }

    fn answered(&self) -> Option<u64> {
        self.inner.answered()
    }
}

/// Consumes scheduled lifecycle kills, one shot each.
struct Injector {
    pending: Mutex<Vec<FaultPoint>>,
}

impl FaultInjector for Injector {
    fn should_die(&self, point: FaultPoint) -> bool {
        let mut pending = self.pending.lock().unwrap_or_else(|e| e.into_inner());
        match pending.iter().position(|p| *p == point) {
            Some(i) => {
                pending.swap_remove(i);
                true
            }
            None => false,
        }
    }
}

fn is_chaos_death(e: &io::Error) -> bool {
    // Lifecycle kills carry the marker; mid-survey kills surface as the
    // epoch failing on the injected transport error (retries are 0 in
    // chaos configs, so the failure is immediate and fatal — process
    // death has no retry budget either).
    e.to_string().contains(CHAOS_KILL) || e.to_string().contains("chaos: process died")
}

/// Runs `config` to completion under `plan`, restarting the daemon
/// after every scheduled death. The provider must outlive the run —
/// pass the same `Arc` you would compare counters on afterwards.
///
/// `config.epoch_retries` must be 0: a killed process does not retry,
/// and a nonzero budget would absorb mid-survey kills in-process.
pub fn run_chaos(
    config: &ServeConfig,
    provider: Arc<dyn SourceProvider>,
    plan: &ChaosPlan,
) -> io::Result<ChaosOutcome> {
    assert_eq!(
        config.epoch_retries, 0,
        "chaos runs model process death; in-process retries would mask kills"
    );
    assert!(config.max_epochs > 0, "chaos runs need an epoch budget");
    let provider: Arc<dyn SourceProvider> = Arc::new(ChaosProvider::new(provider, plan));
    let injector = Arc::new(Injector {
        pending: Mutex::new(
            plan.kills
                .iter()
                .filter_map(|k| match k {
                    KillPoint::DuringDrift { epoch } => {
                        Some(FaultPoint::DuringDrift { epoch: *epoch })
                    }
                    KillPoint::BetweenEpochs { epoch } => {
                        Some(FaultPoint::BetweenEpochs { epoch: *epoch })
                    }
                    KillPoint::MidSurvey { .. } => None,
                })
                .collect(),
        ),
    });

    let mut incarnations = 0u32;
    let mut kills = 0u32;
    // Enough budget that a stuck schedule fails loudly instead of
    // looping: every kill costs one incarnation.
    let max_incarnations = plan.kills.len() as u32 + 2;
    loop {
        incarnations += 1;
        assert!(
            incarnations <= max_incarnations,
            "chaos run did not converge in {max_incarnations} incarnations"
        );
        let clock = Arc::new(ManualClock::new());
        let mut daemon = Daemon::open(config.clone(), provider.clone(), clock.clone())?
            .with_injector(injector.clone());
        let died = loop {
            match daemon.tick() {
                Ok(Tick::Finished) => break false,
                Ok(Tick::Completed { .. }) => {}
                Ok(Tick::Idle { until }) => {
                    let now = clock.now();
                    if until > now {
                        clock.advance(until - now);
                    }
                }
                Err(e) if is_chaos_death(&e) => {
                    kills += 1;
                    break true;
                }
                Err(e) => return Err(e),
            }
        };
        // Dropping `daemon` here IS the kill: no state survives it but
        // the journal, the epoch stores, and the provider.
        drop(daemon);
        if !died {
            break;
        }
    }

    // Read what converged out of the journal itself.
    let journal = crate::journal::EpochJournal::open(config.journal_dir(), "serve", false)?;
    let mut digests = Vec::new();
    let mut alerted_epochs = Vec::new();
    for event in journal.events() {
        match event {
            EpochEvent::Completed { epoch, digest, .. } => {
                assert_eq!(epoch as usize, digests.len(), "gap in completed epochs");
                digests.push(digest);
            }
            EpochEvent::AlertRaised { epoch, .. } => alerted_epochs.push(epoch),
            _ => {}
        }
    }
    Ok(ChaosOutcome {
        incarnations,
        kills,
        digests,
        alerted_epochs,
        answered: provider.answered(),
    })
}

/// Drives one daemon to completion with no kills — the baseline a
/// chaos run must converge to. Uses its own [`ManualClock`], so wall
/// time never enters the comparison.
pub fn run_clean(
    config: &ServeConfig,
    provider: Arc<dyn SourceProvider>,
) -> io::Result<ChaosOutcome> {
    run_chaos(config, provider, &ChaosPlan::default())
}
