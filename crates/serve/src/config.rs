//! Daemon configuration: a flat `key = value` file, reloadable between
//! epochs.
//!
//! The file format is deliberately tiny — one `key = value` pair per
//! line, `#` comments, unknown keys rejected — so an operator can edit
//! it while the daemon runs. [`Daemon`](crate::Daemon) re-reads the
//! file between epochs and applies *operational* changes (interval,
//! retries, backoff, epoch budget) without dropping any in-memory or
//! journaled state. *Identity* fields (seed, scale, interface, data
//! root, replicas) define which audit this is; changing one mid-run
//! would silently fork the longitudinal record, so reloads that touch
//! them are rejected with a warning and the old identity stands.
//!
//! Reload detection hashes the file *content* (FNV-1a over the raw
//! bytes), not the mtime — `touch`ing the file is not a reload, and an
//! editor that rewrites the file with identical bytes is not either.

use std::io;
use std::path::{Path, PathBuf};

use adcomp_core::recording::fnv1a;
use adcomp_platform::{InterfaceKind, SimScale};

/// Full daemon configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeConfig {
    /// Simulation seed (identity).
    pub seed: u64,
    /// Simulation scale (identity): `test` or `paper`.
    pub scale: SimScale,
    /// Audited interface (identity).
    pub interface: InterfaceKind,
    /// Data root: epoch stores live at `<root>/epoch-<n>/`, the daemon
    /// journal at `<root>/daemon/` (identity).
    pub root: PathBuf,
    /// Endpoint replicas the provider should expose (identity).
    pub replicas: usize,
    /// Time between epoch starts.
    pub interval_ms: u64,
    /// Stop after this many epochs; `0` means run forever.
    pub max_epochs: u64,
    /// Per-epoch retries after a failed attempt (0 = fail fast; the
    /// chaos harness relies on 0 to model process death).
    pub epoch_retries: u32,
    /// First retry backoff.
    pub backoff_base_ms: u64,
    /// Backoff cap (doubling stops here).
    pub backoff_cap_ms: u64,
    /// Serve the status endpoint here; empty disables it.
    pub status_addr: String,
    /// Fsync every journal/store record (`SyncPolicy::EveryRecord`).
    /// The crash-recovery guarantees assume `true`; `false` is for
    /// benchmarks that want the journaling cost without the disk.
    pub fsync: bool,
    /// Put a resilience layer (retry + skip-and-record) between the
    /// scheduler and the recorder.
    pub resilient: bool,
}

impl ServeConfig {
    /// Defaults for a daemon rooted at `root`; every field can be
    /// overridden by the config file.
    pub fn default_at(root: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            seed: 7,
            scale: SimScale::Test,
            interface: InterfaceKind::LinkedIn,
            root: root.into(),
            replicas: 1,
            interval_ms: 1_000,
            max_epochs: 0,
            epoch_retries: 2,
            backoff_base_ms: 50,
            backoff_cap_ms: 2_000,
            status_addr: String::new(),
            fsync: true,
            resilient: false,
        }
    }

    /// Parses a config file's text over the defaults for `root`.
    /// The file may override `root` itself.
    pub fn parse(text: &str, root: impl Into<PathBuf>) -> Result<ServeConfig, String> {
        let mut cfg = ServeConfig::default_at(root);
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
            let (key, value) = (key.trim(), value.trim());
            let ctx = |e: String| format!("line {}: {key}: {e}", lineno + 1);
            match key {
                "seed" => cfg.seed = parse_u64(value).map_err(ctx)?,
                "scale" => cfg.scale = parse_scale(value).map_err(ctx)?,
                "interface" => cfg.interface = parse_interface(value).map_err(ctx)?,
                "root" => cfg.root = PathBuf::from(value),
                "replicas" => cfg.replicas = parse_u64(value).map_err(ctx)?.max(1) as usize,
                "interval_ms" => cfg.interval_ms = parse_u64(value).map_err(ctx)?,
                "max_epochs" => cfg.max_epochs = parse_u64(value).map_err(ctx)?,
                "epoch_retries" => cfg.epoch_retries = parse_u64(value).map_err(ctx)? as u32,
                "backoff_base_ms" => cfg.backoff_base_ms = parse_u64(value).map_err(ctx)?,
                "backoff_cap_ms" => cfg.backoff_cap_ms = parse_u64(value).map_err(ctx)?,
                "status_addr" => cfg.status_addr = value.to_string(),
                "fsync" => cfg.fsync = parse_bool(value).map_err(ctx)?,
                "resilient" => cfg.resilient = parse_bool(value).map_err(ctx)?,
                other => return Err(format!("line {}: unknown key `{other}`", lineno + 1)),
            }
        }
        Ok(cfg)
    }

    /// Loads and parses `path`, returning the config plus the content
    /// hash used for reload detection.
    pub fn load(path: impl AsRef<Path>) -> io::Result<(ServeConfig, u64)> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)?;
        let text = String::from_utf8_lossy(&bytes);
        let root = path.parent().unwrap_or(Path::new(".")).join("serve-data");
        let cfg = ServeConfig::parse(&text, root).map_err(io::Error::other)?;
        Ok((cfg, fnv1a(&bytes)))
    }

    /// Whether `other` names the same audit: same simulated world, same
    /// interface, same data root, same endpoint fleet.
    pub fn same_identity(&self, other: &ServeConfig) -> bool {
        self.seed == other.seed
            && self.scale == other.scale
            && self.interface == other.interface
            && self.root == other.root
            && self.replicas == other.replicas
    }

    /// Directory of epoch `n`'s recording store.
    pub fn epoch_dir(&self, epoch: u64) -> PathBuf {
        self.root.join(format!("epoch-{epoch}"))
    }

    /// Directory of the daemon's lifecycle journal.
    pub fn journal_dir(&self) -> PathBuf {
        self.root.join("daemon")
    }
}

fn parse_u64(value: &str) -> Result<u64, String> {
    value.parse::<u64>().map_err(|e| format!("`{value}`: {e}"))
}

fn parse_bool(value: &str) -> Result<bool, String> {
    match value {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(format!("`{other}`: expected true or false")),
    }
}

fn parse_scale(value: &str) -> Result<SimScale, String> {
    match value {
        "test" => Ok(SimScale::Test),
        "paper" => Ok(SimScale::Paper),
        other => Err(format!("`{other}`: expected test or paper")),
    }
}

fn parse_interface(value: &str) -> Result<InterfaceKind, String> {
    match value {
        "facebook" => Ok(InterfaceKind::FacebookNormal),
        "facebook-restricted" => Ok(InterfaceKind::FacebookRestricted),
        "google" => Ok(InterfaceKind::GoogleDisplay),
        "linkedin" => Ok(InterfaceKind::LinkedIn),
        other => Err(format!(
            "`{other}`: expected facebook, facebook-restricted, google, or linkedin"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_overrides_and_comments() {
        let cfg = ServeConfig::parse(
            "# continuous audit\nseed = 41\ninterface = google  # impressions\n\ninterval_ms = 250\nmax_epochs = 3\nfsync = false\n",
            "/tmp/x",
        )
        .unwrap();
        assert_eq!(cfg.seed, 41);
        assert_eq!(cfg.interface, InterfaceKind::GoogleDisplay);
        assert_eq!(cfg.interval_ms, 250);
        assert_eq!(cfg.max_epochs, 3);
        assert!(!cfg.fsync);
        // Untouched keys keep their defaults.
        assert_eq!(cfg.epoch_retries, 2);
    }

    #[test]
    fn rejects_unknown_keys_and_bad_values() {
        assert!(ServeConfig::parse("sede = 41\n", "/tmp/x").is_err());
        assert!(ServeConfig::parse("seed = many\n", "/tmp/x").is_err());
        assert!(ServeConfig::parse("scale = huge\n", "/tmp/x").is_err());
        assert!(ServeConfig::parse("just a line\n", "/tmp/x").is_err());
    }

    #[test]
    fn identity_covers_world_not_schedule() {
        let a = ServeConfig::default_at("/tmp/x");
        let mut b = a.clone();
        b.interval_ms = 9;
        b.epoch_retries = 9;
        b.max_epochs = 9;
        assert!(a.same_identity(&b));
        b.seed = 8;
        assert!(!a.same_identity(&b));
    }
}
