//! The supervisor loop: recurring audit epochs with crash recovery.
//!
//! [`Daemon`] owns one continuous audit. Each [`Daemon::tick`] either
//! reports how long until the next epoch is due, or runs one full epoch
//! lifecycle:
//!
//! 1. **Survey** — journal `Started`, run
//!    [`run_epoch`] into the epoch's own recording store (answered
//!    queries are durable before their values are used), journal
//!    `Completed` with the digest. Failures retry up to the configured
//!    budget with doubling, capped backoff; endpoints that fail their
//!    health probe are dropped for the epoch and journaled as
//!    `Degraded`.
//! 2. **Drift** — diff against the previous epoch with
//!    [`drift_between`]; a four-fifths crossing journals `AlertRaised`
//!    *before* `DriftChecked`, and an already-journaled alert is never
//!    raised twice — that ordering plus the journal's latest-wins
//!    keying is the exactly-once alert story the chaos tests kill the
//!    daemon to verify.
//!
//! Time comes from an injected [`Clock`], so tests and the chaos
//! harness drive schedules by hand. Config reloads happen only between
//! epochs (never mid-lifecycle) and never drop journaled or in-memory
//! state; identity changes are rejected (see [`crate::config`]).

use std::io;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use adcomp_agg::{MetricsFrame, Telemetry, TelemetryPusher};
use adcomp_core::recording::{fnv1a, EpochEvent};
use adcomp_core::{
    drift_between_with, run_epoch, DriftOptions, EpochPlan, ResilienceConfig, SchedulerConfig,
};
use adcomp_obs::metrics::MetricKey;
use adcomp_obs::{Clock, Registry, RunReport};
use adcomp_store::{RunStore, SyncPolicy, WalOptions};

use crate::alert::{AlertSink, DriftAlert};
use crate::config::ServeConfig;
use crate::journal::{EpochJournal, Resume};
use crate::provider::SourceProvider;
use crate::status::DaemonStatus;

/// Stage tag of [`EpochEvent::AlertRaised`] in the journal.
const STAGE_ALERT: u8 = 4;

/// Points in the epoch lifecycle where the chaos harness may kill the
/// daemon. `MidSurvey` is not here because survey kills are injected
/// below the recording layer (a [`KillAfter`](crate::chaos) source),
/// which is where a real process death lands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultPoint {
    /// `Completed` is journaled; the drift diff has not started.
    BeforeDrift {
        /// Epoch in flight.
        epoch: u64,
    },
    /// Mid drift stage: any `AlertRaised` is journaled, `DriftChecked`
    /// is not.
    DuringDrift {
        /// Epoch in flight.
        epoch: u64,
    },
    /// The epoch's lifecycle is fully journaled; the next epoch is not
    /// scheduled yet.
    BetweenEpochs {
        /// Epoch just finished.
        epoch: u64,
    },
}

/// Decides whether the daemon "dies" at a lifecycle point.
pub trait FaultInjector: Send + Sync {
    /// Return `true` to kill the daemon at `point`.
    fn should_die(&self, point: FaultPoint) -> bool;
}

/// What one [`Daemon::tick`] did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tick {
    /// Nothing due; call again at `until` (clock time).
    Idle {
        /// When the next epoch is due.
        until: Duration,
    },
    /// One epoch's full lifecycle finished.
    Completed {
        /// The epoch.
        epoch: u64,
        /// Its estimate digest.
        digest: u64,
        /// Whether a four-fifths crossing alert stands for it.
        alerted: bool,
        /// Whether this epoch resumed work journaled by a previous
        /// incarnation.
        resumed: bool,
    },
    /// The configured epoch budget is exhausted.
    Finished,
}

/// The error message marker for chaos-injected deaths; the harness
/// matches on it to tell a simulated kill from a real failure.
pub const CHAOS_KILL: &str = "chaos: killed at ";

fn chaos_kill(point: FaultPoint) -> io::Error {
    io::Error::new(io::ErrorKind::Interrupted, format!("{CHAOS_KILL}{point:?}"))
}

/// One continuous audit: supervisor state plus its durable journal.
pub struct Daemon {
    config: ServeConfig,
    config_path: Option<PathBuf>,
    config_hash: u64,
    provider: Arc<dyn SourceProvider>,
    journal: EpochJournal,
    clock: Arc<dyn Clock>,
    injector: Option<Arc<dyn FaultInjector>>,
    alert_sinks: Vec<Arc<dyn AlertSink>>,
    telemetry: Option<Arc<TelemetryPusher>>,
    status: Arc<DaemonStatus>,
    report: RunReport,
    resume: Option<Resume>,
    next_epoch: u64,
    next_due: Duration,
}

impl Daemon {
    /// Opens the daemon over `config`, recovering from the journal at
    /// `config.journal_dir()`. A nonempty journal means a previous
    /// incarnation ran here: recovery picks the resume point and never
    /// re-runs a durable stage.
    pub fn open(
        config: ServeConfig,
        provider: Arc<dyn SourceProvider>,
        clock: Arc<dyn Clock>,
    ) -> io::Result<Daemon> {
        Daemon::open_at(config, None, provider, clock)
    }

    /// Like [`Daemon::open`], but re-reads `config_path` between epochs
    /// and applies operational changes (see [`crate::config`]).
    pub fn open_reloadable(
        config_path: impl Into<PathBuf>,
        provider: Arc<dyn SourceProvider>,
        clock: Arc<dyn Clock>,
    ) -> io::Result<Daemon> {
        let path = config_path.into();
        let (config, hash) = ServeConfig::load(&path)?;
        let mut daemon = Daemon::open_at(config, Some(path), provider, clock)?;
        daemon.config_hash = hash;
        Ok(daemon)
    }

    fn open_at(
        config: ServeConfig,
        config_path: Option<PathBuf>,
        provider: Arc<dyn SourceProvider>,
        clock: Arc<dyn Clock>,
    ) -> io::Result<Daemon> {
        let journal = EpochJournal::open(config.journal_dir(), "serve", config.fsync)?;
        let status = DaemonStatus::new();
        let mut report = RunReport::new(&format!("continuous audit: {}", provider.label()));
        let recovered = journal.recover();
        let resuming = !journal.is_fresh();
        let (next_epoch, resume) = match recovered {
            Resume::Fresh { epoch } => (epoch, None),
            Resume::Survey { epoch, .. } => (epoch, Some(recovered.clone())),
            Resume::Drift { epoch, .. } => (epoch, Some(recovered.clone())),
        };
        if resuming {
            Registry::global()
                .counter("adcomp_serve_resumes_total")
                .inc();
            status.resumes.fetch_add(1, Ordering::AcqRel);
            status.epochs.store(next_epoch, Ordering::Release);
            let how = match &resume {
                None => "between epochs".to_string(),
                Some(Resume::Survey { epoch, .. }) => format!("mid-survey of epoch {epoch}"),
                Some(Resume::Drift { epoch, .. }) => format!("mid-drift of epoch {epoch}"),
                Some(Resume::Fresh { .. }) => unreachable!("fresh resume is None"),
            };
            report.note(format!("resumed {how}; next epoch {next_epoch}"));
            adcomp_obs::info!("serve: resumed {how}");
        }
        let next_due = clock.now();
        Ok(Daemon {
            config,
            config_path,
            config_hash: 0,
            provider,
            journal,
            clock,
            injector: None,
            alert_sinks: Vec::new(),
            telemetry: None,
            status,
            report,
            resume,
            next_epoch,
            next_due,
        })
    }

    /// Installs a chaos fault injector (see [`crate::chaos`]).
    pub fn with_injector(mut self, injector: Arc<dyn FaultInjector>) -> Daemon {
        self.injector = Some(injector);
        self
    }

    /// Adds a drift-alert sink (see [`crate::alert`]). Delivery is
    /// at-least-once: an alert journaled by a previous incarnation but
    /// possibly not delivered is re-delivered when its drift stage is
    /// resumed, so sinks must dedup (the fleet aggregator does, by
    /// `(source, epoch)`).
    pub fn with_alert_sink(mut self, sink: Arc<dyn AlertSink>) -> Daemon {
        self.alert_sinks.push(sink);
        self
    }

    /// Installs a fleet telemetry pusher: after every completed epoch
    /// the daemon pushes a [`MetricsFrame`] of its own status counters
    /// (never blocking — the pusher's queue drops on overflow).
    pub fn with_telemetry(mut self, pusher: Arc<TelemetryPusher>) -> Daemon {
        self.telemetry = Some(pusher);
        self
    }

    /// The shared counters the status endpoint serves.
    pub fn status(&self) -> Arc<DaemonStatus> {
        self.status.clone()
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The run report accumulated so far (notes, degradations, alerts).
    pub fn report(&self) -> &RunReport {
        &self.report
    }

    /// The lifecycle journal (read access for tests and tools).
    pub fn journal(&self) -> &EpochJournal {
        &self.journal
    }

    fn die_if_armed(&self, point: FaultPoint) -> io::Result<()> {
        if let Some(injector) = &self.injector {
            if injector.should_die(point) {
                return Err(chaos_kill(point));
            }
        }
        Ok(())
    }

    fn finished(&self) -> bool {
        self.config.max_epochs > 0
            && self.resume.is_none()
            && self.next_epoch >= self.config.max_epochs
    }

    /// Runs at most one epoch lifecycle. Call in a loop; [`Tick::Idle`]
    /// tells the caller how long to sleep.
    pub fn tick(&mut self) -> io::Result<Tick> {
        if self.finished() {
            self.status.healthy.store(false, Ordering::Release);
            return Ok(Tick::Finished);
        }
        let now = self.clock.now();
        if now < self.next_due {
            return Ok(Tick::Idle {
                until: self.next_due,
            });
        }
        // Reload strictly between epochs: a resumed lifecycle finishes
        // under the config it started with.
        if self.resume.is_none() {
            self.maybe_reload();
            if self.finished() {
                self.status.healthy.store(false, Ordering::Release);
                return Ok(Tick::Finished);
            }
        }

        let epoch = self.next_epoch;
        // The epoch's root span: survey (sched → wire → platform) and
        // drift work nests under it, so one epoch is one span tree.
        let _span =
            adcomp_obs::Tracer::global().span_with("serve:epoch", &[("epoch", epoch.to_string())]);
        let resume = self.resume.take();
        let resumed = resume.is_some();
        let (digest, estimates) = match resume {
            Some(Resume::Drift {
                digest, estimates, ..
            }) => (digest, estimates),
            Some(Resume::Survey { epoch, attempt }) => self.survey(epoch, attempt.max(1))?,
            _ => self.survey(epoch, 1)?,
        };

        let alerted = self.drift_stage(epoch, digest)?;
        self.die_if_armed(FaultPoint::BetweenEpochs { epoch })?;

        self.next_epoch = epoch + 1;
        self.next_due = self.clock.now() + Duration::from_millis(self.config.interval_ms);
        self.status.epochs.store(self.next_epoch, Ordering::Release);
        self.status.last_digest.store(digest, Ordering::Release);
        Registry::global()
            .counter("adcomp_serve_epochs_total")
            .inc();
        self.report.note(format!(
            "epoch {epoch}: {estimates} estimates, digest {digest:016x}{}",
            if resumed { " (resumed)" } else { "" }
        ));
        self.push_telemetry();
        Ok(Tick::Completed {
            epoch,
            digest,
            alerted,
            resumed,
        })
    }

    /// Runs epochs until the budget is exhausted, sleeping through idle
    /// gaps. The production entry point; tests drive [`Daemon::tick`].
    pub fn run(&mut self) -> io::Result<()> {
        loop {
            match self.tick()? {
                Tick::Finished => return Ok(()),
                Tick::Completed { .. } => {}
                Tick::Idle { until } => {
                    let now = self.clock.now();
                    if until > now {
                        // Short naps so config edits and signals are
                        // noticed promptly even with long intervals.
                        std::thread::sleep((until - now).min(Duration::from_millis(50)));
                    }
                }
            }
        }
    }

    fn maybe_reload(&mut self) {
        let Some(path) = &self.config_path else {
            return;
        };
        let Ok(bytes) = std::fs::read(path) else {
            return;
        };
        let hash = fnv1a(&bytes);
        if hash == self.config_hash {
            return;
        }
        // One decision per content change, whatever the outcome.
        self.config_hash = hash;
        let text = String::from_utf8_lossy(&bytes);
        let parsed = ServeConfig::parse(&text, self.config.root.clone());
        match parsed {
            Err(e) => {
                adcomp_obs::warn!("serve: config reload rejected (parse error: {e})");
                self.report.note(format!("config reload rejected: {e}"));
            }
            Ok(new) if !self.config.same_identity(&new) => {
                adcomp_obs::warn!(
                    "serve: config reload rejected (identity change); keeping the running audit"
                );
                self.report
                    .note("config reload rejected: identity fields changed".to_string());
            }
            Ok(new) => {
                adcomp_obs::info!(
                    "serve: config reloaded (interval {}ms, retries {}, max_epochs {})",
                    new.interval_ms,
                    new.epoch_retries,
                    new.max_epochs
                );
                self.report.note(format!(
                    "config reloaded: interval {}ms, retries {}, max_epochs {}",
                    new.interval_ms, new.epoch_retries, new.max_epochs
                ));
                self.config = new;
                Registry::global()
                    .counter("adcomp_serve_reloads_total")
                    .inc();
                self.status.reloads.fetch_add(1, Ordering::AcqRel);
            }
        }
    }

    /// Pushes this daemon's status counters as one metric frame. Built
    /// from [`DaemonStatus`] rather than the global registry: several
    /// daemons in one process share the registry, but each owns its
    /// status — so per-source fleet series stay per-daemon.
    fn push_telemetry(&self) {
        let Some(pusher) = &self.telemetry else {
            return;
        };
        pusher.push(Telemetry::Metrics(status_frame(&self.status)));
    }

    fn epoch_store(&self, epoch: u64) -> io::Result<Arc<RunStore>> {
        let opts = WalOptions {
            sync: if self.config.fsync {
                SyncPolicy::EveryRecord
            } else {
                SyncPolicy::Never
            },
            ..WalOptions::default()
        };
        Ok(Arc::new(RunStore::open_with(
            self.config.epoch_dir(epoch),
            opts,
        )?))
    }

    /// Survey stage: retries with capped doubling backoff, journals
    /// `Started`/`Degraded`/`Completed`. Returns `(digest, estimates)`.
    fn survey(&mut self, epoch: u64, first_attempt: u32) -> io::Result<(u64, u64)> {
        let mut attempt = first_attempt;
        loop {
            self.journal
                .record(&EpochEvent::Started { epoch, attempt })?;
            let plan = EpochPlan {
                endpoints: self.provider.endpoints(epoch),
                store: self.epoch_store(epoch)?,
                scheduler: SchedulerConfig::fast(),
                resilience: self
                    .config
                    .resilient
                    .then(|| ResilienceConfig::standard(self.config.seed)),
            };
            match run_epoch(&plan) {
                Ok(outcome) => {
                    if !outcome.degraded.is_empty() {
                        let detail = format!(
                            "epoch {epoch} ran on {} of {} endpoints; down: {}",
                            plan.endpoints.len() - outcome.degraded.len(),
                            plan.endpoints.len(),
                            outcome.degraded.join(", ")
                        );
                        self.journal.record(&EpochEvent::Degraded {
                            epoch,
                            detail: detail.clone(),
                        })?;
                        Registry::global()
                            .counter("adcomp_serve_degraded_epochs_total")
                            .inc();
                        self.status.degraded.fetch_add(1, Ordering::AcqRel);
                        self.report.degradation(detail.clone());
                        adcomp_obs::warn!("serve: {detail}");
                    }
                    self.journal.record(&EpochEvent::Completed {
                        epoch,
                        digest: outcome.digest,
                        estimates: outcome.estimates,
                    })?;
                    return Ok((outcome.digest, outcome.estimates));
                }
                Err(e) if attempt - first_attempt < self.config.epoch_retries => {
                    let backoff = Duration::from_millis(
                        self.config
                            .backoff_base_ms
                            .saturating_mul(1 << (attempt - first_attempt).min(20))
                            .min(self.config.backoff_cap_ms),
                    );
                    Registry::global()
                        .counter("adcomp_serve_epoch_retries_total")
                        .inc();
                    adcomp_obs::warn!(
                        "serve: epoch {epoch} attempt {attempt} failed ({e}); retrying in {backoff:?}"
                    );
                    std::thread::sleep(backoff);
                    attempt += 1;
                }
                Err(e) => {
                    self.status.healthy.store(false, Ordering::Release);
                    return Err(io::Error::other(format!(
                        "epoch {epoch} failed after {attempt} attempt(s): {e}"
                    )));
                }
            }
        }
    }

    /// Drift stage: diff against the previous epoch, raise (at most
    /// one) alert, journal `DriftChecked`. Returns whether an alert
    /// stands for this epoch.
    fn drift_stage(&mut self, epoch: u64, digest: u64) -> io::Result<bool> {
        self.die_if_armed(FaultPoint::BeforeDrift { epoch })?;
        let (findings, crossings, alerted) = if epoch == 0 {
            (0, 0, false)
        } else {
            let before = RunStore::open(self.config.epoch_dir(epoch - 1))?.snapshot();
            let after = RunStore::open(self.config.epoch_dir(epoch))?.snapshot();
            let options = DriftOptions {
                rounding: self.provider.rounding_rules(),
            };
            let drift = drift_between_with(&before, &after, &options);
            let crossings = drift.ratio_moves.iter().filter(|m| m.crossed()).count() as u32;
            // Crossings whose rounding-slack interval straddles a
            // four-fifths edge. Like `detail`, a pure function of the
            // two epoch stores — recomputed (not journaled) so resumed
            // re-deliveries match the original alert exactly.
            let low_confidence = drift
                .ratio_moves
                .iter()
                .filter(|m| m.crossed() && m.low_confidence())
                .count() as u32;
            let findings = drift.findings() as u32;
            let mut alerted = false;
            if crossings > 0 {
                let detail = format!(
                    "epoch {epoch}: {crossings} four-fifths crossing(s) vs epoch {} \
                     across {findings} drift finding(s); digest {digest:016x}",
                    epoch - 1
                );
                if self.journal.event(epoch, STAGE_ALERT).is_none() {
                    // Alert before DriftChecked: a kill between the two
                    // re-runs this stage, finds the alert journaled, and
                    // does not raise it again.
                    self.journal.record(&EpochEvent::AlertRaised {
                        epoch,
                        crossings,
                        detail: detail.clone(),
                    })?;
                    Registry::global()
                        .counter("adcomp_serve_alerts_total")
                        .inc();
                    self.status.alerts.fetch_add(1, Ordering::AcqRel);
                    self.report.degradation(detail.clone());
                    adcomp_obs::warn!("serve: ALERT {detail}");
                }
                // Fan out on fresh raises AND on resumed drift stages
                // (the journal record may not have left the process
                // before a kill): at-least-once delivery, deduplicated
                // downstream. The detail is a pure function of the
                // epoch's data, so a re-delivery is byte-identical.
                let alert = DriftAlert {
                    epoch,
                    crossings,
                    low_confidence,
                    detail,
                };
                for sink in &self.alert_sinks {
                    sink.deliver(&alert);
                }
                alerted = true;
            }
            (findings, crossings, alerted)
        };
        self.die_if_armed(FaultPoint::DuringDrift { epoch })?;
        self.journal.record(&EpochEvent::DriftChecked {
            epoch,
            findings,
            crossings,
        })?;
        Ok(alerted)
    }
}

/// One daemon's status counters as a pushable metric frame (the
/// per-source state behind the fleet's `adcomp_serve_*` series).
pub fn status_frame(status: &DaemonStatus) -> MetricsFrame {
    let counter = |name: &str, value: u64| (MetricKey::new(name, &[]), value);
    MetricsFrame {
        counters: vec![
            counter(
                "adcomp_serve_epochs_total",
                status.epochs.load(Ordering::Acquire),
            ),
            counter(
                "adcomp_serve_alerts_total",
                status.alerts.load(Ordering::Acquire),
            ),
            counter(
                "adcomp_serve_degraded_epochs_total",
                status.degraded.load(Ordering::Acquire),
            ),
            counter(
                "adcomp_serve_resumes_total",
                status.resumes.load(Ordering::Acquire),
            ),
            counter(
                "adcomp_serve_reloads_total",
                status.reloads.load(Ordering::Acquire),
            ),
        ],
        gauges: vec![(
            MetricKey::new("adcomp_serve_healthy", &[]),
            status.healthy.load(Ordering::Acquire) as i64,
        )],
        histograms: Vec::new(),
    }
}
