//! The daemon's durable lifecycle journal.
//!
//! One [`RunStore`] (at `<root>/daemon/`) holds every
//! [`EpochEvent`] the daemon has journaled, keyed by
//! [`epoch_event_key`]`(scope, epoch, stage)`. Per-`(epoch, stage)`
//! keying is the crash-safety trick: re-journaling a stage after a
//! restart overwrites the same key in the latest-wins view instead of
//! appending a duplicate, so *every stage is idempotent* — an
//! `AlertRaised` survives a kill between it and its `DriftChecked`
//! without ever becoming two alerts.
//!
//! Appends default to [`SyncPolicy::EveryRecord`]: a journal record the
//! daemon has acted on is on disk before the action's effects matter.

use std::io;
use std::path::Path;

use adcomp_core::recording::{epoch_event_key, EpochEvent, KIND_EPOCH};
use adcomp_store::{RunStore, SyncPolicy, WalOptions};

/// Where a recovered daemon should pick up.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Resume {
    /// Start `epoch` from the top (nothing of it is journaled).
    Fresh {
        /// Next epoch to run.
        epoch: u64,
    },
    /// `epoch` died mid-survey: re-run it. Answered queries replay
    /// from the epoch's own recording store; `attempt` is the last
    /// journaled supervision attempt.
    Survey {
        /// Epoch to resume.
        epoch: u64,
        /// Last journaled attempt.
        attempt: u32,
    },
    /// `epoch`'s survey completed and is durable; only the drift stage
    /// remains.
    Drift {
        /// Epoch to finish.
        epoch: u64,
        /// Digest journaled at completion.
        digest: u64,
        /// Estimate count journaled at completion.
        estimates: u64,
    },
}

/// Append/scan wrapper over the daemon's lifecycle store.
pub struct EpochJournal {
    store: RunStore,
    scope: String,
}

impl EpochJournal {
    /// Opens (creating if needed) the journal at `dir`.
    pub fn open(dir: impl AsRef<Path>, scope: &str, fsync: bool) -> io::Result<EpochJournal> {
        let opts = WalOptions {
            sync: if fsync {
                SyncPolicy::EveryRecord
            } else {
                SyncPolicy::Never
            },
            ..WalOptions::default()
        };
        Ok(EpochJournal {
            store: RunStore::open_with(dir, opts)?,
            scope: scope.to_string(),
        })
    }

    /// Journals `event` durably (overwriting any prior record of the
    /// same epoch and stage).
    pub fn record(&self, event: &EpochEvent) -> io::Result<()> {
        let key = epoch_event_key(&self.scope, event.epoch(), event.stage());
        self.store.append(KIND_EPOCH, key, &event.encode())
    }

    /// The journaled event of `epoch` at `stage`, if any.
    pub fn event(&self, epoch: u64, stage: u8) -> Option<EpochEvent> {
        let key = epoch_event_key(&self.scope, epoch, stage);
        match self.store.get(key) {
            Some((KIND_EPOCH, payload)) => EpochEvent::decode(&payload).ok(),
            _ => None,
        }
    }

    /// Every journaled event, sorted by `(epoch, stage)`.
    pub fn events(&self) -> Vec<EpochEvent> {
        let mut out = Vec::new();
        self.store.for_each_kind(KIND_EPOCH, |_, payload| {
            if let Ok(ev) = EpochEvent::decode(payload) {
                out.push(ev);
            }
        });
        out.sort_by_key(|ev| (ev.epoch(), ev.stage()));
        out
    }

    /// Whether anything has ever been journaled (a nonempty journal on
    /// open means this daemon is resuming, not starting).
    pub fn is_fresh(&self) -> bool {
        self.store.count_kind(KIND_EPOCH) == 0
    }

    /// Scans the journal and decides where to pick up.
    pub fn recover(&self) -> Resume {
        let events = self.events();
        let latest = match events.iter().map(EpochEvent::epoch).max() {
            None => return Resume::Fresh { epoch: 0 },
            Some(e) => e,
        };
        let stage = |s: u8| self.event(latest, s);
        // Every epoch's lifecycle ends with DriftChecked (epoch 0 gets
        // a trivial one), so its presence means the epoch is done.
        if stage(3).is_some() {
            return Resume::Fresh { epoch: latest + 1 };
        }
        if let Some(EpochEvent::Completed {
            digest, estimates, ..
        }) = stage(2)
        {
            return Resume::Drift {
                epoch: latest,
                digest,
                estimates,
            };
        }
        match stage(1) {
            Some(EpochEvent::Started { attempt, .. }) => Resume::Survey {
                epoch: latest,
                attempt,
            },
            // Only an AlertRaised/Degraded survives for this epoch —
            // can't happen through the daemon, but a truncated journal
            // should still land somewhere sane.
            _ => Resume::Survey {
                epoch: latest,
                attempt: 0,
            },
        }
    }

    /// Forces buffered appends to disk (no-op under `EveryRecord`).
    pub fn sync(&self) -> io::Result<()> {
        self.store.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("adcomp-serve-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn recovery_lands_on_the_open_stage() {
        let dir = tmp("recover");
        let j = EpochJournal::open(&dir, "serve", false).unwrap();
        assert!(j.is_fresh());
        assert_eq!(j.recover(), Resume::Fresh { epoch: 0 });

        j.record(&EpochEvent::Started {
            epoch: 0,
            attempt: 1,
        })
        .unwrap();
        assert_eq!(
            j.recover(),
            Resume::Survey {
                epoch: 0,
                attempt: 1
            }
        );

        j.record(&EpochEvent::Completed {
            epoch: 0,
            digest: 9,
            estimates: 4,
        })
        .unwrap();
        assert_eq!(
            j.recover(),
            Resume::Drift {
                epoch: 0,
                digest: 9,
                estimates: 4
            }
        );

        j.record(&EpochEvent::DriftChecked {
            epoch: 0,
            findings: 0,
            crossings: 0,
        })
        .unwrap();
        assert_eq!(j.recover(), Resume::Fresh { epoch: 1 });

        // Restart-with-retry overwrites, never duplicates: two Started
        // records for epoch 1 leave one event in the view.
        j.record(&EpochEvent::Started {
            epoch: 1,
            attempt: 1,
        })
        .unwrap();
        j.record(&EpochEvent::Started {
            epoch: 1,
            attempt: 2,
        })
        .unwrap();
        assert_eq!(
            j.recover(),
            Resume::Survey {
                epoch: 1,
                attempt: 2
            }
        );
        let started: Vec<_> = j
            .events()
            .into_iter()
            .filter(|e| matches!(e, EpochEvent::Started { epoch: 1, .. }))
            .collect();
        assert_eq!(started.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_survives_reopen() {
        let dir = tmp("reopen");
        {
            let j = EpochJournal::open(&dir, "serve", true).unwrap();
            j.record(&EpochEvent::AlertRaised {
                epoch: 2,
                crossings: 1,
                detail: "crossing".into(),
            })
            .unwrap();
            j.record(&EpochEvent::Completed {
                epoch: 2,
                digest: 1,
                estimates: 1,
            })
            .unwrap();
        }
        let j = EpochJournal::open(&dir, "serve", true).unwrap();
        assert!(!j.is_fresh());
        assert!(matches!(
            j.event(2, 4),
            Some(EpochEvent::AlertRaised { crossings: 1, .. })
        ));
        assert_eq!(
            j.recover(),
            Resume::Drift {
                epoch: 2,
                digest: 1,
                estimates: 1
            }
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
