//! Supervised continuous-audit daemon for the composition-audit
//! pipeline.
//!
//! The paper's audits are one-shot; a deployed auditor runs forever.
//! This crate turns one audit into a *service*: a supervisor loop
//! ([`Daemon`]) that runs recurring epochs on a configurable schedule,
//! journals every lifecycle step durably (so `kill -9` at any point
//! resumes mid-epoch without re-issuing a single answered query),
//! diffs consecutive epochs with the drift analyzer, and raises
//! exactly one alert per epoch whose representation ratios cross a
//! four-fifths threshold — before or after a crash.
//!
//! * [`alert`] — drift-alert fan-out: the [`AlertSink`] trait with a
//!   JSONL journal sink and a fleet-aggregator push sink (delivery is
//!   at-least-once across crashes; the aggregator dedups to
//!   exactly-once);
//! * [`config`] — `key = value` config file, reloadable between epochs
//!   (operational fields only; identity changes are rejected);
//! * [`provider`] — where epochs get their endpoints; the provider
//!   outlives daemon incarnations, like a real platform does;
//! * [`journal`] — the durable lifecycle journal and its recovery scan;
//! * [`daemon`] — the supervisor: scheduling, per-epoch retry with
//!   capped backoff, degraded mode on dead endpoints, drift + alerts;
//! * [`status`] — a [`WireService`](adcomp_wire::WireService) serving
//!   health over the audit wire protocol;
//! * [`chaos`] — the deterministic kill/restart harness proving
//!   byte-identical convergence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alert;
pub mod chaos;
pub mod config;
pub mod daemon;
pub mod journal;
pub mod provider;
pub mod status;

pub use alert::{AlertSink, DriftAlert, JournalAlertSink, PushAlertSink};
pub use chaos::{run_chaos, run_clean, ChaosOutcome, ChaosPlan, ChaosProvider, KillPoint};
pub use config::ServeConfig;
pub use daemon::{status_frame, Daemon, FaultInjector, FaultPoint, Tick, CHAOS_KILL};
pub use journal::{EpochJournal, Resume};
pub use provider::{SimProvider, SourceProvider};
pub use status::{DaemonStatus, StatusService};
