//! Where each epoch's endpoints come from.
//!
//! The daemon does not construct platforms itself; it asks a
//! [`SourceProvider`] for the epoch's endpoint set. This keeps one
//! invariant that the whole chaos story depends on explicit: **the
//! provider outlives daemon incarnations.** Per-epoch fault plans keep
//! their call indices, and platform-side query counters keep counting,
//! across a `kill -9` and restart — exactly like a real remote platform
//! would. A provider constructed fresh per incarnation would silently
//! reset both and fake the recovery guarantees.
//!
//! [`SimProvider`] is the in-process implementation over the paper's
//! [`Simulation`]; the integration tests add a fleet-backed one over
//! wire clients.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

use adcomp_core::source::{ApiSource, EstimateSource};
use adcomp_platform::{
    FaultPlan, FaultyPlatform, InterfaceKind, PlatformApi, RoundingRule, SimScale, Simulation,
};

use crate::config::ServeConfig;

/// Supplies the endpoint set for each epoch.
pub trait SourceProvider: Send + Sync {
    /// Interface label (for reports and the status line).
    fn label(&self) -> String;

    /// Endpoints to audit in `epoch`, in a stable order. All must
    /// answer for the same interface.
    fn endpoints(&self, epoch: u64) -> Vec<Arc<dyn EstimateSource>>;

    /// Estimate queries the *platform side* has answered so far, when
    /// the provider can see it. The chaos harness compares this across
    /// a killed-and-resumed run and a clean run to prove answered
    /// queries are never re-issued; providers without platform
    /// visibility return `None` and opt out of that check.
    fn answered(&self) -> Option<u64> {
        None
    }

    /// Rounding ladders of the audited interfaces, keyed by interface
    /// label. The drift stage uses these to put confidence intervals
    /// on representation ratios and tag crossings whose rounding slack
    /// straddles a four-fifths edge as low-confidence. Providers
    /// without ladder knowledge return an empty map and every crossing
    /// is reported at full confidence — the pre-interval behaviour.
    fn rounding_rules(&self) -> BTreeMap<String, RoundingRule> {
        BTreeMap::new()
    }
}

/// In-process provider over the paper's deterministic [`Simulation`].
///
/// Epochs normally share the one simulated platform. An epoch with a
/// registered [`FaultPlan`] is served through a [`FaultyPlatform`]
/// wrapper instead — constructed once and cached, so its fault indices
/// survive daemon restarts within the provider's lifetime.
pub struct SimProvider {
    sim: Simulation,
    kind: InterfaceKind,
    replicas: usize,
    plans: HashMap<u64, FaultPlan>,
    faulty: Mutex<HashMap<u64, Arc<FaultyPlatform>>>,
}

impl SimProvider {
    /// Builds the simulated world for `config`.
    pub fn from_config(config: &ServeConfig) -> SimProvider {
        SimProvider::new(config.seed, config.scale, config.interface, config.replicas)
    }

    /// Builds the simulated world directly.
    pub fn new(seed: u64, scale: SimScale, kind: InterfaceKind, replicas: usize) -> SimProvider {
        SimProvider {
            sim: Simulation::build(seed, scale),
            kind,
            replicas: replicas.max(1),
            plans: HashMap::new(),
            faulty: Mutex::new(HashMap::new()),
        }
    }

    /// Serves `epoch` through `plan`'s injected faults.
    pub fn with_fault(mut self, epoch: u64, plan: FaultPlan) -> SimProvider {
        self.plans.insert(epoch, plan);
        self
    }

    fn platform(&self) -> &Arc<adcomp_platform::AdPlatform> {
        match self.kind {
            InterfaceKind::FacebookNormal => &self.sim.facebook,
            InterfaceKind::FacebookRestricted => &self.sim.facebook_restricted,
            InterfaceKind::GoogleDisplay => &self.sim.google,
            InterfaceKind::LinkedIn => &self.sim.linkedin,
        }
    }

    fn api_for(&self, epoch: u64) -> Arc<dyn PlatformApi> {
        match self.plans.get(&epoch) {
            None => self.platform().clone(),
            Some(plan) => self
                .faulty
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .entry(epoch)
                .or_insert_with(|| {
                    Arc::new(FaultyPlatform::new(self.platform().clone(), plan.clone()))
                })
                .clone(),
        }
    }
}

impl SourceProvider for SimProvider {
    fn label(&self) -> String {
        self.kind.label().to_string()
    }

    fn endpoints(&self, epoch: u64) -> Vec<Arc<dyn EstimateSource>> {
        let api = self.api_for(epoch);
        (0..self.replicas)
            .map(|_| Arc::new(ApiSource(api.clone())) as Arc<dyn EstimateSource>)
            .collect()
    }

    fn answered(&self) -> Option<u64> {
        // FaultyPlatform delegates stats() to its inner platform, so
        // the base counter covers faulty epochs too.
        Some(self.platform().stats().estimates)
    }

    fn rounding_rules(&self) -> BTreeMap<String, RoundingRule> {
        let mut rules = BTreeMap::new();
        rules.insert(self.label(), self.platform().config().rounding);
        rules
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcomp_platform::{FaultKind, Schedule};

    #[test]
    fn faulty_epoch_platform_is_cached_across_calls() {
        let plan = FaultPlan::new(3).with(
            FaultKind::Noise { amplitude: 0.5 },
            Schedule::EveryNth {
                period: 1,
                offset: 0,
            },
        );
        let provider =
            SimProvider::new(5, SimScale::Test, InterfaceKind::LinkedIn, 2).with_fault(1, plan);

        // Two replicas, both present, same interface label.
        let eps = provider.endpoints(1);
        assert_eq!(eps.len(), 2);
        assert_eq!(eps[0].label(), "LinkedIn");

        // The faulty wrapper persists: a query through the first set
        // advances fault indices that a later set continues from.
        let spec = adcomp_targeting::TargetingSpec::everyone();
        let v1 = eps[0].estimate(&spec).unwrap();
        let again = provider.endpoints(1);
        let v2 = again[0].estimate(&spec).unwrap();
        // Noise on every call: the two draws come from consecutive
        // indices of one cached plan, while a clean epoch is untouched.
        let clean = provider.endpoints(0)[0].estimate(&spec).unwrap();
        assert!(v1 != clean || v2 != clean, "fault plan never fired");
        assert!(provider.answered().unwrap() >= 3);
    }
}
