//! The daemon's wire-visible status endpoint.
//!
//! [`StatusService`] implements [`WireService`] and answers
//! [`Request::Status`] with a one-line health summary and
//! [`Request::Metrics`] with the process's full Prometheus registry
//! text — the pull-based fallback scrape for when the push pipeline to
//! the fleet aggregator is down. Everything else is a `BadRequest` —
//! the daemon is not a platform, and pretending to be one would let an
//! audit accidentally query its own supervisor. It rides
//! [`serve_service`](adcomp_wire::serve_service), so it gets the wire
//! server's draining shutdown for free.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use adcomp_obs::Registry;
use adcomp_wire::{ErrorCode, Request, Response, WireService};

/// Counters the daemon publishes and the status endpoint reads.
///
/// Shared as an `Arc`: the daemon owns the writes, any number of
/// status servers (or tests) read.
#[derive(Debug, Default)]
pub struct DaemonStatus {
    /// Epochs fully completed (survey + drift stage).
    pub epochs: AtomicU64,
    /// Four-fifths crossing alerts raised.
    pub alerts: AtomicU64,
    /// Epochs that ran degraded (an endpoint was down).
    pub degraded: AtomicU64,
    /// Times a daemon picked up an existing journal.
    pub resumes: AtomicU64,
    /// Config reloads applied.
    pub reloads: AtomicU64,
    /// False once the daemon is failing epochs or has stopped.
    pub healthy: AtomicBool,
    /// Digest of the last completed epoch.
    pub last_digest: AtomicU64,
}

impl DaemonStatus {
    /// Fresh, healthy status.
    pub fn new() -> Arc<DaemonStatus> {
        let status = DaemonStatus::default();
        status.healthy.store(true, Ordering::Release);
        Arc::new(status)
    }

    /// The one-line summary served over the wire.
    pub fn line(&self, label: &str) -> String {
        format!(
            "serve {label}: epochs={} alerts={} degraded={} resumes={} reloads={} last_digest={:016x}",
            self.epochs.load(Ordering::Acquire),
            self.alerts.load(Ordering::Acquire),
            self.degraded.load(Ordering::Acquire),
            self.resumes.load(Ordering::Acquire),
            self.reloads.load(Ordering::Acquire),
            self.last_digest.load(Ordering::Acquire),
        )
    }
}

/// [`WireService`] answering status probes for a running daemon.
pub struct StatusService {
    status: Arc<DaemonStatus>,
    label: String,
}

impl StatusService {
    /// A service reading `status`, reporting as `label`.
    pub fn new(status: Arc<DaemonStatus>, label: impl Into<String>) -> StatusService {
        StatusService {
            status,
            label: label.into(),
        }
    }
}

impl WireService for StatusService {
    fn handle(&self, request: Request) -> Response {
        match request {
            Request::Status => Response::StatusReport {
                healthy: self.status.healthy.load(Ordering::Acquire),
                body: self.status.line(&self.label),
            },
            // Fallback scrape: the full process registry, pull-based,
            // for when pushes to the aggregator are not flowing.
            Request::Metrics => Response::MetricsText {
                text: Registry::global().render_prometheus(),
            },
            _ => Response::Error {
                code: ErrorCode::BadRequest,
                message: "the audit daemon answers status probes only".into(),
                retry_after: None,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_line_reflects_counters() {
        let status = DaemonStatus::new();
        status.epochs.store(3, Ordering::Release);
        status.alerts.store(1, Ordering::Release);
        let line = status.line("LinkedIn");
        assert!(line.contains("epochs=3"), "{line}");
        assert!(line.contains("alerts=1"), "{line}");

        let service = StatusService::new(status.clone(), "LinkedIn");
        match service.handle(Request::Status) {
            Response::StatusReport { healthy, body } => {
                assert!(healthy);
                assert_eq!(body, line);
            }
            other => panic!("unexpected response {other:?}"),
        }
        match service.handle(Request::Stats) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn metrics_scrape_serves_the_full_registry() {
        adcomp_obs::Registry::global()
            .counter("adcomp_serve_status_scrape_probe")
            .inc();
        let service = StatusService::new(DaemonStatus::new(), "LinkedIn");
        match service.handle(Request::Metrics) {
            Response::MetricsText { text } => {
                assert!(text.contains("adcomp_serve_status_scrape_probe"), "{text}");
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
}
