//! Chaos acceptance: kill the daemon at seeded fault points — mid
//! survey, during the drift diff, between epochs — and prove the run
//! converges to byte-identical results with zero re-issued answered
//! queries and exactly one alert per crossing epoch.

use std::sync::Arc;

use adcomp_core::recording::EpochEvent;
use adcomp_obs::Registry;
use adcomp_platform::{FaultKind, FaultPlan, Schedule};
use adcomp_serve::{
    run_chaos, run_clean, ChaosPlan, EpochJournal, KillPoint, ServeConfig, SimProvider,
};

fn tmp_root(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("adcomp-serve-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Chaos config: fsync everywhere (the guarantees under test are
/// durability guarantees) and no in-process retries (a killed process
/// has no retry budget).
fn chaos_config(root: &std::path::Path) -> ServeConfig {
    let mut cfg = ServeConfig::default_at(root);
    cfg.seed = 2020;
    cfg.max_epochs = 3;
    cfg.interval_ms = 10;
    cfg.epoch_retries = 0;
    cfg.fsync = true;
    cfg
}

/// Noise + monotone drift on epoch 1 only: pushes representation
/// ratios across four-fifths thresholds against the clean epoch 0.
fn drifting_plan() -> FaultPlan {
    FaultPlan::new(41)
        .with(
            FaultKind::Noise { amplitude: 0.35 },
            Schedule::EveryNth {
                period: 2,
                offset: 0,
            },
        )
        .with(
            FaultKind::Drift { rate: 0.0005 },
            Schedule::EveryNth {
                period: 1,
                offset: 0,
            },
        )
}

fn provider_for(cfg: &ServeConfig) -> Arc<SimProvider> {
    Arc::new(SimProvider::from_config(cfg).with_fault(1, drifting_plan()))
}

#[test]
fn killed_daemon_converges_byte_identically_with_zero_reissued_queries() {
    let alerts_metric = Registry::global().counter("adcomp_serve_alerts_total");
    let resumes_metric = Registry::global().counter("adcomp_serve_resumes_total");

    // ── Baseline: the same three epochs with no kills. ──────────────
    let clean_root = tmp_root("clean");
    let clean_cfg = chaos_config(&clean_root);
    let clean_provider = provider_for(&clean_cfg);
    let alerts_before_clean = alerts_metric.get();
    let clean = run_clean(&clean_cfg, clean_provider.clone()).unwrap();
    let clean_alerts_raised = alerts_metric.get() - alerts_before_clean;

    assert_eq!(clean.incarnations, 1);
    assert_eq!(clean.kills, 0);
    assert_eq!(clean.digests.len(), 3);
    assert!(
        clean.alerted_epochs.contains(&1),
        "the drifting epoch must alert: {:?}",
        clean.alerted_epochs
    );
    assert_eq!(clean_alerts_raised, clean.alerted_epochs.len() as u64);
    let clean_answered = clean.answered.expect("sim provider sees the platform");
    assert!(clean_answered > 0);

    // ── Chaos: four kills across three distinct fault-point kinds. ──
    //
    // * mid-survey of the clean epoch 0 (40 answered queries on disk);
    // * mid-survey of the *faulty* epoch 1 — the resumed survey must
    //   continue the fault plan exactly where the dead process left it;
    // * during epoch 1's drift diff, after its AlertRaised is durable
    //   and before its DriftChecked is — the exactly-once-alert window;
    // * between epochs 1 and 2.
    let chaos_root = tmp_root("killed");
    let chaos_cfg = chaos_config(&chaos_root);
    let chaos_provider = provider_for(&chaos_cfg);
    let plan = ChaosPlan {
        kills: vec![
            KillPoint::MidSurvey {
                epoch: 0,
                after_queries: 40,
            },
            KillPoint::MidSurvey {
                epoch: 1,
                after_queries: 25,
            },
            KillPoint::DuringDrift { epoch: 1 },
            KillPoint::BetweenEpochs { epoch: 1 },
        ],
    };
    let alerts_before_chaos = alerts_metric.get();
    let resumes_before = resumes_metric.get();
    let chaos = run_chaos(&chaos_cfg, chaos_provider.clone(), &plan).unwrap();
    let chaos_alerts_raised = alerts_metric.get() - alerts_before_chaos;

    assert_eq!(chaos.kills, 4, "every scheduled kill must fire");
    assert_eq!(chaos.incarnations, 5);
    assert!(resumes_metric.get() - resumes_before >= 4);

    // Byte-identical convergence: every epoch's digest matches the
    // clean run's, in order.
    assert_eq!(chaos.digests, clean.digests);

    // Zero re-issued answered queries: the platform answered exactly as
    // many estimates as in the clean run — every query answered before
    // a kill was replayed from disk, never re-sent.
    assert_eq!(chaos.answered, Some(clean_answered));

    // Exactly one alert per crossing epoch, before AND after the kill
    // inside epoch 1's drift stage: the same epochs alerted as in the
    // clean run, and the alert counter moved once per epoch even
    // though the alerting stage ran twice.
    assert_eq!(chaos.alerted_epochs, clean.alerted_epochs);
    assert_eq!(chaos_alerts_raised, clean_alerts_raised);

    // The journal's durable view agrees: one AlertRaised for epoch 1,
    // whose detail survived the restart verbatim.
    let journal = EpochJournal::open(chaos_cfg.journal_dir(), "serve", false).unwrap();
    let alerts: Vec<_> = journal
        .events()
        .into_iter()
        .filter(|e| matches!(e, EpochEvent::AlertRaised { epoch: 1, .. }))
        .collect();
    assert_eq!(alerts.len(), 1);

    std::fs::remove_dir_all(&clean_root).ok();
    std::fs::remove_dir_all(&chaos_root).ok();
}

#[test]
fn chaos_runs_are_reproducible_across_identical_schedules() {
    // The harness itself must be deterministic: two chaos runs with the
    // same seeds and the same kill schedule agree on every digest.
    let plan = ChaosPlan {
        kills: vec![
            KillPoint::MidSurvey {
                epoch: 0,
                after_queries: 10,
            },
            KillPoint::BetweenEpochs { epoch: 0 },
        ],
    };
    let mut digests = Vec::new();
    for tag in ["repro-a", "repro-b"] {
        let root = tmp_root(tag);
        let mut cfg = chaos_config(&root);
        cfg.max_epochs = 2;
        // Clean provider: this test may run alongside the alert test,
        // and the global alert counter must not move under it.
        let provider = Arc::new(SimProvider::from_config(&cfg));
        let outcome = run_chaos(&cfg, provider, &plan).unwrap();
        assert_eq!(outcome.kills, 2);
        digests.push(outcome.digests);
        std::fs::remove_dir_all(&root).ok();
    }
    assert_eq!(digests[0], digests[1]);
    // Resumes were counted for the killed incarnations.
    assert!(
        Registry::global()
            .counter("adcomp_serve_resumes_total")
            .get()
            >= 2
    );
}
