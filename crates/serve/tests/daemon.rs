//! Supervisor-loop integration tests: scheduling, config reload,
//! retry/backoff, degraded mode, wire status, and drift alerting.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use adcomp_core::source::{EstimateSource, SourceError};
use adcomp_obs::{Clock, ManualClock};
use adcomp_platform::{FaultKind, FaultPlan, Schedule};
use adcomp_serve::{Daemon, ServeConfig, SimProvider, SourceProvider, StatusService, Tick};
use adcomp_targeting::{AttributeId, FeatureId, TargetingSpec};
use adcomp_wire::{serve_service, Client, ClientConfig, ServerConfig};

fn tmp_root(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("adcomp-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fast_config(root: &std::path::Path) -> ServeConfig {
    let mut cfg = ServeConfig::default_at(root);
    cfg.seed = 2020;
    cfg.interval_ms = 1_000;
    cfg.max_epochs = 3;
    cfg.epoch_retries = 1;
    cfg.backoff_base_ms = 1;
    cfg.backoff_cap_ms = 4;
    cfg.fsync = false; // unit speed; chaos tests exercise fsync
    cfg
}

/// The plan the longitudinal example uses: noisy estimates plus a slow
/// monotone drift, enough to push ~100 ratios across a four-fifths
/// threshold at SimScale::Test.
fn drifting_plan() -> FaultPlan {
    FaultPlan::new(41)
        .with(
            FaultKind::Noise { amplitude: 0.35 },
            Schedule::EveryNth {
                period: 2,
                offset: 0,
            },
        )
        .with(
            FaultKind::Drift { rate: 0.0005 },
            Schedule::EveryNth {
                period: 1,
                offset: 0,
            },
        )
}

#[test]
fn daemon_runs_epochs_on_the_injected_clock() {
    let root = tmp_root("schedule");
    let cfg = fast_config(&root);
    let provider = Arc::new(SimProvider::from_config(&cfg));
    let clock = Arc::new(ManualClock::new());
    let mut daemon = Daemon::open(cfg, provider, clock.clone()).unwrap();

    // First epoch is due immediately.
    let first = daemon.tick().unwrap();
    let Tick::Completed {
        epoch: 0,
        digest,
        alerted: false,
        resumed: false,
    } = first
    else {
        panic!("unexpected first tick {first:?}");
    };

    // Not due again until the interval passes; Idle tells us when.
    let Tick::Idle { until } = daemon.tick().unwrap() else {
        panic!("expected idle");
    };
    assert!(until >= Duration::from_millis(1_000));
    clock.advance(until - clock.now());

    // Same world, no faults: every epoch digests identically.
    for want in 1..3u64 {
        let tick = daemon.tick().unwrap();
        match tick {
            Tick::Completed {
                epoch,
                digest: d,
                alerted,
                ..
            } => {
                assert_eq!(epoch, want);
                assert_eq!(d, digest, "stable world must digest identically");
                assert!(!alerted);
            }
            other => panic!("unexpected tick {other:?}"),
        }
        clock.advance(Duration::from_millis(1_000));
    }
    assert_eq!(daemon.tick().unwrap(), Tick::Finished);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn config_reload_applies_between_epochs_without_dropping_state() {
    let root = tmp_root("reload");
    std::fs::create_dir_all(&root).unwrap();
    let config_file = root.join("serve.conf");
    let base = format!(
        "seed = 2020\nroot = {}\ninterval_ms = 1000\nmax_epochs = 2\nfsync = false\n",
        root.join("data").display()
    );
    std::fs::write(&config_file, &base).unwrap();

    let (cfg, _) = ServeConfig::load(&config_file).unwrap();
    let provider = Arc::new(SimProvider::from_config(&cfg));
    let clock = Arc::new(ManualClock::new());
    let mut daemon = Daemon::open_reloadable(&config_file, provider, clock.clone()).unwrap();

    let Tick::Completed {
        epoch: 0, digest, ..
    } = daemon.tick().unwrap()
    else {
        panic!("expected epoch 0");
    };
    let reloads_before = daemon.status().reloads.load(Ordering::Acquire);

    // Touching operational knobs applies on the next epoch boundary:
    // the interval shrinks and the budget grows, state stays.
    std::fs::write(
        &config_file,
        base.replace("interval_ms = 1000", "interval_ms = 200")
            .replace("max_epochs = 2", "max_epochs = 3"),
    )
    .unwrap();
    clock.advance(Duration::from_millis(1_000));
    let Tick::Completed {
        epoch: 1,
        digest: d1,
        resumed: false,
        ..
    } = daemon.tick().unwrap()
    else {
        panic!("expected epoch 1");
    };
    assert_eq!(d1, digest, "reload must not change what is audited");
    assert_eq!(daemon.config().interval_ms, 200);
    assert_eq!(daemon.config().max_epochs, 3);
    assert_eq!(
        daemon.status().reloads.load(Ordering::Acquire),
        reloads_before + 1
    );
    let Tick::Idle { until } = daemon.tick().unwrap() else {
        panic!("expected idle");
    };
    assert!(
        until - clock.now() <= Duration::from_millis(200),
        "new interval must schedule the next epoch"
    );

    // An identity change is rejected: the audit keeps its world.
    std::fs::write(&config_file, base.replace("seed = 2020", "seed = 7")).unwrap();
    clock.advance(Duration::from_millis(200));
    let Tick::Completed {
        epoch: 2,
        digest: d2,
        ..
    } = daemon.tick().unwrap()
    else {
        panic!("expected epoch 2");
    };
    assert_eq!(d2, digest, "identity reload must be refused");
    assert_eq!(daemon.config().seed, 2020);
    // The rejected reload still counts as a decision, not an apply.
    assert_eq!(
        daemon.status().reloads.load(Ordering::Acquire),
        reloads_before + 1
    );
    // max_epochs snapped back to 2 was rejected wholesale with the
    // seed change, so the budget of 3 from the applied reload stands.
    assert_eq!(daemon.tick().unwrap(), Tick::Finished);
    std::fs::remove_dir_all(&root).ok();
}

/// An endpoint whose health probe fails a fixed number of times before
/// recovering — the shape of a replica rebooting during an epoch start.
struct FlakyCheck {
    inner: Arc<dyn EstimateSource>,
    failures: AtomicU32,
}

impl EstimateSource for FlakyCheck {
    fn label(&self) -> String {
        self.inner.label()
    }
    fn estimate(&self, spec: &TargetingSpec) -> Result<u64, SourceError> {
        self.inner.estimate(spec)
    }
    fn check(&self, spec: &TargetingSpec) -> Result<(), SourceError> {
        let left = self.failures.load(Ordering::Acquire);
        if left > 0 {
            self.failures.store(left - 1, Ordering::Release);
            return Err(SourceError::Transport("endpoint rebooting".into()));
        }
        self.inner.check(spec)
    }
    fn catalog_len(&self) -> u32 {
        self.inner.catalog_len()
    }
    fn attribute_name(&self, id: AttributeId) -> Option<String> {
        self.inner.attribute_name(id)
    }
    fn attribute_feature(&self, id: AttributeId) -> Option<FeatureId> {
        self.inner.attribute_feature(id)
    }
    fn can_compose(&self, a: AttributeId, b: AttributeId) -> bool {
        self.inner.can_compose(a, b)
    }
    fn supports_demographics(&self) -> bool {
        self.inner.supports_demographics()
    }
}

struct FlakyProvider {
    inner: SimProvider,
    failures: u32,
    flaky: std::sync::Mutex<Option<Arc<FlakyCheck>>>,
}

impl SourceProvider for FlakyProvider {
    fn label(&self) -> String {
        self.inner.label()
    }
    fn endpoints(&self, epoch: u64) -> Vec<Arc<dyn EstimateSource>> {
        let mut slot = self.flaky.lock().unwrap();
        let flaky = slot
            .get_or_insert_with(|| {
                Arc::new(FlakyCheck {
                    inner: self.inner.endpoints(epoch).remove(0),
                    failures: AtomicU32::new(self.failures),
                })
            })
            .clone();
        vec![flaky]
    }
}

#[test]
fn failed_epoch_retries_with_backoff_and_journals_the_attempt() {
    let root = tmp_root("retry");
    let mut cfg = fast_config(&root);
    cfg.max_epochs = 1;
    cfg.epoch_retries = 2;
    let provider = Arc::new(FlakyProvider {
        inner: SimProvider::from_config(&cfg),
        failures: 1, // attempt 1's probe fails; attempt 2 recovers
        flaky: std::sync::Mutex::new(None),
    });
    let retries = adcomp_obs::Registry::global().counter("adcomp_serve_epoch_retries_total");
    let before = retries.get();

    let mut daemon = Daemon::open(cfg, provider, Arc::new(ManualClock::new())).unwrap();
    let Tick::Completed { epoch: 0, .. } = daemon.tick().unwrap() else {
        panic!("epoch should complete on the retry");
    };
    assert_eq!(retries.get(), before + 1);
    // The journal holds the *second* attempt: the retry overwrote the
    // first Started record in the latest-wins view.
    assert!(matches!(
        daemon.journal().event(0, 1),
        Some(adcomp_core::EpochEvent::Started { attempt: 2, .. })
    ));
    std::fs::remove_dir_all(&root).ok();
}

/// Two replicas, one permanently unreachable: the epoch must complete
/// degraded on the survivor and record exactly what a clean
/// single-replica epoch records.
struct HalfDeadProvider {
    inner: SimProvider,
}

struct DeadCheck {
    inner: Arc<dyn EstimateSource>,
}

impl EstimateSource for DeadCheck {
    fn label(&self) -> String {
        self.inner.label()
    }
    fn estimate(&self, _: &TargetingSpec) -> Result<u64, SourceError> {
        Err(SourceError::Transport("unreachable".into()))
    }
    fn check(&self, _: &TargetingSpec) -> Result<(), SourceError> {
        Err(SourceError::Transport("unreachable".into()))
    }
    fn catalog_len(&self) -> u32 {
        self.inner.catalog_len()
    }
    fn attribute_name(&self, id: AttributeId) -> Option<String> {
        self.inner.attribute_name(id)
    }
    fn attribute_feature(&self, id: AttributeId) -> Option<FeatureId> {
        self.inner.attribute_feature(id)
    }
    fn can_compose(&self, a: AttributeId, b: AttributeId) -> bool {
        self.inner.can_compose(a, b)
    }
    fn supports_demographics(&self) -> bool {
        self.inner.supports_demographics()
    }
}

impl SourceProvider for HalfDeadProvider {
    fn label(&self) -> String {
        self.inner.label()
    }
    fn endpoints(&self, epoch: u64) -> Vec<Arc<dyn EstimateSource>> {
        let healthy = self.inner.endpoints(epoch).remove(0);
        vec![
            Arc::new(DeadCheck {
                inner: healthy.clone(),
            }),
            healthy,
        ]
    }
}

#[test]
fn dead_replica_degrades_the_epoch_but_not_the_results() {
    let root_half = tmp_root("degraded-half");
    let root_clean = tmp_root("degraded-clean");
    let mut cfg_half = fast_config(&root_half);
    cfg_half.max_epochs = 1;
    let mut cfg_clean = fast_config(&root_clean);
    cfg_clean.max_epochs = 1;

    let provider = Arc::new(HalfDeadProvider {
        inner: SimProvider::from_config(&cfg_half),
    });
    let mut daemon = Daemon::open(cfg_half, provider, Arc::new(ManualClock::new())).unwrap();
    let Tick::Completed { digest, .. } = daemon.tick().unwrap() else {
        panic!("degraded epoch should still complete");
    };
    assert_eq!(daemon.status().degraded.load(Ordering::Acquire), 1);
    assert!(daemon.report().degraded());
    assert!(matches!(
        daemon.journal().event(0, 5),
        Some(adcomp_core::EpochEvent::Degraded { .. })
    ));

    let clean = Arc::new(SimProvider::from_config(&cfg_clean));
    let mut clean_daemon = Daemon::open(cfg_clean, clean, Arc::new(ManualClock::new())).unwrap();
    let Tick::Completed {
        digest: clean_digest,
        ..
    } = clean_daemon.tick().unwrap()
    else {
        panic!("clean epoch");
    };
    assert_eq!(
        digest, clean_digest,
        "running on the survivor must record identical estimates"
    );
    std::fs::remove_dir_all(&root_half).ok();
    std::fs::remove_dir_all(&root_clean).ok();
}

#[test]
fn status_endpoint_serves_live_counters_over_the_wire() {
    let root = tmp_root("status");
    let mut cfg = fast_config(&root);
    cfg.max_epochs = 2;
    let provider = Arc::new(SimProvider::from_config(&cfg));
    let clock = Arc::new(ManualClock::new());
    let mut daemon = Daemon::open(cfg, provider, clock.clone()).unwrap();

    let service = Arc::new(StatusService::new(daemon.status(), "LinkedIn"));
    let handle = serve_service(service, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let client = Client::connect_with(handle.addr(), ClientConfig::fast()).unwrap();

    let (healthy, body) = client.status().unwrap();
    assert!(healthy);
    assert!(body.contains("epochs=0"), "{body}");

    daemon.tick().unwrap();
    let (healthy, body) = client.status().unwrap();
    assert!(healthy);
    assert!(body.contains("epochs=1"), "{body}");

    clock.advance(Duration::from_millis(1_000));
    daemon.tick().unwrap();
    assert_eq!(daemon.tick().unwrap(), Tick::Finished);
    let (healthy, body) = client.status().unwrap();
    assert!(!healthy, "a finished daemon is not healthy: {body}");
    assert!(body.contains("epochs=2"), "{body}");
    handle.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn four_fifths_crossing_raises_exactly_one_alert() {
    let root = tmp_root("alert");
    let mut cfg = fast_config(&root);
    cfg.max_epochs = 3;
    // Epoch 1 is served through a noisy, drifting platform; epochs 0
    // and 2 are clean. Exactly one alert: 0→1 crosses. (1→2 crosses
    // back — also alertable — so assert per-epoch, not just totals.)
    let provider = Arc::new(SimProvider::from_config(&cfg).with_fault(1, drifting_plan()));
    let clock = Arc::new(ManualClock::new());
    let mut daemon = Daemon::open(cfg, provider, clock.clone()).unwrap();

    let Tick::Completed {
        epoch: 0,
        alerted: false,
        ..
    } = daemon.tick().unwrap()
    else {
        panic!("epoch 0 should be quiet");
    };
    clock.advance(Duration::from_millis(1_000));
    let Tick::Completed {
        epoch: 1,
        alerted: true,
        ..
    } = daemon.tick().unwrap()
    else {
        panic!("epoch 1 must alert");
    };
    assert_eq!(daemon.status().alerts.load(Ordering::Acquire), 1);
    let Some(adcomp_core::EpochEvent::AlertRaised {
        epoch: 1,
        crossings,
        ..
    }) = daemon.journal().event(1, 4)
    else {
        panic!("alert must be journaled");
    };
    assert!(crossings > 0);
    assert!(daemon.journal().event(0, 4).is_none());
    std::fs::remove_dir_all(&root).ok();
}
