//! Atomic, durable file replacement.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

/// Writes `bytes` to `path` atomically and durably: the bytes land in a
/// unique temp sibling first, the temp file is fsync'd, then renamed
/// over `path`, then the parent directory is fsync'd (best-effort on
/// filesystems that refuse directory fsync). A crash at any point
/// leaves either the old file or the new one — never a torn mix, and
/// never a renamed-but-empty file.
///
/// This is the primitive behind WAL segment rotation, snapshot-index
/// saves, and `adcomp-core`'s probe checkpoints.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    // Unique per process: concurrent writers to *different* targets in
    // the same directory never collide; two writers to the same target
    // race benignly (last rename wins, both renames are atomic).
    let mut tmp_name = std::ffi::OsString::from(".");
    tmp_name.push(file_name);
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let result = (|| {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)?;
        if let Some(d) = dir {
            // Durability of the rename itself. Some filesystems (and
            // some CI sandboxes) reject opening a directory for sync;
            // the rename is still atomic there, so this is advisory.
            if let Ok(dirf) = File::open(d) {
                let _ = dirf.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("adcomp-store-atomic-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_replaces() {
        let dir = tmp_dir("replace");
        let path = dir.join("target.txt");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second, longer contents").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer contents");
        // No temp litter.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_bare_directory_path() {
        let dir = tmp_dir("bare");
        assert!(write_atomic(&dir.join(""), b"x").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
