//! Self-validating record frames.
//!
//! On-disk layout of one frame (all integers big-endian):
//!
//! ```text
//! ┌─────────┬────────┬─────────┬─────────────┬──────────┐
//! │ len u32 │ kind u8│ key u64 │ payload …   │ crc u32  │
//! └─────────┴────────┴─────────┴─────────────┴──────────┘
//!   len = 1 + 8 + payload.len()      crc over kind‥payload
//! ```
//!
//! A frame is accepted only when the declared length fits the remaining
//! bytes **and** the checksum matches; anything else reads as a torn
//! tail. The CRC is CRC-32 (IEEE, reflected), table-driven, computed at
//! compile time — no dependencies.

use std::io::{self, Read, Write};

/// Header bytes preceding the payload: length prefix + kind + key.
pub const FRAME_HEADER: usize = 4 + 1 + 8;
/// Trailing checksum bytes.
pub const FRAME_TRAILER: usize = 4;
/// Sanity cap on a single record's payload (64 MiB); a declared length
/// beyond it reads as corruption rather than an allocation request.
pub const MAX_PAYLOAD: usize = 64 << 20;

/// One durable record: a kind tag, a caller-computed content-hash key,
/// and an opaque payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// Record type tag (domain-defined; the store never interprets it).
    pub kind: u8,
    /// Content-hash key (domain-defined, e.g. a stable hash of the
    /// normalized targeting spec).
    pub key: u64,
    /// Opaque payload bytes.
    pub payload: Vec<u8>,
}

impl Record {
    /// A record from parts.
    pub fn new(kind: u8, key: u64, payload: Vec<u8>) -> Record {
        Record { kind, key, payload }
    }

    /// Bytes this record occupies on disk.
    pub fn frame_len(&self) -> usize {
        FRAME_HEADER + self.payload.len() + FRAME_TRAILER
    }

    /// Writes the record's frame to `w`.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let len = (1 + 8 + self.payload.len()) as u32;
        w.write_all(&len.to_be_bytes())?;
        w.write_all(&[self.kind])?;
        w.write_all(&self.key.to_be_bytes())?;
        w.write_all(&self.payload)?;
        let mut crc = Crc32::new();
        crc.update(&[self.kind]);
        crc.update(&self.key.to_be_bytes());
        crc.update(&self.payload);
        w.write_all(&crc.finish().to_be_bytes())
    }

    /// Reads one frame. `Ok(None)` = clean end of input (zero bytes
    /// left); `Err(e)` with [`io::ErrorKind::UnexpectedEof`] /
    /// [`io::ErrorKind::InvalidData`] = torn or corrupt frame.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Option<Record>> {
        let mut len_buf = [0u8; 4];
        match read_exact_or_eof(r, &mut len_buf)? {
            ReadOutcome::CleanEof => return Ok(None),
            ReadOutcome::Torn => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "torn frame length",
                ))
            }
            ReadOutcome::Full => {}
        }
        let len = u32::from_be_bytes(len_buf) as usize;
        if !(1 + 8..=1 + 8 + MAX_PAYLOAD).contains(&len) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("implausible frame length {len}"),
            ));
        }
        let mut body = vec![0u8; len + FRAME_TRAILER];
        r.read_exact(&mut body)
            .map_err(|_| io::Error::new(io::ErrorKind::UnexpectedEof, "torn frame body"))?;
        let (content, trailer) = body.split_at(len);
        let stored = u32::from_be_bytes(trailer.try_into().expect("4 trailer bytes"));
        if crc32(content) != stored {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame checksum mismatch",
            ));
        }
        let kind = content[0];
        let key = u64::from_be_bytes(content[1..9].try_into().expect("8 key bytes"));
        Ok(Some(Record {
            kind,
            key,
            payload: content[9..].to_vec(),
        }))
    }
}

enum ReadOutcome {
    Full,
    CleanEof,
    Torn,
}

/// Fills `buf` completely, distinguishing "no bytes at all" (clean EOF)
/// from "some but not enough" (torn write).
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..])? {
            0 if filled == 0 => return Ok(ReadOutcome::CleanEof),
            0 => return Ok(ReadOutcome::Torn),
            n => filled += n,
        }
    }
    Ok(ReadOutcome::Full)
}

/// CRC-32 (IEEE 802.3, reflected), table computed at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Incremental CRC-32 state.
pub struct Crc32(u32);

impl Crc32 {
    /// Fresh state.
    pub fn new() -> Crc32 {
        Crc32(0xFFFF_FFFF)
    }

    /// Folds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 >> 8) ^ CRC_TABLE[((self.0 ^ b as u32) & 0xFF) as usize];
        }
    }

    /// The final checksum.
    pub fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard test vector for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip() {
        let r = Record::new(3, 0xDEAD_BEEF_CAFE_F00D, vec![1, 2, 3, 4, 5]);
        let mut buf = Vec::new();
        r.write_to(&mut buf).unwrap();
        assert_eq!(buf.len(), r.frame_len());
        let mut cursor = buf.as_slice();
        let back = Record::read_from(&mut cursor).unwrap().unwrap();
        assert_eq!(back, r);
        assert!(
            Record::read_from(&mut cursor).unwrap().is_none(),
            "clean EOF"
        );
    }

    #[test]
    fn empty_payload_roundtrip() {
        let r = Record::new(0, 0, Vec::new());
        let mut buf = Vec::new();
        r.write_to(&mut buf).unwrap();
        let back = Record::read_from(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn torn_tail_is_detected_not_misread() {
        let r = Record::new(1, 42, vec![9; 100]);
        let mut buf = Vec::new();
        r.write_to(&mut buf).unwrap();
        // Every strict prefix must read as torn, never as a record.
        for cut in 1..buf.len() {
            let mut cursor = &buf[..cut];
            let err = Record::read_from(&mut cursor).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn flipped_bit_fails_checksum() {
        let r = Record::new(1, 42, vec![7; 32]);
        let mut buf = Vec::new();
        r.write_to(&mut buf).unwrap();
        for idx in [4usize, 5, 12, 20, buf.len() - 1] {
            let mut bad = buf.clone();
            bad[idx] ^= 0x01;
            let err = Record::read_from(&mut bad.as_slice()).unwrap_err();
            assert!(
                matches!(
                    err.kind(),
                    io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof
                ),
                "flip at {idx} gave {err}"
            );
        }
    }

    #[test]
    fn implausible_length_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        buf.extend_from_slice(&[0; 16]);
        let err = Record::read_from(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
