//! Persisted snapshot of the latest record per key.
//!
//! The index is a last-writer-wins map from content-hash key to
//! `(kind, payload)`, rebuilt from the WAL on open. Persisting it lets
//! a reopen skip every sealed segment the snapshot already covers:
//! [`SnapshotIndex::applied_segments`] records how many sealed segments
//! were folded in at save time, and re-applying any record twice is
//! harmless because application is idempotent latest-wins.
//!
//! On-disk format: an 8-byte magic, the applied-segment count (u64 BE),
//! then one [`Record`] frame per entry. Frames are self-checksummed, so
//! a damaged snapshot is *detected* and reported as absent — the caller
//! falls back to a full WAL replay rather than trusting bad bytes.

use std::collections::BTreeMap;
use std::io::{self, Read};
use std::path::Path;

use crate::atomic::write_atomic;
use crate::frame::Record;

/// First bytes of a snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"adcsnap1";

/// Last-writer-wins view of a record log, keyed by content hash.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SnapshotIndex {
    map: BTreeMap<u64, (u8, Vec<u8>)>,
    applied_segments: u64,
}

impl SnapshotIndex {
    /// An empty index covering zero sealed segments.
    pub fn new() -> SnapshotIndex {
        SnapshotIndex::default()
    }

    /// Folds a record in (latest wins per key).
    pub fn apply(&mut self, record: Record) {
        self.map.insert(record.key, (record.kind, record.payload));
    }

    /// The latest `(kind, payload)` for `key`, if any.
    pub fn get(&self, key: u64) -> Option<(u8, &[u8])> {
        self.map.get(&key).map(|(k, p)| (*k, p.as_slice()))
    }

    /// Whether `key` has a record.
    pub fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the index has no keys.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Entries in ascending key order (deterministic — drift diffs
    /// depend on this).
    pub fn iter(&self) -> impl Iterator<Item = (u64, u8, &[u8])> {
        self.map
            .iter()
            .map(|(k, (kind, p))| (*k, *kind, p.as_slice()))
    }

    /// How many sealed WAL segments this index has fully folded in.
    pub fn applied_segments(&self) -> u64 {
        self.applied_segments
    }

    /// Records the sealed-segment watermark before a save.
    pub fn set_applied_segments(&mut self, n: u64) {
        self.applied_segments = n;
    }

    /// Serializes the index and writes it via [`write_atomic`].
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut buf = Vec::new();
        buf.extend_from_slice(SNAPSHOT_MAGIC);
        buf.extend_from_slice(&self.applied_segments.to_be_bytes());
        for (key, (kind, payload)) in &self.map {
            Record::new(*kind, *key, payload.clone()).write_to(&mut buf)?;
        }
        write_atomic(path, &buf)
    }

    /// Loads a snapshot. `Ok(None)` means missing **or** damaged —
    /// either way the caller rebuilds from the WAL; only environmental
    /// failures (permissions etc.) surface as errors.
    pub fn load(path: &Path) -> io::Result<Option<SnapshotIndex>> {
        let mut file = match std::fs::File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let mut header = [0u8; 16];
        if file.read_exact(&mut header).is_err() || &header[..8] != SNAPSHOT_MAGIC {
            return Ok(None);
        }
        let applied = u64::from_be_bytes(header[8..].try_into().expect("8 bytes"));
        let mut idx = SnapshotIndex {
            map: BTreeMap::new(),
            applied_segments: applied,
        };
        let mut r = io::BufReader::new(file);
        loop {
            match Record::read_from(&mut r) {
                Ok(Some(rec)) => idx.apply(rec),
                Ok(None) => return Ok(Some(idx)),
                Err(_) => return Ok(None),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("adcomp-store-index-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("index.snap")
    }

    fn sample() -> SnapshotIndex {
        let mut idx = SnapshotIndex::new();
        idx.apply(Record::new(1, 10, vec![1, 2, 3]));
        idx.apply(Record::new(2, 20, vec![]));
        idx.apply(Record::new(1, 10, vec![9])); // latest wins
        idx.set_applied_segments(3);
        idx
    }

    #[test]
    fn latest_wins_and_ordered_iteration() {
        let idx = sample();
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.get(10), Some((1, [9u8].as_slice())));
        let keys: Vec<u64> = idx.iter().map(|(k, _, _)| k).collect();
        assert_eq!(keys, vec![10, 20]);
    }

    #[test]
    fn save_load_roundtrip() {
        let path = tmp_path("roundtrip");
        let idx = sample();
        idx.save(&path).unwrap();
        let back = SnapshotIndex::load(&path).unwrap().unwrap();
        assert_eq!(back, idx);
        assert_eq!(back.applied_segments(), 3);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn missing_snapshot_is_none() {
        let path = tmp_path("missing");
        assert!(SnapshotIndex::load(&path).unwrap().is_none());
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn damaged_snapshot_is_none_not_garbage() {
        let path = tmp_path("damaged");
        let idx = sample();
        idx.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(SnapshotIndex::load(&path).unwrap().is_none());
        // Truncated mid-frame is equally rejected.
        let good = idx_bytes(&idx);
        std::fs::write(&path, &good[..good.len() - 2]).unwrap();
        assert!(SnapshotIndex::load(&path).unwrap().is_none());
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    fn idx_bytes(idx: &SnapshotIndex) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(SNAPSHOT_MAGIC);
        buf.extend_from_slice(&idx.applied_segments.to_be_bytes());
        for (key, kind, payload) in idx.iter() {
            Record::new(kind, key, payload.to_vec())
                .write_to(&mut buf)
                .unwrap();
        }
        buf
    }
}
