//! Crash-safe persistence for audit runs.
//!
//! The audit methodology is *longitudinal*: estimate consistency is
//! characterised by re-issuing the same queries over time, and
//! granularity / skew findings only hold if runs can be compared across
//! days and platform changes. This crate is the durability layer that
//! makes that possible without trusting anything beyond POSIX file
//! semantics:
//!
//! * [`frame`] — length-prefixed, CRC-checksummed record frames. Every
//!   byte that reaches disk is self-validating; a torn write is
//!   detectable, never silently read back.
//! * [`wal`] — an append-only write-ahead log over rotating segment
//!   files. Rotation is atomic (a fsync'd temp file renamed into
//!   place), so only the *last* segment can ever hold a torn tail, and
//!   [`Wal::open`] truncates that tail instead of failing the run.
//! * [`index`] — a persisted snapshot of the latest record per key, so
//!   reopening a long run does not replay the whole log.
//! * [`run`] — [`RunStore`], the public face: a directory holding one
//!   recorded run (WAL + snapshot), shareable across threads, with
//!   last-writer-wins key semantics.
//! * [`atomic`] — [`write_atomic`], the fsync'd temp-file + rename
//!   primitive everything else (and `adcomp-core`'s probe checkpoints)
//!   builds on.
//!
//! The store is deliberately **byte-generic**: records are
//! `(kind, key, payload)` where the key is a caller-computed content
//! hash (in the audit pipeline: a stable hash of the normalized
//! `TargetingSpec`) and the payload is opaque. Serialization of domain
//! types stays with the domain crates; crash-safety stays here.
//!
//! Appends, fsyncs, rotations and truncated tails are counted in the
//! global `adcomp-obs` registry under `adcomp_store_*`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomic;
pub mod frame;
pub mod index;
pub mod run;
pub mod wal;

pub use atomic::write_atomic;
pub use frame::{crc32, Record};
pub use index::SnapshotIndex;
pub use run::RunStore;
pub use wal::{SyncPolicy, Wal, WalOptions, WalStats};
