//! [`RunStore`]: one recorded audit run, durable and shareable.
//!
//! A run store is a directory holding a WAL plus an optional snapshot
//! (`index.snap`). Opening it recovers the keyed latest-wins view —
//! loading the snapshot first and replaying only the sealed segments it
//! has not folded in, then the active segment. All mutation goes
//! through an internal mutex, so a store can sit behind an `Arc` and be
//! shared by the recording source, the checkpointing drivers, and the
//! drift reporter at once.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::frame::Record;
use crate::index::SnapshotIndex;
use crate::wal::{Wal, WalOptions, WalStats};

const SNAPSHOT_FILE: &str = "index.snap";

/// A durable, keyed record store for one audit run.
pub struct RunStore {
    dir: PathBuf,
    inner: Mutex<Inner>,
}

struct Inner {
    wal: Wal,
    index: SnapshotIndex,
}

impl RunStore {
    /// Opens (creating if needed) the store in `dir` with default WAL
    /// options.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<RunStore> {
        RunStore::open_with(dir, WalOptions::default())
    }

    /// Opens the store with explicit WAL options, recovering state from
    /// snapshot + log.
    pub fn open_with(dir: impl AsRef<Path>, opts: WalOptions) -> io::Result<RunStore> {
        let dir = dir.as_ref().to_path_buf();
        let snap_path = dir.join(SNAPSHOT_FILE);
        let mut index = match SnapshotIndex::load(&snap_path)? {
            Some(idx) => idx,
            None => SnapshotIndex::new(),
        };
        let skip = index.applied_segments();
        let wal = Wal::recover(&dir, opts, skip, |rec| index.apply(rec))?;
        Ok(RunStore {
            dir,
            inner: Mutex::new(Inner { wal, index }),
        })
    }

    /// Appends a record to the log and folds it into the keyed view.
    pub fn append(&self, kind: u8, key: u64, payload: &[u8]) -> io::Result<()> {
        let record = Record::new(kind, key, payload.to_vec());
        let mut inner = self.lock();
        inner.wal.append(&record)?;
        inner.index.apply(record);
        Ok(())
    }

    /// The latest `(kind, payload)` for `key`, if recorded.
    pub fn get(&self, key: u64) -> Option<(u8, Vec<u8>)> {
        let inner = self.lock();
        inner.index.get(key).map(|(k, p)| (k, p.to_vec()))
    }

    /// Whether `key` has been recorded.
    pub fn contains(&self, key: u64) -> bool {
        self.lock().index.contains(key)
    }

    /// Number of distinct keys recorded.
    pub fn len(&self) -> usize {
        self.lock().index.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.lock().index.is_empty()
    }

    /// A point-in-time clone of the keyed view, for offline iteration
    /// (replay sources, drift diffs).
    pub fn snapshot(&self) -> SnapshotIndex {
        self.lock().index.clone()
    }

    /// Visits every `(key, kind, payload)` in ascending key order.
    pub fn for_each(&self, mut f: impl FnMut(u64, u8, &[u8])) {
        let inner = self.lock();
        for (key, kind, payload) in inner.index.iter() {
            f(key, kind, payload);
        }
    }

    /// Visits every record of `kind` in ascending key order.
    pub fn for_each_kind(&self, kind: u8, mut f: impl FnMut(u64, &[u8])) {
        let inner = self.lock();
        for (key, k, payload) in inner.index.iter() {
            if k == kind {
                f(key, payload);
            }
        }
    }

    /// Number of recorded keys holding a record of `kind`.
    pub fn count_kind(&self, kind: u8) -> usize {
        let inner = self.lock();
        inner.index.iter().filter(|(_, k, _)| *k == kind).count()
    }

    /// Forces appended records to stable storage.
    pub fn sync(&self) -> io::Result<()> {
        self.lock().wal.sync()
    }

    /// Persists the keyed view so the next open can skip every sealed
    /// segment written so far.
    pub fn save_snapshot(&self) -> io::Result<()> {
        let mut inner = self.lock();
        let sealed = inner.wal.sealed_segments();
        inner.index.set_applied_segments(sealed);
        inner.index.save(&self.dir.join(SNAPSHOT_FILE))
    }

    /// WAL counters since open.
    pub fn stats(&self) -> WalStats {
        self.lock().wal.stats()
    }

    /// The directory this run lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::SyncPolicy;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("adcomp-store-run-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_opts() -> WalOptions {
        WalOptions {
            segment_bytes: 96,
            sync: SyncPolicy::Never,
        }
    }

    #[test]
    fn append_reopen_roundtrip_latest_wins() {
        let dir = tmp_dir("roundtrip");
        {
            let store = RunStore::open_with(&dir, small_opts()).unwrap();
            for i in 0..25u64 {
                store.append(1, i % 5, &[i as u8]).unwrap();
            }
        }
        let store = RunStore::open_with(&dir, small_opts()).unwrap();
        assert_eq!(store.len(), 5);
        for k in 0..5u64 {
            // Latest write for key k was i = 20 + k.
            assert_eq!(store.get(k), Some((1, vec![20 + k as u8])));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_skips_sealed_segments_on_reopen() {
        let dir = tmp_dir("snapshot");
        {
            let store = RunStore::open_with(&dir, small_opts()).unwrap();
            for i in 0..40u64 {
                store.append(1, i, &[i as u8; 8]).unwrap();
            }
            store.save_snapshot().unwrap();
            // More appends after the snapshot land only in the log.
            for i in 40..50u64 {
                store.append(1, i, &[i as u8; 8]).unwrap();
            }
        }
        let store = RunStore::open_with(&dir, small_opts()).unwrap();
        assert_eq!(store.len(), 50);
        assert_eq!(store.get(45), Some((1, vec![45u8; 8])));
        // Recovery replayed strictly fewer records than exist: the
        // snapshot covered the sealed prefix.
        assert!(
            (store.stats().recovered as usize) < 50,
            "{:?}",
            store.stats()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn damaged_snapshot_falls_back_to_full_replay() {
        let dir = tmp_dir("bad-snap");
        {
            let store = RunStore::open_with(&dir, small_opts()).unwrap();
            for i in 0..30u64 {
                store.append(2, i, &[3; 4]).unwrap();
            }
            store.save_snapshot().unwrap();
        }
        let snap = dir.join(super::SNAPSHOT_FILE);
        std::fs::write(&snap, b"adcsnap1 but then nonsense").unwrap();
        let store = RunStore::open_with(&dir, small_opts()).unwrap();
        assert_eq!(store.len(), 30, "full replay reconstructs everything");
        assert_eq!(store.stats().recovered, 30);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shared_across_threads() {
        let dir = tmp_dir("threads");
        let store = std::sync::Arc::new(RunStore::open_with(&dir, small_opts()).unwrap());
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let store = store.clone();
                std::thread::spawn(move || {
                    for i in 0..20u64 {
                        store.append(1, t * 100 + i, &[t as u8]).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 80);
        std::fs::remove_dir_all(&dir).ok();
    }
}
