//! Append-only write-ahead log over rotating segment files.
//!
//! A log is a directory of segment files. The *active* segment
//! (`wal-NNNNNN.active`) is the only file ever appended to; when it
//! reaches [`WalOptions::segment_bytes`] it is fsync'd and renamed to
//! `wal-NNNNNN.seg` (a *sealed* segment) in one atomic step, and a new
//! active segment is started. Consequently:
//!
//! * sealed segments are immutable and were durable before the rename —
//!   a corrupt frame inside one is genuine media corruption and
//!   [`Wal::open`] refuses to silently drop it;
//! * only the active segment can hold a torn tail from a crash, and
//!   recovery truncates that tail back to the last self-validating
//!   frame instead of failing the run.
//!
//! Appends, fsyncs, rotations and truncated tail bytes are mirrored to
//! the global `adcomp-obs` registry (`adcomp_store_*`).

use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use adcomp_obs::metrics::{Counter, Registry};

use crate::frame::Record;

/// First bytes of every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"adcwal01";

/// When appended records are pushed to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fdatasync` after every record: at most zero acknowledged
    /// records lost on power failure, slowest.
    EveryRecord,
    /// `fdatasync` once every `n` records (and on rotation / close):
    /// bounded loss window, near-`Never` throughput.
    Batched(u32),
    /// Never sync explicitly; durability rides on segment rotation and
    /// [`Wal::sync`] calls from the caller.
    Never,
}

/// Tuning for a [`Wal`].
#[derive(Clone, Copy, Debug)]
pub struct WalOptions {
    /// Rotate the active segment once it exceeds this many bytes.
    pub segment_bytes: u64,
    /// Durability policy for appends.
    pub sync: SyncPolicy,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            segment_bytes: 8 << 20,
            sync: SyncPolicy::Batched(64),
        }
    }
}

/// Counters for one log's lifetime (since `open`), plus what recovery
/// found on disk.
#[derive(Clone, Copy, Debug, Default)]
pub struct WalStats {
    /// Records appended since open.
    pub appends: u64,
    /// Explicit sync calls issued since open.
    pub fsyncs: u64,
    /// Segment rotations since open.
    pub rotations: u64,
    /// Valid records visited during recovery (skipped sealed segments
    /// excluded).
    pub recovered: u64,
    /// Torn tail bytes truncated from the active segment at open.
    pub truncated_bytes: u64,
}

struct StoreCounters {
    appends: Arc<Counter>,
    fsyncs: Arc<Counter>,
    rotations: Arc<Counter>,
    truncated: Arc<Counter>,
}

impl StoreCounters {
    fn global() -> StoreCounters {
        let reg = Registry::global();
        StoreCounters {
            appends: reg.counter("adcomp_store_appends_total"),
            fsyncs: reg.counter("adcomp_store_fsyncs_total"),
            rotations: reg.counter("adcomp_store_rotations_total"),
            truncated: reg.counter("adcomp_store_truncated_bytes_total"),
        }
    }
}

/// An open write-ahead log rooted at a directory.
pub struct Wal {
    dir: PathBuf,
    opts: WalOptions,
    file: File,
    active_seq: u64,
    active_len: u64,
    pending: u32,
    stats: WalStats,
    counters: StoreCounters,
}

impl Wal {
    /// Opens (creating if needed) the log in `dir`, recovering all
    /// records without visiting them.
    pub fn open(dir: &Path, opts: WalOptions) -> io::Result<Wal> {
        Wal::recover(dir, opts, 0, |_| {})
    }

    /// Opens the log, invoking `on_record` for every recovered record
    /// in append order. The first `skip_sealed` sealed segments are not
    /// read at all — callers restoring from a snapshot pass the
    /// snapshot's applied-segment count here.
    pub fn recover(
        dir: &Path,
        opts: WalOptions,
        skip_sealed: u64,
        mut on_record: impl FnMut(Record),
    ) -> io::Result<Wal> {
        std::fs::create_dir_all(dir)?;
        let (sealed, active) = list_segments(dir)?;
        let counters = StoreCounters::global();
        let mut stats = WalStats::default();

        for (i, (seq, path)) in sealed.iter().enumerate() {
            if (i as u64) < skip_sealed {
                continue;
            }
            read_sealed(path, *seq, &mut |rec| {
                stats.recovered += 1;
                on_record(rec);
            })?;
        }

        let max_sealed = sealed.last().map(|(seq, _)| *seq);
        let (active_seq, file, active_len) = match active {
            Some((seq, path)) => {
                if max_sealed.is_some_and(|m| seq <= m) {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("active segment {seq} not newer than sealed segments"),
                    ));
                }
                let (file, good, truncated) = recover_active(&path, &mut |rec| {
                    stats.recovered += 1;
                    on_record(rec);
                })?;
                stats.truncated_bytes += truncated;
                (seq, file, good)
            }
            None => {
                let seq = max_sealed.map_or(0, |m| m + 1);
                let file = new_segment(&dir.join(segment_name(seq, true)))?;
                (seq, file, SEGMENT_MAGIC.len() as u64)
            }
        };
        counters.truncated.add(stats.truncated_bytes);

        Ok(Wal {
            dir: dir.to_path_buf(),
            opts,
            file,
            active_seq,
            active_len,
            pending: 0,
            stats,
            counters,
        })
    }

    /// Appends one record, rotating and syncing per the options.
    pub fn append(&mut self, record: &Record) -> io::Result<()> {
        let frame_len = record.frame_len() as u64;
        if self.active_len > SEGMENT_MAGIC.len() as u64
            && self.active_len + frame_len > self.opts.segment_bytes
        {
            self.rotate()?;
        }
        let mut buf = Vec::with_capacity(record.frame_len());
        record.write_to(&mut buf)?;
        self.file.write_all(&buf)?;
        self.active_len += frame_len;
        self.stats.appends += 1;
        self.counters.appends.inc();
        match self.opts.sync {
            SyncPolicy::EveryRecord => self.sync()?,
            SyncPolicy::Batched(n) => {
                self.pending += 1;
                if self.pending >= n.max(1) {
                    self.sync()?;
                }
            }
            SyncPolicy::Never => self.pending += 1,
        }
        Ok(())
    }

    /// Forces appended records to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        self.pending = 0;
        self.stats.fsyncs += 1;
        self.counters.fsyncs.inc();
        Ok(())
    }

    /// Seals the active segment (fsync + atomic rename) and starts a
    /// fresh one.
    pub fn rotate(&mut self) -> io::Result<()> {
        self.file.sync_all()?;
        self.stats.fsyncs += 1;
        self.counters.fsyncs.inc();
        let open_path = self.dir.join(segment_name(self.active_seq, true));
        let sealed_path = self.dir.join(segment_name(self.active_seq, false));
        std::fs::rename(&open_path, &sealed_path)?;
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        self.active_seq += 1;
        let next = self.dir.join(segment_name(self.active_seq, true));
        self.file = new_segment(&next)?;
        self.active_len = SEGMENT_MAGIC.len() as u64;
        self.pending = 0;
        self.stats.rotations += 1;
        self.counters.rotations.inc();
        Ok(())
    }

    /// Number of sealed (immutable, durable) segments on disk.
    pub fn sealed_segments(&self) -> u64 {
        self.active_seq
    }

    /// Counters since open.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        if self.pending > 0 {
            let _ = self.file.sync_data();
        }
    }
}

fn segment_name(seq: u64, active: bool) -> String {
    let ext = if active { "active" } else { "seg" };
    format!("wal-{seq:06}.{ext}")
}

fn parse_segment(name: &str) -> Option<(u64, bool)> {
    let rest = name.strip_prefix("wal-")?;
    if let Some(seq) = rest.strip_suffix(".seg") {
        return seq.parse().ok().map(|s| (s, false));
    }
    if let Some(seq) = rest.strip_suffix(".active") {
        return seq.parse().ok().map(|s| (s, true));
    }
    None
}

type Segments = (Vec<(u64, PathBuf)>, Option<(u64, PathBuf)>);

fn list_segments(dir: &Path) -> io::Result<Segments> {
    let mut sealed = Vec::new();
    let mut active: Option<(u64, PathBuf)> = None;
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        match parse_segment(name) {
            Some((seq, false)) => sealed.push((seq, entry.path())),
            Some((seq, true)) => {
                if active.is_some() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "multiple active segments",
                    ));
                }
                active = Some((seq, entry.path()));
            }
            None => {}
        }
    }
    sealed.sort_by_key(|(seq, _)| *seq);
    Ok((sealed, active))
}

fn check_magic(r: &mut impl Read, path: &Path) -> io::Result<bool> {
    let mut magic = [0u8; 8];
    let mut filled = 0;
    while filled < magic.len() {
        match r.read(&mut magic[filled..])? {
            0 => return Ok(false),
            n => filled += n,
        }
    }
    if &magic != SEGMENT_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad segment magic in {}", path.display()),
        ));
    }
    Ok(true)
}

fn read_sealed(path: &Path, seq: u64, on_record: &mut dyn FnMut(Record)) -> io::Result<()> {
    let mut r = BufReader::new(File::open(path)?);
    if !check_magic(&mut r, path)? {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("sealed segment {seq} shorter than its header"),
        ));
    }
    loop {
        match Record::read_from(&mut r) {
            Ok(Some(rec)) => on_record(rec),
            Ok(None) => return Ok(()),
            // A sealed segment was fsync'd before its rename; anything
            // invalid inside it is media corruption, not a torn write,
            // and dropping it silently would forge audit history.
            Err(e) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("sealed segment {seq} corrupt: {e}"),
                ))
            }
        }
    }
}

/// Scans the active segment, truncating any torn tail, and returns the
/// file positioned for appending plus the truncated byte count.
fn recover_active(path: &Path, on_record: &mut dyn FnMut(Record)) -> io::Result<(File, u64, u64)> {
    let mut file = OpenOptions::new().read(true).write(true).open(path)?;
    let disk_len = file.metadata()?.len();
    let mut good;
    {
        let mut r = BufReader::new(&mut file);
        if !check_magic(&mut r, path)? {
            // Torn before the header finished: restart the segment.
            good = 0;
        } else {
            good = SEGMENT_MAGIC.len() as u64;
            loop {
                match Record::read_from(&mut r) {
                    Ok(Some(rec)) => {
                        good += rec.frame_len() as u64;
                        on_record(rec);
                    }
                    Ok(None) => break,
                    Err(_) => break,
                }
            }
        }
    }
    let mut truncated = 0;
    if good < disk_len {
        truncated = disk_len - good;
        file.set_len(good)?;
        file.sync_all()?;
    }
    if good == 0 {
        file.seek(SeekFrom::Start(0))?;
        file.write_all(SEGMENT_MAGIC)?;
        file.sync_all()?;
        good = SEGMENT_MAGIC.len() as u64;
    }
    file.seek(SeekFrom::Start(good))?;
    Ok((file, good, truncated))
}

fn new_segment(path: &Path) -> io::Result<File> {
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(true)
        .open(path)?;
    file.write_all(SEGMENT_MAGIC)?;
    file.sync_all()?;
    Ok(file)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("adcomp-store-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn opts(segment_bytes: u64) -> WalOptions {
        WalOptions {
            segment_bytes,
            sync: SyncPolicy::Never,
        }
    }

    fn collect(dir: &Path) -> Vec<Record> {
        let mut out = Vec::new();
        let wal = Wal::recover(dir, opts(1 << 20), 0, |r| out.push(r)).unwrap();
        drop(wal);
        out
    }

    #[test]
    fn append_and_recover_in_order() {
        let dir = tmp_dir("order");
        {
            let mut wal = Wal::open(&dir, opts(1 << 20)).unwrap();
            for i in 0..50u64 {
                wal.append(&Record::new(1, i, vec![i as u8; 10])).unwrap();
            }
        }
        let recs = collect(&dir);
        assert_eq!(recs.len(), 50);
        assert!(recs.iter().enumerate().all(|(i, r)| r.key == i as u64));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_seals_segments_and_keeps_order() {
        let dir = tmp_dir("rotate");
        {
            // Tiny segments: every few records forces a rotation.
            let mut wal = Wal::open(&dir, opts(64)).unwrap();
            for i in 0..40u64 {
                wal.append(&Record::new(2, i, vec![0xAB; 16])).unwrap();
            }
            assert!(wal.stats().rotations > 3, "{:?}", wal.stats());
            assert_eq!(wal.sealed_segments(), wal.stats().rotations);
        }
        let (sealed, active) = list_segments(&dir).unwrap();
        assert!(sealed.len() > 3);
        assert!(active.is_some());
        let recs = collect(&dir);
        assert_eq!(recs.len(), 40);
        assert!(recs.iter().enumerate().all(|(i, r)| r.key == i as u64));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        let dir = tmp_dir("torn");
        {
            let mut wal = Wal::open(&dir, opts(1 << 20)).unwrap();
            for i in 0..10u64 {
                wal.append(&Record::new(1, i, vec![1; 8])).unwrap();
            }
        }
        // Simulate a crash mid-append: garbage half-frame at the tail.
        let active = list_segments(&dir).unwrap().1.unwrap().1;
        let mut f = OpenOptions::new().append(true).open(&active).unwrap();
        f.write_all(&[0xFF, 0x00, 0x13]).unwrap();
        drop(f);

        let mut seen = Vec::new();
        let mut wal = Wal::recover(&dir, opts(1 << 20), 0, |r| seen.push(r.key)).unwrap();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert_eq!(wal.stats().truncated_bytes, 3);
        wal.append(&Record::new(1, 10, vec![2; 8])).unwrap();
        drop(wal);
        assert_eq!(collect(&dir).len(), 11);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_header_restarts_segment() {
        let dir = tmp_dir("torn-header");
        drop(Wal::open(&dir, opts(1 << 20)).unwrap());
        let active = list_segments(&dir).unwrap().1.unwrap().1;
        // Crash after only 3 header bytes hit disk.
        let f = OpenOptions::new().write(true).open(&active).unwrap();
        f.set_len(3).unwrap();
        drop(f);
        let mut wal = Wal::open(&dir, opts(1 << 20)).unwrap();
        wal.append(&Record::new(1, 1, vec![])).unwrap();
        drop(wal);
        assert_eq!(collect(&dir).len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sealed_corruption_is_an_error_not_silent_loss() {
        let dir = tmp_dir("sealed-corrupt");
        {
            let mut wal = Wal::open(&dir, opts(64)).unwrap();
            for i in 0..20u64 {
                wal.append(&Record::new(1, i, vec![7; 16])).unwrap();
            }
            assert!(wal.sealed_segments() > 0);
        }
        let sealed = list_segments(&dir).unwrap().0;
        let victim = &sealed[0].1;
        let bytes = std::fs::read(victim).unwrap();
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xFF;
        std::fs::write(victim, &bad).unwrap();
        let err = match Wal::open(&dir, opts(64)) {
            Err(e) => e,
            Ok(_) => panic!("corrupt sealed segment must not open"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn skip_sealed_skips_exactly_that_prefix() {
        let dir = tmp_dir("skip");
        {
            let mut wal = Wal::open(&dir, opts(64)).unwrap();
            for i in 0..30u64 {
                wal.append(&Record::new(1, i, vec![9; 16])).unwrap();
            }
        }
        let all = collect(&dir);
        let (sealed, _) = list_segments(&dir).unwrap();
        assert!(sealed.len() >= 2);
        let mut tail = Vec::new();
        let wal = Wal::recover(&dir, opts(64), 1, |r| tail.push(r)).unwrap();
        assert_eq!(wal.stats().recovered as usize, tail.len());
        assert!(tail.len() < all.len());
        // The visited records are exactly a suffix of the full log.
        assert_eq!(&all[all.len() - tail.len()..], tail.as_slice());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sync_policy_every_record_counts_fsyncs() {
        let dir = tmp_dir("sync");
        let mut wal = Wal::open(
            &dir,
            WalOptions {
                segment_bytes: 1 << 20,
                sync: SyncPolicy::EveryRecord,
            },
        )
        .unwrap();
        for i in 0..5u64 {
            wal.append(&Record::new(1, i, vec![])).unwrap();
        }
        assert_eq!(wal.stats().fsyncs, 5);
        drop(wal);
        std::fs::remove_dir_all(&dir).ok();
    }
}
