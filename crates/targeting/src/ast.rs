//! The targeting AST and its algebra.

use serde::{Deserialize, Serialize};

use adcomp_population::{AgeBucket, Gender};

use crate::builder::SpecBuilder;

/// Index of an attribute within a platform's catalog.
///
/// Ids are platform-local: `AttributeId(3)` on Facebook and on LinkedIn
/// name unrelated attributes. The audit never mixes ids across platforms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttributeId(pub u32);

/// Targetable locations. The paper measures US-based users only; we keep
/// the dimension explicit so specs read like the real interfaces.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Location {
    /// The United States (the only supported location).
    #[default]
    UnitedStates,
}

/// A logical-OR group of attributes ("users matching ANY of …").
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OrGroup {
    /// The alternatives; a user matches the group by holding any one.
    pub attributes: Vec<AttributeId>,
}

impl OrGroup {
    /// A group with a single attribute (the common case in the paper's
    /// compositions, which AND individual attributes).
    pub fn single(attribute: AttributeId) -> Self {
        OrGroup {
            attributes: vec![attribute],
        }
    }

    /// Sorts and dedupes the alternatives.
    pub fn normalize(&mut self) {
        self.attributes.sort_unstable();
        self.attributes.dedup();
    }
}

impl FromIterator<AttributeId> for OrGroup {
    fn from_iter<I: IntoIterator<Item = AttributeId>>(iter: I) -> Self {
        OrGroup {
            attributes: iter.into_iter().collect(),
        }
    }
}

/// Demographic constraints of a spec.
///
/// `None` means "no constraint" (the platform default of all genders /
/// all ages 18+). The restricted interface *forces* `None` for both.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DemographicSpec {
    /// Genders to include, or `None` for all.
    pub genders: Option<Vec<Gender>>,
    /// Age buckets to include, or `None` for all.
    pub ages: Option<Vec<AgeBucket>>,
    /// Targeted location.
    pub location: Location,
}

impl DemographicSpec {
    /// True when no gender or age constraint is present.
    pub fn is_unconstrained(&self) -> bool {
        self.genders.is_none() && self.ages.is_none()
    }

    /// Sorts and dedupes the constraint lists; collapses a complete list
    /// (all genders / all ages) to `None`.
    pub fn normalize(&mut self) {
        if let Some(genders) = &mut self.genders {
            genders.sort_unstable();
            genders.dedup();
            if genders.len() == Gender::ALL.len() {
                self.genders = None;
            }
        }
        if let Some(ages) = &mut self.ages {
            ages.sort_unstable();
            ages.dedup();
            if ages.len() == AgeBucket::ALL.len() {
                self.ages = None;
            }
        }
    }

    /// Intersection of two demographic constraints.
    ///
    /// Returns `None` when the constraints are contradictory (e.g. male ∧
    /// female) — the resulting audience would be empty by construction.
    pub fn intersect(&self, other: &DemographicSpec) -> Option<DemographicSpec> {
        let genders = intersect_option_lists(&self.genders, &other.genders)?;
        let ages = intersect_option_lists(&self.ages, &other.ages)?;
        Some(DemographicSpec {
            genders,
            ages,
            location: self.location,
        })
    }
}

/// Intersects two optional allow-lists; inner `None` = everything.
/// Outer `None` signals an empty (contradictory) intersection.
fn intersect_option_lists<T: Clone + PartialEq>(
    a: &Option<Vec<T>>,
    b: &Option<Vec<T>>,
) -> Option<Option<Vec<T>>> {
    match (a, b) {
        (None, None) => Some(None),
        (Some(x), None) => Some(Some(x.clone())),
        (None, Some(y)) => Some(Some(y.clone())),
        (Some(x), Some(y)) => {
            let both: Vec<T> = x.iter().filter(|v| y.contains(v)).cloned().collect();
            if both.is_empty() {
                None
            } else {
                Some(Some(both))
            }
        }
    }
}

/// A complete targeting specification: demographics ∧ (AND of OR-groups)
/// ∧ ¬(OR of exclusions).
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TargetingSpec {
    /// Demographic constraints.
    pub demographics: DemographicSpec,
    /// Inclusion tree: logical AND across groups.
    pub include: Vec<OrGroup>,
    /// Excluded attributes (users holding any are removed).
    pub exclude: Vec<AttributeId>,
}

impl TargetingSpec {
    /// An unconstrained spec: all US users.
    pub fn everyone() -> Self {
        TargetingSpec::default()
    }

    /// Starts a fluent [`SpecBuilder`].
    pub fn builder() -> SpecBuilder {
        SpecBuilder::new()
    }

    /// Convenience: the AND of the given individual attributes (the
    /// paper's "k-way composition").
    pub fn and_of(attributes: impl IntoIterator<Item = AttributeId>) -> Self {
        TargetingSpec {
            include: attributes.into_iter().map(OrGroup::single).collect(),
            ..TargetingSpec::default()
        }
    }

    /// All attributes mentioned anywhere in the spec.
    pub fn referenced_attributes(&self) -> impl Iterator<Item = AttributeId> + '_ {
        self.include
            .iter()
            .flat_map(|g| g.attributes.iter().copied())
            .chain(self.exclude.iter().copied())
    }

    /// Canonicalises the spec: sorted deduped groups and exclusions,
    /// duplicate groups dropped, demographic lists collapsed. Two specs
    /// that are equal audiences *by construction* compare equal afterwards.
    pub fn normalize(&mut self) {
        self.demographics.normalize();
        for g in &mut self.include {
            g.normalize();
        }
        self.include.retain(|g| !g.attributes.is_empty());
        self.include.sort();
        self.include.dedup();
        self.exclude.sort_unstable();
        self.exclude.dedup();
    }

    /// Returns the normalised copy.
    pub fn normalized(&self) -> TargetingSpec {
        let mut s = self.clone();
        s.normalize();
        s
    }

    /// The AND of two specs — the closure property that makes
    /// inclusion–exclusion terms expressible on platforms that only
    /// support AND-of-ORs (paper §4.3, footnote 13).
    ///
    /// Returns `None` when the demographic constraints are contradictory.
    pub fn intersect(&self, other: &TargetingSpec) -> Option<TargetingSpec> {
        let demographics = self.demographics.intersect(&other.demographics)?;
        let mut spec = TargetingSpec {
            demographics,
            include: self.include.iter().chain(&other.include).cloned().collect(),
            exclude: self.exclude.iter().chain(&other.exclude).copied().collect(),
        };
        spec.normalize();
        Some(spec)
    }

    /// Number of AND-ed groups (the "way-ness" of a pure composition).
    pub fn arity(&self) -> usize {
        self.include.len()
    }
}

impl std::fmt::Display for TargetingSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        if let Some(genders) = &self.demographics.genders {
            let names: Vec<String> = genders.iter().map(|g| g.to_string()).collect();
            write!(f, "gender∈{{{}}}", names.join(","))?;
            first = false;
        }
        if let Some(ages) = &self.demographics.ages {
            if !first {
                write!(f, " ∧ ")?;
            }
            let names: Vec<String> = ages.iter().map(|a| a.to_string()).collect();
            write!(f, "age∈{{{}}}", names.join(","))?;
            first = false;
        }
        for group in &self.include {
            if !first {
                write!(f, " ∧ ")?;
            }
            first = false;
            if group.attributes.len() == 1 {
                write!(f, "#{}", group.attributes[0].0)?;
            } else {
                let ids: Vec<String> = group
                    .attributes
                    .iter()
                    .map(|a| format!("#{}", a.0))
                    .collect();
                write!(f, "({})", ids.join(" ∨ "))?;
            }
        }
        if !self.exclude.is_empty() {
            if !first {
                write!(f, " ∧ ")?;
            }
            first = false;
            let ids: Vec<String> = self.exclude.iter().map(|a| format!("#{}", a.0)).collect();
            write!(f, "¬({})", ids.join(" ∨ "))?;
        }
        if first {
            write!(f, "everyone")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_of_builds_singleton_groups() {
        let s = TargetingSpec::and_of([AttributeId(3), AttributeId(1)]);
        assert_eq!(s.arity(), 2);
        assert!(s.include.iter().all(|g| g.attributes.len() == 1));
    }

    #[test]
    fn normalize_canonicalises() {
        let mut a = TargetingSpec {
            demographics: DemographicSpec {
                genders: Some(vec![Gender::Female, Gender::Male]),
                ages: Some(vec![AgeBucket::A25_34, AgeBucket::A25_34]),
                location: Location::UnitedStates,
            },
            include: vec![
                OrGroup {
                    attributes: vec![AttributeId(2), AttributeId(1), AttributeId(2)],
                },
                OrGroup { attributes: vec![] },
                OrGroup {
                    attributes: vec![AttributeId(1), AttributeId(2)],
                },
            ],
            exclude: vec![AttributeId(9), AttributeId(9), AttributeId(4)],
        };
        a.normalize();
        // Full gender list collapses to None; empty/duplicate groups drop.
        assert_eq!(a.demographics.genders, None);
        assert_eq!(a.demographics.ages, Some(vec![AgeBucket::A25_34]));
        assert_eq!(a.include.len(), 1);
        assert_eq!(
            a.include[0].attributes,
            vec![AttributeId(1), AttributeId(2)]
        );
        assert_eq!(a.exclude, vec![AttributeId(4), AttributeId(9)]);
    }

    #[test]
    fn intersect_concatenates_groups() {
        let a = TargetingSpec::and_of([AttributeId(1)]);
        let b = TargetingSpec::and_of([AttributeId(2)]);
        let ab = a.intersect(&b).unwrap();
        assert_eq!(ab.arity(), 2);
        assert_eq!(
            ab,
            TargetingSpec::and_of([AttributeId(1), AttributeId(2)]).normalized()
        );
    }

    #[test]
    fn intersect_detects_contradictory_demographics() {
        let male = TargetingSpec::builder().genders([Gender::Male]).build();
        let female = TargetingSpec::builder().genders([Gender::Female]).build();
        assert!(male.intersect(&female).is_none());
        let male2 = male.clone();
        let both = male.intersect(&male2).unwrap();
        assert_eq!(both.demographics.genders, Some(vec![Gender::Male]));
    }

    #[test]
    fn intersect_merges_age_constraints() {
        let young = TargetingSpec::builder()
            .ages([AgeBucket::A18_24, AgeBucket::A25_34])
            .build();
        let mid = TargetingSpec::builder()
            .ages([AgeBucket::A25_34, AgeBucket::A35_54])
            .build();
        let m = young.intersect(&mid).unwrap();
        assert_eq!(m.demographics.ages, Some(vec![AgeBucket::A25_34]));
    }

    #[test]
    fn display_is_readable() {
        let s = TargetingSpec {
            demographics: DemographicSpec {
                genders: Some(vec![Gender::Male]),
                ages: None,
                location: Location::UnitedStates,
            },
            include: vec![
                OrGroup::single(AttributeId(7)),
                OrGroup {
                    attributes: vec![AttributeId(1), AttributeId(2)],
                },
            ],
            exclude: vec![AttributeId(9)],
        };
        assert_eq!(s.to_string(), "gender∈{male} ∧ #7 ∧ (#1 ∨ #2) ∧ ¬(#9)");
        assert_eq!(TargetingSpec::everyone().to_string(), "everyone");
    }

    #[test]
    fn referenced_attributes_covers_include_and_exclude() {
        let s = TargetingSpec {
            include: vec![OrGroup {
                attributes: vec![AttributeId(1), AttributeId(2)],
            }],
            exclude: vec![AttributeId(3)],
            ..Default::default()
        };
        let ids: Vec<u32> = s.referenced_attributes().map(|a| a.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }
}
