//! Fluent construction of [`TargetingSpec`]s.

use adcomp_population::{AgeBucket, Gender};

use crate::ast::{AttributeId, Location, OrGroup, TargetingSpec};

/// Fluent builder mirroring how an advertiser fills the targeting UI:
/// demographics first, then include groups, then exclusions.
///
/// ```
/// use adcomp_population::Gender;
/// use adcomp_targeting::{AttributeId, TargetingSpec};
///
/// let spec = TargetingSpec::builder()
///     .genders([Gender::Female])
///     .any_of([AttributeId(1), AttributeId(2)]) // group: 1 OR 2
///     .attribute(AttributeId(9))                // AND attribute 9
///     .exclude([AttributeId(4)])
///     .build();
/// assert_eq!(spec.arity(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SpecBuilder {
    spec: TargetingSpec,
}

impl SpecBuilder {
    /// An empty builder (targets everyone).
    pub fn new() -> Self {
        SpecBuilder::default()
    }

    /// Restricts to the given genders.
    pub fn genders(mut self, genders: impl IntoIterator<Item = Gender>) -> Self {
        self.spec.demographics.genders = Some(genders.into_iter().collect());
        self
    }

    /// Restricts to a single gender.
    pub fn gender(self, gender: Gender) -> Self {
        self.genders([gender])
    }

    /// Restricts to the given age buckets.
    pub fn ages(mut self, ages: impl IntoIterator<Item = AgeBucket>) -> Self {
        self.spec.demographics.ages = Some(ages.into_iter().collect());
        self
    }

    /// Restricts to a single age bucket.
    pub fn age(self, age: AgeBucket) -> Self {
        self.ages([age])
    }

    /// Sets the location (currently only the US exists).
    pub fn location(mut self, location: Location) -> Self {
        self.spec.demographics.location = location;
        self
    }

    /// Adds an OR-group: users matching ANY of `attributes`.
    pub fn any_of(mut self, attributes: impl IntoIterator<Item = AttributeId>) -> Self {
        self.spec.include.push(attributes.into_iter().collect());
        self
    }

    /// Adds one singleton group per attribute: users matching ALL of them.
    pub fn all_of(mut self, attributes: impl IntoIterator<Item = AttributeId>) -> Self {
        self.spec
            .include
            .extend(attributes.into_iter().map(OrGroup::single));
        self
    }

    /// Adds a single required attribute (singleton AND-group).
    pub fn attribute(self, attribute: AttributeId) -> Self {
        self.all_of([attribute])
    }

    /// Excludes users holding any of `attributes`.
    pub fn exclude(mut self, attributes: impl IntoIterator<Item = AttributeId>) -> Self {
        self.spec.exclude.extend(attributes);
        self
    }

    /// Finishes, returning the (non-normalised) spec.
    pub fn build(self) -> TargetingSpec {
        self.spec
    }

    /// Finishes and normalises.
    pub fn build_normalized(self) -> TargetingSpec {
        self.spec.normalized()
    }
}

impl From<SpecBuilder> for TargetingSpec {
    fn from(b: SpecBuilder) -> TargetingSpec {
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::DemographicSpec;

    #[test]
    fn builder_mirrors_manual_construction() {
        let via_builder = TargetingSpec::builder()
            .gender(Gender::Male)
            .age(AgeBucket::A55Plus)
            .any_of([AttributeId(5), AttributeId(6)])
            .attribute(AttributeId(7))
            .exclude([AttributeId(8)])
            .build();
        let manual = TargetingSpec {
            demographics: DemographicSpec {
                genders: Some(vec![Gender::Male]),
                ages: Some(vec![AgeBucket::A55Plus]),
                location: Location::UnitedStates,
            },
            include: vec![
                OrGroup {
                    attributes: vec![AttributeId(5), AttributeId(6)],
                },
                OrGroup::single(AttributeId(7)),
            ],
            exclude: vec![AttributeId(8)],
        };
        assert_eq!(via_builder, manual);
    }

    #[test]
    fn all_of_adds_singletons() {
        let s = TargetingSpec::builder()
            .all_of([AttributeId(1), AttributeId(2)])
            .build();
        assert_eq!(s.arity(), 2);
        assert_eq!(s, TargetingSpec::and_of([AttributeId(1), AttributeId(2)]));
    }

    #[test]
    fn build_normalized_dedupes() {
        let s = TargetingSpec::builder()
            .any_of([AttributeId(2), AttributeId(1), AttributeId(2)])
            .build_normalized();
        assert_eq!(
            s.include[0].attributes,
            vec![AttributeId(1), AttributeId(2)]
        );
    }

    #[test]
    fn empty_builder_targets_everyone() {
        assert_eq!(SpecBuilder::new().build(), TargetingSpec::everyone());
    }

    #[test]
    fn from_impl_matches_build() {
        let b = TargetingSpec::builder().attribute(AttributeId(1));
        let s1: TargetingSpec = b.clone().into();
        assert_eq!(s1, b.build());
    }
}
