//! Evaluation of targeting specs against a population.

use adcomp_bitset::Bitset;
use adcomp_population::{AgeBucket, Gender, Universe};

use crate::ast::{AttributeId, TargetingSpec};

/// Source of attribute audiences: implemented by the platform layer, which
/// owns the materialised (and cached) per-attribute bitsets for its
/// catalog.
pub trait AttributeResolver {
    /// The audience of a catalog attribute, or `None` for an unknown id.
    fn attribute_audience(&self, id: AttributeId) -> Option<&Bitset>;

    /// The universe the audiences were materialised against.
    fn universe(&self) -> &Universe;

    /// The audience a gender constraint selects. Defaults to the
    /// universe's ground-truth audience; resolvers carrying an inferred
    /// demographic view (`adcomp-population::InferredView`) override
    /// this so demographic constraints resolve against the *observed*
    /// labels instead of the oracle's.
    fn gender_audience(&self, gender: Gender) -> &Bitset {
        self.universe().gender_audience(gender)
    }

    /// The audience an age constraint selects (see
    /// [`gender_audience`](AttributeResolver::gender_audience)).
    fn age_audience(&self, age: AgeBucket) -> &Bitset {
        self.universe().age_audience(age)
    }
}

/// Evaluation failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// The spec referenced an attribute the resolver does not know.
    UnknownAttribute(AttributeId),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::UnknownAttribute(id) => write!(f, "unknown attribute #{}", id.0),
        }
    }
}

impl std::error::Error for EvalError {}

/// Computes the exact audience of `spec`.
///
/// Semantics (matching the platforms' documented behaviour):
///
/// ```text
/// audience = demographics ∧ (∧ over groups (∨ over attributes))
///                         ∧ ¬(∨ over exclusions)
/// ```
///
/// Group evaluation is ordered smallest-first so intersections shrink as
/// early as possible; exclusions are applied last.
pub fn evaluate<R: AttributeResolver + ?Sized>(
    resolver: &R,
    spec: &TargetingSpec,
) -> Result<Bitset, EvalError> {
    let universe = resolver.universe();

    // OR within each group.
    let mut group_sets: Vec<Bitset> = Vec::with_capacity(spec.include.len());
    for group in &spec.include {
        let mut acc: Option<Bitset> = None;
        for &id in &group.attributes {
            let audience = resolver
                .attribute_audience(id)
                .ok_or(EvalError::UnknownAttribute(id))?;
            acc = Some(match acc {
                None => audience.clone(),
                Some(cur) => cur.or(audience),
            });
        }
        // An empty group matches nobody; normalised specs never contain
        // one, but evaluation must still be total.
        group_sets.push(acc.unwrap_or_default());
    }
    // AND across groups, smallest first.
    group_sets.sort_by_key(|s| s.len());
    let mut audience: Option<Bitset> = None;
    for set in group_sets {
        audience = Some(match audience {
            None => set,
            Some(cur) => cur.and(&set),
        });
        if audience.as_ref().is_some_and(|a| a.is_empty()) {
            break;
        }
    }

    // Demographics.
    let mut audience = match audience {
        Some(a) => a,
        None => universe.everyone().clone(),
    };
    if let Some(genders) = &spec.demographics.genders {
        let mut demo = Bitset::new();
        for g in genders {
            demo = demo.or(resolver.gender_audience(*g));
        }
        audience = audience.and(&demo);
    }
    if let Some(ages) = &spec.demographics.ages {
        let mut demo = Bitset::new();
        for a in ages {
            demo = demo.or(resolver.age_audience(*a));
        }
        audience = audience.and(&demo);
    }

    // Exclusions.
    for &id in &spec.exclude {
        let excluded = resolver
            .attribute_audience(id)
            .ok_or(EvalError::UnknownAttribute(id))?;
        audience = audience.and_not(excluded);
        if audience.is_empty() {
            break;
        }
    }

    Ok(audience)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcomp_population::{
        AgeBucket, AttributeModel, DemographicProfile, Gender, UniverseConfig,
    };

    /// Test resolver over a handful of materialised attributes.
    struct TestResolver {
        universe: Universe,
        audiences: Vec<Bitset>,
    }

    impl AttributeResolver for TestResolver {
        fn attribute_audience(&self, id: AttributeId) -> Option<&Bitset> {
            self.audiences.get(id.0 as usize)
        }
        fn universe(&self) -> &Universe {
            &self.universe
        }
    }

    fn resolver() -> TestResolver {
        let universe = Universe::generate(&UniverseConfig {
            n_users: 30_000,
            seed: 42,
            scale: 1.0,
            profile: DemographicProfile::balanced(),
        });
        let models = [
            AttributeModel::new(100).popularity(0.3),
            AttributeModel::new(101).popularity(0.2).gender_bias(1.0),
            AttributeModel::new(102)
                .popularity(0.25)
                .age_biases([1.0, 0.3, -0.3, -1.0]),
            AttributeModel::new(103).popularity(0.15).loading(3, 1.2),
        ];
        let audiences = models.iter().map(|m| universe.materialize(m)).collect();
        TestResolver {
            universe,
            audiences,
        }
    }

    /// Naive per-user reference evaluation.
    fn reference(r: &TestResolver, spec: &TargetingSpec) -> Bitset {
        let u = &r.universe;
        let mut out = Bitset::new();
        'user: for user in 0..u.n_users() {
            let d = u.demographics(user);
            if let Some(gs) = &spec.demographics.genders {
                if !gs.contains(&d.gender) {
                    continue;
                }
            }
            if let Some(ags) = &spec.demographics.ages {
                if !ags.contains(&d.age) {
                    continue;
                }
            }
            for group in &spec.include {
                if !group
                    .attributes
                    .iter()
                    .any(|a| r.audiences[a.0 as usize].contains(user))
                {
                    continue 'user;
                }
            }
            for a in &spec.exclude {
                if r.audiences[a.0 as usize].contains(user) {
                    continue 'user;
                }
            }
            out.insert(user);
        }
        out
    }

    #[test]
    fn everyone_spec_returns_universe() {
        let r = resolver();
        let a = evaluate(&r, &TargetingSpec::everyone()).unwrap();
        assert_eq!(a, r.universe.everyone().clone());
    }

    #[test]
    fn matches_reference_on_varied_specs() {
        let r = resolver();
        let specs = [
            TargetingSpec::and_of([AttributeId(0)]),
            TargetingSpec::and_of([AttributeId(0), AttributeId(1)]),
            TargetingSpec::builder()
                .any_of([AttributeId(0), AttributeId(2)])
                .attribute(AttributeId(3))
                .build(),
            TargetingSpec::builder()
                .gender(Gender::Female)
                .attribute(AttributeId(1))
                .build(),
            TargetingSpec::builder()
                .ages([AgeBucket::A18_24, AgeBucket::A25_34])
                .any_of([AttributeId(1), AttributeId(3)])
                .exclude([AttributeId(2)])
                .build(),
            TargetingSpec::builder().exclude([AttributeId(0)]).build(),
        ];
        for spec in &specs {
            assert_eq!(
                evaluate(&r, spec).unwrap(),
                reference(&r, spec),
                "spec: {spec}"
            );
        }
    }

    #[test]
    fn unknown_attribute_is_an_error() {
        let r = resolver();
        let spec = TargetingSpec::and_of([AttributeId(999)]);
        assert_eq!(
            evaluate(&r, &spec),
            Err(EvalError::UnknownAttribute(AttributeId(999)))
        );
        let spec = TargetingSpec::builder().exclude([AttributeId(999)]).build();
        assert_eq!(
            evaluate(&r, &spec),
            Err(EvalError::UnknownAttribute(AttributeId(999)))
        );
    }

    #[test]
    fn empty_group_matches_nobody() {
        let r = resolver();
        let spec = TargetingSpec {
            include: vec![crate::ast::OrGroup { attributes: vec![] }],
            ..Default::default()
        };
        assert!(evaluate(&r, &spec).unwrap().is_empty());
    }

    #[test]
    fn intersect_audience_equals_audience_intersection() {
        // The algebraic closure property used by inclusion–exclusion:
        // eval(a ∧ b) == eval(a) ∧ eval(b).
        let r = resolver();
        let a = TargetingSpec::builder()
            .any_of([AttributeId(0), AttributeId(1)])
            .gender(Gender::Male)
            .build();
        let b = TargetingSpec::builder().attribute(AttributeId(2)).build();
        let ab = a.intersect(&b).unwrap();
        let ea = evaluate(&r, &a).unwrap();
        let eb = evaluate(&r, &b).unwrap();
        assert_eq!(evaluate(&r, &ab).unwrap(), ea.and(&eb));
    }

    #[test]
    fn normalization_preserves_audience() {
        let r = resolver();
        let spec = TargetingSpec::builder()
            .any_of([AttributeId(1), AttributeId(0), AttributeId(1)])
            .genders([Gender::Male, Gender::Female])
            .exclude([AttributeId(3), AttributeId(3)])
            .build();
        assert_eq!(
            evaluate(&r, &spec).unwrap(),
            evaluate(&r, &spec.normalized()).unwrap()
        );
    }

    #[test]
    fn error_display() {
        let e = EvalError::UnknownAttribute(AttributeId(7));
        assert_eq!(e.to_string(), "unknown attribute #7");
    }
}
