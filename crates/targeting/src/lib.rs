//! The targeting expression language shared by all simulated platforms.
//!
//! Advertisers on the 2020-era platforms the paper studies express an
//! audience as:
//!
//! * **demographics** — location (always the US in this reproduction, as in
//!   the paper), optionally a set of genders and age buckets;
//! * **inclusions** — a *logical AND of logical-OR groups* over catalog
//!   attributes ("detailed targeting" on Facebook, "AND-OR targeting" on
//!   LinkedIn);
//! * **exclusions** — attributes whose holders are removed from the
//!   audience (disallowed on Facebook's restricted interface).
//!
//! This crate provides the typed AST ([`TargetingSpec`]), a canonical
//! normal form ([`TargetingSpec::normalize`]), platform-capability
//! validation ([`validate`]), and evaluation against a synthetic
//! population ([`evaluate`]).
//!
//! A key algebraic property the audit relies on: the intersection of two
//! AND-of-OR specs is again an AND-of-OR spec
//! ([`TargetingSpec::intersect`]). Platforms support AND-of-ORs but *not*
//! OR-of-ANDs, which is why the paper must estimate union recall via the
//! inclusion–exclusion principle — each inclusion–exclusion term is an
//! intersection, hence expressible.
//!
//! ```
//! use adcomp_targeting::{AttributeId, TargetingSpec};
//!
//! // (cars OR sedans) AND (electrical engineering)
//! let spec = TargetingSpec::builder()
//!     .any_of([AttributeId(10), AttributeId(11)])
//!     .all_of([AttributeId(42)])
//!     .build();
//! assert_eq!(spec.include.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod builder;
mod eval;
mod validate;

pub use ast::{AttributeId, DemographicSpec, Location, OrGroup, TargetingSpec};
pub use builder::SpecBuilder;
pub use eval::{evaluate, AttributeResolver, EvalError};
pub use validate::{validate, Capabilities, CatalogView, FeatureId, ValidationError};
