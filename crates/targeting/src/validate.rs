//! Platform-capability validation of targeting specs.
//!
//! Each simulated platform interface declares a [`Capabilities`] profile;
//! [`validate`] rejects specs the corresponding real interface would have
//! refused. The profiles the audit uses (paper §2):
//!
//! * **Facebook (normal)** — demographics allowed, exclusions allowed,
//!   free AND-of-ORs over one attribute catalog.
//! * **Facebook (restricted)** — no age/gender targeting, no exclusions,
//!   reduced catalog (enforced by the catalog itself), AND-of-ORs allowed.
//! * **Google (Display)** — audience-size statistics are only shown for
//!   compositions that AND options of *different* features (e.g. an
//!   affinity attribute with a placement topic); same-feature combinations
//!   are OR-only (paper §3, footnote 8).
//! * **LinkedIn** — demographics are themselves catalog attributes; the
//!   interface supports AND-of-ORs, exclusions allowed.

use adcomp_population::{AgeBucket, Gender};
use serde::{Deserialize, Serialize};

use crate::ast::{AttributeId, TargetingSpec};

/// Identifier of a targeting *feature* (a family of options that Google
/// refuses to AND within itself — e.g. "affinity attributes" vs
/// "placement topics").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FeatureId(pub u16);

/// Read-only view of a platform catalog, as needed for validation.
pub trait CatalogView {
    /// Does the attribute exist on this interface?
    fn exists(&self, id: AttributeId) -> bool;
    /// Which feature family the attribute belongs to.
    fn feature_of(&self, id: AttributeId) -> Option<FeatureId>;
}

/// What a platform interface permits.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Capabilities {
    /// May the advertiser constrain gender?
    pub gender_targeting: bool,
    /// May the advertiser constrain age?
    pub age_targeting: bool,
    /// May the advertiser exclude attribute holders?
    pub exclusions: bool,
    /// May two options of the *same* feature be AND-ed (different groups)?
    /// `false` models Google's display statistics limitation.
    pub same_feature_and: bool,
    /// Maximum number of AND-ed groups (0 = unlimited).
    pub max_groups: usize,
    /// Maximum alternatives within one OR-group (0 = unlimited).
    pub max_group_size: usize,
}

impl Capabilities {
    /// Fully permissive profile (Facebook normal / LinkedIn shape).
    pub fn permissive() -> Self {
        Capabilities {
            gender_targeting: true,
            age_targeting: true,
            exclusions: true,
            same_feature_and: true,
            max_groups: 0,
            max_group_size: 0,
        }
    }

    /// Facebook's restricted (special ad category) profile.
    pub fn restricted() -> Self {
        Capabilities {
            gender_targeting: false,
            age_targeting: false,
            exclusions: false,
            same_feature_and: true,
            max_groups: 0,
            max_group_size: 0,
        }
    }

    /// Google Display profile: cross-feature AND only.
    pub fn cross_feature_only() -> Self {
        Capabilities {
            same_feature_and: false,
            exclusions: false,
            ..Capabilities::permissive()
        }
    }
}

/// Reasons an interface rejects a spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// Attribute not in this interface's catalog.
    UnknownAttribute(AttributeId),
    /// Gender constraint on an interface that forbids it.
    GenderTargetingNotAllowed(Vec<Gender>),
    /// Age constraint on an interface that forbids it.
    AgeTargetingNotAllowed(Vec<AgeBucket>),
    /// Exclusions on an interface that forbids them.
    ExclusionsNotAllowed,
    /// Two AND-ed groups draw from the same feature on an interface that
    /// only supports cross-feature composition.
    SameFeatureAnd(FeatureId),
    /// A single OR-group mixes features (groups must be homogeneous when
    /// the interface distinguishes features).
    MixedFeatureGroup,
    /// Too many AND-ed groups.
    TooManyGroups {
        /// Number of groups in the spec.
        got: usize,
        /// Interface limit.
        limit: usize,
    },
    /// An OR-group exceeds the size limit.
    GroupTooLarge {
        /// Alternatives in the offending group.
        got: usize,
        /// Interface limit.
        limit: usize,
    },
    /// A group with no attributes.
    EmptyGroup,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::UnknownAttribute(id) => {
                write!(f, "attribute #{} is not in this interface's catalog", id.0)
            }
            ValidationError::GenderTargetingNotAllowed(_) => {
                write!(f, "this interface does not allow targeting by gender")
            }
            ValidationError::AgeTargetingNotAllowed(_) => {
                write!(f, "this interface does not allow targeting by age")
            }
            ValidationError::ExclusionsNotAllowed => {
                write!(
                    f,
                    "this interface does not allow excluding attribute holders"
                )
            }
            ValidationError::SameFeatureAnd(feat) => write!(
                f,
                "options of the same feature (feature {}) cannot be AND-composed here",
                feat.0
            ),
            ValidationError::MixedFeatureGroup => {
                write!(f, "an OR-group must draw from a single feature")
            }
            ValidationError::TooManyGroups { got, limit } => {
                write!(f, "{got} AND-groups exceed the interface limit of {limit}")
            }
            ValidationError::GroupTooLarge { got, limit } => {
                write!(
                    f,
                    "an OR-group with {got} options exceeds the limit of {limit}"
                )
            }
            ValidationError::EmptyGroup => write!(f, "empty OR-group"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Checks `spec` against an interface's capabilities and catalog.
/// Returns the first violation found (demographics, then structure, then
/// per-attribute checks) — matching how the real UIs reject input eagerly.
pub fn validate(
    spec: &TargetingSpec,
    caps: &Capabilities,
    catalog: &dyn CatalogView,
) -> Result<(), ValidationError> {
    if let Some(genders) = &spec.demographics.genders {
        if !caps.gender_targeting {
            return Err(ValidationError::GenderTargetingNotAllowed(genders.clone()));
        }
    }
    if let Some(ages) = &spec.demographics.ages {
        if !caps.age_targeting {
            return Err(ValidationError::AgeTargetingNotAllowed(ages.clone()));
        }
    }
    if !spec.exclude.is_empty() && !caps.exclusions {
        return Err(ValidationError::ExclusionsNotAllowed);
    }
    if caps.max_groups != 0 && spec.include.len() > caps.max_groups {
        return Err(ValidationError::TooManyGroups {
            got: spec.include.len(),
            limit: caps.max_groups,
        });
    }

    let mut group_features: Vec<FeatureId> = Vec::with_capacity(spec.include.len());
    for group in &spec.include {
        if group.attributes.is_empty() {
            return Err(ValidationError::EmptyGroup);
        }
        if caps.max_group_size != 0 && group.attributes.len() > caps.max_group_size {
            return Err(ValidationError::GroupTooLarge {
                got: group.attributes.len(),
                limit: caps.max_group_size,
            });
        }
        let mut feature: Option<FeatureId> = None;
        for &id in &group.attributes {
            if !catalog.exists(id) {
                return Err(ValidationError::UnknownAttribute(id));
            }
            let feat = catalog
                .feature_of(id)
                .ok_or(ValidationError::UnknownAttribute(id))?;
            match feature {
                None => feature = Some(feat),
                Some(f) if f != feat && !caps.same_feature_and => {
                    // When features matter, a group must be homogeneous.
                    return Err(ValidationError::MixedFeatureGroup);
                }
                _ => {}
            }
        }
        group_features.push(feature.expect("non-empty group has a feature"));
    }

    if !caps.same_feature_and {
        let mut seen = group_features.clone();
        seen.sort_unstable();
        for w in seen.windows(2) {
            if w[0] == w[1] {
                return Err(ValidationError::SameFeatureAnd(w[0]));
            }
        }
    }

    for &id in &spec.exclude {
        if !catalog.exists(id) {
            return Err(ValidationError::UnknownAttribute(id));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::OrGroup;

    /// A toy catalog: ids 0..100 exist; feature = id / 50 (so 0..50 are
    /// feature 0, 50..100 feature 1).
    struct ToyCatalog;
    impl CatalogView for ToyCatalog {
        fn exists(&self, id: AttributeId) -> bool {
            id.0 < 100
        }
        fn feature_of(&self, id: AttributeId) -> Option<FeatureId> {
            (id.0 < 100).then_some(FeatureId((id.0 / 50) as u16))
        }
    }

    fn ok(spec: &TargetingSpec, caps: &Capabilities) {
        assert_eq!(validate(spec, caps, &ToyCatalog), Ok(()), "{spec}");
    }

    fn err(spec: &TargetingSpec, caps: &Capabilities, want: ValidationError) {
        assert_eq!(validate(spec, caps, &ToyCatalog), Err(want), "{spec}");
    }

    #[test]
    fn permissive_accepts_everything_wellformed() {
        let caps = Capabilities::permissive();
        ok(&TargetingSpec::everyone(), &caps);
        ok(
            &TargetingSpec::builder()
                .gender(Gender::Female)
                .age(AgeBucket::A18_24)
                .any_of([AttributeId(1), AttributeId(60)])
                .exclude([AttributeId(2)])
                .build(),
            &caps,
        );
    }

    #[test]
    fn restricted_rejects_demographics_and_exclusions() {
        let caps = Capabilities::restricted();
        err(
            &TargetingSpec::builder().gender(Gender::Male).build(),
            &caps,
            ValidationError::GenderTargetingNotAllowed(vec![Gender::Male]),
        );
        err(
            &TargetingSpec::builder().age(AgeBucket::A55Plus).build(),
            &caps,
            ValidationError::AgeTargetingNotAllowed(vec![AgeBucket::A55Plus]),
        );
        err(
            &TargetingSpec::builder().exclude([AttributeId(1)]).build(),
            &caps,
            ValidationError::ExclusionsNotAllowed,
        );
        // Attribute composition itself is allowed.
        ok(
            &TargetingSpec::and_of([AttributeId(1), AttributeId(2)]),
            &caps,
        );
    }

    #[test]
    fn cross_feature_only_enforced() {
        let caps = Capabilities::cross_feature_only();
        // Same feature AND (two groups in feature 0) rejected.
        err(
            &TargetingSpec::and_of([AttributeId(1), AttributeId(2)]),
            &caps,
            ValidationError::SameFeatureAnd(FeatureId(0)),
        );
        // Cross-feature AND accepted.
        ok(
            &TargetingSpec::and_of([AttributeId(1), AttributeId(60)]),
            &caps,
        );
        // Same-feature OR accepted (single group).
        ok(
            &TargetingSpec::builder()
                .any_of([AttributeId(1), AttributeId(2)])
                .build(),
            &caps,
        );
        // Mixed-feature OR-group rejected.
        err(
            &TargetingSpec::builder()
                .any_of([AttributeId(1), AttributeId(60)])
                .build(),
            &caps,
            ValidationError::MixedFeatureGroup,
        );
    }

    #[test]
    fn unknown_attributes_rejected_everywhere() {
        let caps = Capabilities::permissive();
        err(
            &TargetingSpec::and_of([AttributeId(100)]),
            &caps,
            ValidationError::UnknownAttribute(AttributeId(100)),
        );
        err(
            &TargetingSpec::builder().exclude([AttributeId(500)]).build(),
            &caps,
            ValidationError::UnknownAttribute(AttributeId(500)),
        );
    }

    #[test]
    fn structural_limits() {
        let caps = Capabilities {
            max_groups: 2,
            max_group_size: 2,
            ..Capabilities::permissive()
        };
        err(
            &TargetingSpec::and_of([AttributeId(1), AttributeId(2), AttributeId(3)]),
            &caps,
            ValidationError::TooManyGroups { got: 3, limit: 2 },
        );
        err(
            &TargetingSpec::builder()
                .any_of([AttributeId(1), AttributeId(2), AttributeId(3)])
                .build(),
            &caps,
            ValidationError::GroupTooLarge { got: 3, limit: 2 },
        );
        err(
            &TargetingSpec {
                include: vec![OrGroup { attributes: vec![] }],
                ..Default::default()
            },
            &Capabilities::permissive(),
            ValidationError::EmptyGroup,
        );
    }

    #[test]
    fn error_messages_render() {
        let msgs = [
            ValidationError::UnknownAttribute(AttributeId(3)).to_string(),
            ValidationError::SameFeatureAnd(FeatureId(1)).to_string(),
            ValidationError::TooManyGroups { got: 5, limit: 2 }.to_string(),
        ];
        assert!(msgs[0].contains("#3"));
        assert!(msgs[1].contains("feature 1"));
        assert!(msgs[2].contains('5') && msgs[2].contains('2'));
    }
}
