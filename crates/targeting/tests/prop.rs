//! Property tests for the targeting algebra: normalisation, intersection,
//! and evaluation must agree with naive per-user semantics for arbitrary
//! specs.

use adcomp_bitset::Bitset;
use adcomp_population::{
    AgeBucket, AttributeModel, DemographicProfile, Gender, Universe, UniverseConfig,
};
use adcomp_targeting::{
    evaluate, AttributeId, AttributeResolver, DemographicSpec, Location, OrGroup, TargetingSpec,
};
use proptest::prelude::*;
use std::sync::OnceLock;

const N_ATTRS: u32 = 8;

struct Fixture {
    universe: Universe,
    audiences: Vec<Bitset>,
}

impl AttributeResolver for Fixture {
    fn attribute_audience(&self, id: AttributeId) -> Option<&Bitset> {
        self.audiences.get(id.0 as usize)
    }
    fn universe(&self) -> &Universe {
        &self.universe
    }
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let universe = Universe::generate(&UniverseConfig {
            n_users: 8_000,
            seed: 314,
            scale: 1.0,
            profile: DemographicProfile::balanced(),
        });
        let audiences = (0..N_ATTRS)
            .map(|i| {
                universe.materialize(
                    &AttributeModel::new(1000 + i as u64)
                        .popularity(0.1 + 0.05 * i as f64)
                        .gender_bias(0.3 * (i as f32 - 3.0))
                        .loading(2 + (i as usize % 4), 0.8),
                )
            })
            .collect();
        Fixture {
            universe,
            audiences,
        }
    })
}

fn arb_gender() -> impl Strategy<Value = Gender> {
    prop_oneof![Just(Gender::Male), Just(Gender::Female)]
}

fn arb_age() -> impl Strategy<Value = AgeBucket> {
    prop_oneof![
        Just(AgeBucket::A18_24),
        Just(AgeBucket::A25_34),
        Just(AgeBucket::A35_54),
        Just(AgeBucket::A55Plus),
    ]
}

prop_compose! {
    fn arb_spec()(
        genders in proptest::option::of(proptest::collection::vec(arb_gender(), 1..=2)),
        ages in proptest::option::of(proptest::collection::vec(arb_age(), 1..=4)),
        include in proptest::collection::vec(
            proptest::collection::vec(0..N_ATTRS, 1..4), 0..4),
        exclude in proptest::collection::vec(0..N_ATTRS, 0..3),
    ) -> TargetingSpec {
        TargetingSpec {
            demographics: DemographicSpec {
                genders,
                ages,
                location: Location::UnitedStates,
            },
            include: include
                .into_iter()
                .map(|g| OrGroup { attributes: g.into_iter().map(AttributeId).collect() })
                .collect(),
            exclude: exclude.into_iter().map(AttributeId).collect(),
        }
    }
}

/// Naive per-user reference evaluation.
fn reference(f: &Fixture, spec: &TargetingSpec) -> Bitset {
    let mut out = Bitset::new();
    'user: for user in 0..f.universe.n_users() {
        let d = f.universe.demographics(user);
        if let Some(gs) = &spec.demographics.genders {
            if !gs.contains(&d.gender) {
                continue;
            }
        }
        if let Some(ags) = &spec.demographics.ages {
            if !ags.contains(&d.age) {
                continue;
            }
        }
        for group in &spec.include {
            if !group
                .attributes
                .iter()
                .any(|a| f.audiences[a.0 as usize].contains(user))
            {
                continue 'user;
            }
        }
        for a in &spec.exclude {
            if f.audiences[a.0 as usize].contains(user) {
                continue 'user;
            }
        }
        out.insert(user);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn eval_matches_reference(spec in arb_spec()) {
        let f = fixture();
        prop_assert_eq!(evaluate(f, &spec).unwrap(), reference(f, &spec));
    }

    #[test]
    fn normalization_preserves_audience(spec in arb_spec()) {
        let f = fixture();
        prop_assert_eq!(
            evaluate(f, &spec).unwrap(),
            evaluate(f, &spec.normalized()).unwrap()
        );
    }

    #[test]
    fn normalization_is_idempotent(spec in arb_spec()) {
        let once = spec.normalized();
        prop_assert_eq!(once.normalized(), once);
    }

    #[test]
    fn intersect_is_audience_intersection(a in arb_spec(), b in arb_spec()) {
        let f = fixture();
        let ea = evaluate(f, &a).unwrap();
        let eb = evaluate(f, &b).unwrap();
        match a.intersect(&b) {
            Some(ab) => prop_assert_eq!(evaluate(f, &ab).unwrap(), ea.and(&eb)),
            // None = contradictory demographics: audiences are disjoint.
            None => prop_assert!(ea.is_disjoint(&eb)),
        }
    }

    #[test]
    fn intersect_is_commutative_up_to_normalisation(a in arb_spec(), b in arb_spec()) {
        let ab = a.intersect(&b).map(|s| s.normalized());
        let ba = b.intersect(&a).map(|s| s.normalized());
        match (ab, ba) {
            (Some(x), Some(y)) => {
                // Gender/age option lists may differ in order before
                // normalize; after it they must be identical.
                prop_assert_eq!(x, y);
            }
            (None, None) => {}
            other => prop_assert!(false, "asymmetric intersect: {:?}", other),
        }
    }

    #[test]
    fn audience_is_monotone_in_constraints(spec in arb_spec(), extra in 0..N_ATTRS) {
        // Adding an AND-constraint can only shrink the audience.
        let f = fixture();
        let base = evaluate(f, &spec).unwrap();
        let mut tighter = spec.clone();
        tighter.include.push(OrGroup::single(AttributeId(extra)));
        let shrunk = evaluate(f, &tighter).unwrap();
        prop_assert!(shrunk.is_subset(&base));
        // Adding an exclusion can only shrink it too.
        let mut excluded = spec.clone();
        excluded.exclude.push(AttributeId(extra));
        prop_assert!(evaluate(f, &excluded).unwrap().is_subset(&base));
    }

    #[test]
    fn display_never_panics_and_is_nonempty(spec in arb_spec()) {
        prop_assert!(!spec.to_string().is_empty());
    }
}
