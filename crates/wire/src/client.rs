//! Blocking client for the wire protocol.
//!
//! The client plays the role of the paper's measurement scripts: a
//! single connection issuing request/response pairs, with optional
//! polite retry when the server answers `RateLimited`.

use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use adcomp_targeting::TargetingSpec;
use parking_lot::Mutex;

use crate::codec::{from_bytes, to_bytes, CodecError};
use crate::frame::{read_frame, write_frame, FrameError};
use crate::message::{ErrorCode, Request, Response};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Connection or framing problem.
    Transport(FrameError),
    /// Undecodable response.
    Codec(CodecError),
    /// Server answered with an error.
    Server {
        /// Error code.
        code: ErrorCode,
        /// Detail message.
        message: String,
    },
    /// Server answered with a response of the wrong kind.
    UnexpectedResponse,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "transport: {e}"),
            ClientError::Codec(e) => write!(f, "codec: {e}"),
            ClientError::Server { code, message } => write!(f, "server {code:?}: {message}"),
            ClientError::UnexpectedResponse => write!(f, "unexpected response kind"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Transport(e)
    }
}

impl From<CodecError> for ClientError {
    fn from(e: CodecError) -> Self {
        ClientError::Codec(e)
    }
}

/// One page of catalog metadata: the entries plus the next page's start
/// id when more remain.
pub type CatalogPage = (Vec<(String, u16)>, Option<u32>);

/// Interface description returned by [`Client::describe`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InterfaceDescription {
    /// Report label.
    pub label: String,
    /// Catalog size.
    pub catalog_len: u32,
    /// Gender targeting allowed?
    pub gender_targeting: bool,
    /// Age targeting allowed?
    pub age_targeting: bool,
    /// Exclusions allowed?
    pub exclusions: bool,
    /// Same-feature AND allowed?
    pub same_feature_and: bool,
    /// Estimates are impressions?
    pub impressions: bool,
}

/// A blocking protocol client. Internally synchronised, so it can be
/// shared behind an `Arc` by a multi-threaded audit.
pub struct Client {
    conn: Mutex<Conn>,
    /// How many times to retry a rate-limited request before giving up
    /// (sleeping [`Client::backoff`] between tries).
    pub max_retries: u32,
    /// Sleep between rate-limited retries.
    pub backoff: Duration,
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            conn: Mutex::new(Conn { reader: BufReader::new(stream), writer }),
            max_retries: 5,
            backoff: Duration::from_millis(50),
        })
    }

    fn call(&self, request: &Request) -> Result<Response, ClientError> {
        let mut attempt = 0;
        loop {
            let response = {
                let mut conn = self.conn.lock();
                write_frame(&mut conn.writer, &to_bytes(request))?;
                let payload = read_frame(&mut conn.reader)?;
                from_bytes::<Response>(&payload)?
            };
            match response {
                Response::Error { code: ErrorCode::RateLimited, message }
                    if attempt < self.max_retries =>
                {
                    attempt += 1;
                    let _ = message;
                    std::thread::sleep(self.backoff);
                }
                other => return Ok(other),
            }
        }
    }

    /// Fetches the interface description.
    pub fn describe(&self) -> Result<InterfaceDescription, ClientError> {
        match self.call(&Request::Describe)? {
            Response::Described {
                label,
                catalog_len,
                gender_targeting,
                age_targeting,
                exclusions,
                same_feature_and,
                impressions,
            } => Ok(InterfaceDescription {
                label,
                catalog_len,
                gender_targeting,
                age_targeting,
                exclusions,
                same_feature_and,
                impressions,
            }),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Fetches one attribute's name and feature.
    pub fn attribute_info(&self, id: u32) -> Result<(String, u16), ClientError> {
        match self.call(&Request::AttributeInfo { id })? {
            Response::AttributeInfo { name, feature } => Ok((name, feature)),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Validates a spec server-side.
    pub fn check(&self, spec: &TargetingSpec) -> Result<(), ClientError> {
        match self.call(&Request::Check { spec: spec.clone() })? {
            Response::Ok => Ok(()),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Fetches the rounded audience-size estimate for a spec.
    pub fn estimate(&self, spec: &TargetingSpec) -> Result<u64, ClientError> {
        match self.call(&Request::Estimate { spec: spec.clone() })? {
            Response::Estimate { value } => Ok(value),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Fetches one page of catalog metadata (`(name, feature)` pairs
    /// starting at id `start`); returns the entries and the next page's
    /// start id when more remain.
    pub fn catalog_page(
        &self,
        start: u32,
        limit: u32,
    ) -> Result<CatalogPage, ClientError> {
        match self.call(&Request::CatalogPage { start, limit })? {
            Response::CatalogPage { entries, next, .. } => Ok((entries, next)),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Fetches the server's query counters.
    pub fn stats(&self) -> Result<(u64, u64, u64), ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats { estimates, validation_failures, rate_limited } => {
                Ok((estimates, validation_failures, rate_limited))
            }
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }
}
