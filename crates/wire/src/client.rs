//! Blocking client for the wire protocol, hardened for long audits.
//!
//! The client plays the role of the paper's measurement scripts: a
//! single connection issuing request/response pairs against a platform
//! that throttles, hiccups, and drops connections. Resilience is split
//! across layers — this client owns the *transport*:
//!
//! * connect/read/write timeouts (no audit thread hangs forever);
//! * automatic reconnect when the server drops the connection;
//! * a [`RetryPolicy`] (exponential backoff, deterministic jitter,
//!   server `retry_after` hints honoured) applied to transport failures
//!   and rate-limit rejections;
//! * a [`CircuitBreaker`] that stops hammering a dead endpoint after
//!   consecutive transport failures, surfacing
//!   [`ClientError::CircuitOpen`].
//!
//! Application-level failures (invalid targeting, transient platform
//! errors) pass through untouched; the audit layer's `ResilientSource`
//! decides whether to retry, skip, or abort those.

use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

use adcomp_obs::metrics::{duration_us_buckets, Counter, Gauge, Histogram, Registry};
use adcomp_obs::trace::{current_context, TraceContext, Tracer};
use adcomp_platform::{CircuitBreaker, RetryPolicy};
use adcomp_targeting::TargetingSpec;
use parking_lot::Mutex;

use crate::codec::{from_bytes, to_bytes, CodecError};
use crate::frame::{read_frame, write_frame, FrameError};
use crate::message::{ErrorCode, Request, Response};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Connection or framing problem (after exhausting retries).
    Transport(FrameError),
    /// Undecodable response.
    Codec(CodecError),
    /// Server answered with an error.
    Server {
        /// Error code.
        code: ErrorCode,
        /// Detail message.
        message: String,
        /// Server-advertised back-off (rate limiting).
        retry_after: Option<Duration>,
    },
    /// The circuit breaker is open; the endpoint looks dead.
    CircuitOpen {
        /// Time until the breaker admits a probe.
        retry_in: Duration,
    },
    /// Server answered with a response of the wrong kind.
    UnexpectedResponse,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "transport: {e}"),
            ClientError::Codec(e) => write!(f, "codec: {e}"),
            ClientError::Server { code, message, .. } => write!(f, "server {code:?}: {message}"),
            ClientError::CircuitOpen { retry_in } => {
                write!(f, "circuit open; retry in {retry_in:?}")
            }
            ClientError::UnexpectedResponse => write!(f, "unexpected response kind"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Transport(e)
    }
}

impl From<CodecError> for ClientError {
    fn from(e: CodecError) -> Self {
        ClientError::Codec(e)
    }
}

/// Why a pipelined round stopped before every in-flight request was
/// answered.
enum RoundAbort {
    /// The connection failed; unanswered requests are safe to re-issue.
    Transport(FrameError),
    /// Protocol violation (undecodable frame, untagged or unmatched
    /// response); never retried.
    Fatal(ClientError),
}

/// Transport tuning for [`Client`].
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Per-read/write socket timeout (`None` = block forever).
    pub io_timeout: Option<Duration>,
    /// Retry schedule for transport failures and rate-limit rejections.
    pub retry: RetryPolicy,
    /// Consecutive transport failures before the circuit opens.
    pub breaker_threshold: u32,
    /// How long an open circuit rejects requests before probing.
    pub breaker_cooldown: Duration,
    /// Maximum tagged requests in flight on the connection during
    /// [`Client::estimate_batch`] (clamped to at least 1). A window of 1
    /// degenerates to request/response with per-frame correlation ids.
    pub pipeline_window: usize,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            io_timeout: Some(Duration::from_secs(30)),
            retry: RetryPolicy::standard(0),
            breaker_threshold: 8,
            breaker_cooldown: Duration::from_secs(5),
            pipeline_window: 32,
        }
    }
}

impl ClientConfig {
    /// A config for tests: tiny timeouts and backoffs.
    pub fn fast() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(1),
            io_timeout: Some(Duration::from_secs(2)),
            retry: RetryPolicy::fast(5),
            breaker_threshold: 4,
            breaker_cooldown: Duration::from_millis(50),
            pipeline_window: 32,
        }
    }
}

/// One page of catalog metadata: the entries plus the next page's start
/// id when more remain.
pub type CatalogPage = (Vec<(String, u16)>, Option<u32>);

/// Interface description returned by [`Client::describe`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InterfaceDescription {
    /// Report label.
    pub label: String,
    /// Catalog size.
    pub catalog_len: u32,
    /// Gender targeting allowed?
    pub gender_targeting: bool,
    /// Age targeting allowed?
    pub age_targeting: bool,
    /// Exclusions allowed?
    pub exclusions: bool,
    /// Same-feature AND allowed?
    pub same_feature_and: bool,
    /// Estimates are impressions?
    pub impressions: bool,
}

/// Transport instrument handles, resolved once per client.
struct ClientMetrics {
    /// Round-trip time of successful exchanges.
    rtt_us: Arc<Histogram>,
    /// Connections re-opened after a transport teardown (the initial
    /// connect is not counted).
    reconnects: Arc<Counter>,
    /// Transport-level retries, by reason.
    retries_rate_limited: Arc<Counter>,
    retries_transport: Arc<Counter>,
    /// Timed-out operations, by phase.
    timeouts_connect: Arc<Counter>,
    timeouts_io: Arc<Counter>,
    /// Tagged requests currently in flight during a pipelined batch.
    pipeline_inflight: Arc<Gauge>,
}

impl ClientMetrics {
    fn resolve() -> Self {
        let reg = Registry::global();
        ClientMetrics {
            rtt_us: reg.histogram("adcomp_wire_rtt_us", duration_us_buckets()),
            reconnects: reg.counter("adcomp_wire_reconnects_total"),
            retries_rate_limited: reg
                .counter_with("adcomp_wire_retries_total", &[("reason", "rate_limited")]),
            retries_transport: reg
                .counter_with("adcomp_wire_retries_total", &[("reason", "transport")]),
            timeouts_connect: reg.counter_with("adcomp_wire_timeouts_total", &[("op", "connect")]),
            timeouts_io: reg.counter_with("adcomp_wire_timeouts_total", &[("op", "io")]),
            pipeline_inflight: reg.gauge("adcomp_wire_pipeline_inflight"),
        }
    }
}

fn is_timeout(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
    )
}

/// A blocking protocol client. Internally synchronised, so it can be
/// shared behind an `Arc` by a multi-threaded audit.
pub struct Client {
    addrs: Vec<SocketAddr>,
    config: ClientConfig,
    conn: Mutex<Option<Conn>>,
    breaker: Mutex<CircuitBreaker>,
    /// Epoch for the breaker's injected clock.
    epoch: Instant,
    metrics: ClientMetrics,
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a server with default transport tuning.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit transport tuning.
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        config: ClientConfig,
    ) -> std::io::Result<Client> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            ));
        }
        let breaker = CircuitBreaker::new(config.breaker_threshold, config.breaker_cooldown);
        let client = Client {
            addrs,
            config,
            conn: Mutex::new(None),
            breaker: Mutex::new(breaker),
            epoch: Instant::now(),
            metrics: ClientMetrics::resolve(),
        };
        // Fail fast on an unreachable endpoint, as `connect` always did.
        let conn = client.open_conn()?;
        *client.conn.lock() = Some(conn);
        Ok(client)
    }

    /// The transport tuning in effect.
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    fn open_conn(&self) -> std::io::Result<Conn> {
        let mut last_err = None;
        for addr in &self.addrs {
            match TcpStream::connect_timeout(addr, self.config.connect_timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(self.config.io_timeout)?;
                    stream.set_write_timeout(self.config.io_timeout)?;
                    let writer = stream.try_clone()?;
                    return Ok(Conn {
                        reader: BufReader::new(stream),
                        writer,
                    });
                }
                Err(e) => {
                    if is_timeout(e.kind()) {
                        self.metrics.timeouts_connect.inc();
                    }
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.expect("addrs is non-empty"))
    }

    /// One request/response exchange on the current connection,
    /// reconnecting first if a previous failure tore it down.
    fn exchange(&self, request: &Request) -> Result<Response, ClientError> {
        let mut guard = self.conn.lock();
        if guard.is_none() {
            *guard = Some(self.open_conn().map_err(FrameError::Io)?);
            self.metrics.reconnects.inc();
        }
        let conn = guard.as_mut().expect("connection just ensured");
        let started = Instant::now();
        let result = (|| {
            write_frame(&mut conn.writer, &to_bytes(request))?;
            let payload = read_frame(&mut conn.reader)?;
            Ok(from_bytes::<Response>(&payload)?)
        })();
        match &result {
            Ok(_) => self.metrics.rtt_us.observe_duration(started.elapsed()),
            Err(ClientError::Transport(e)) => {
                if let FrameError::Io(io) = e {
                    if is_timeout(io.kind()) {
                        self.metrics.timeouts_io.inc();
                    }
                }
                // Tear down so the next attempt reconnects.
                *guard = None;
            }
            Err(_) => {}
        }
        result
    }

    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    fn call(&self, request: &Request) -> Result<Response, ClientError> {
        let mut attempt: u32 = 0;
        loop {
            self.breaker
                .lock()
                .check(self.now())
                .map_err(|retry_in| ClientError::CircuitOpen { retry_in })?;
            // Unwrap Traced before classifying: a rate-limit answer to a
            // traced request must still hit the retry arm below (each
            // unwrap records that attempt's server time in the trace).
            match self.exchange(request).map(Self::trace_unwrap) {
                Ok(Response::Error {
                    code: ErrorCode::RateLimited,
                    message,
                    retry_after,
                }) => {
                    // The endpoint is alive — a throttle is not a fault.
                    self.breaker.lock().record_success();
                    if self.config.retry.should_retry(attempt) {
                        self.metrics.retries_rate_limited.inc();
                        std::thread::sleep(self.config.retry.backoff(attempt, retry_after));
                        attempt += 1;
                    } else {
                        return Ok(Response::Error {
                            code: ErrorCode::RateLimited,
                            message,
                            retry_after,
                        });
                    }
                }
                Ok(response) => {
                    self.breaker.lock().record_success();
                    return Ok(response);
                }
                Err(ClientError::Transport(e)) => {
                    self.breaker.lock().record_failure(self.now());
                    if self.config.retry.should_retry(attempt) {
                        self.metrics.retries_transport.inc();
                        std::thread::sleep(self.config.retry.backoff(attempt, None));
                        attempt += 1;
                    } else {
                        return Err(ClientError::Transport(e));
                    }
                }
                // Codec errors are bugs, not weather; don't retry.
                Err(e) => return Err(e),
            }
        }
    }

    /// Fetches the interface description.
    pub fn describe(&self) -> Result<InterfaceDescription, ClientError> {
        match self.call(&Request::Describe)? {
            Response::Described {
                label,
                catalog_len,
                gender_targeting,
                age_targeting,
                exclusions,
                same_feature_and,
                impressions,
            } => Ok(InterfaceDescription {
                label,
                catalog_len,
                gender_targeting,
                age_targeting,
                exclusions,
                same_feature_and,
                impressions,
            }),
            Response::Error {
                code,
                message,
                retry_after,
            } => Err(ClientError::Server {
                code,
                message,
                retry_after,
            }),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Fetches one attribute's name and feature.
    pub fn attribute_info(&self, id: u32) -> Result<(String, u16), ClientError> {
        match self.call(&Request::AttributeInfo { id })? {
            Response::AttributeInfo { name, feature } => Ok((name, feature)),
            Response::Error {
                code,
                message,
                retry_after,
            } => Err(ClientError::Server {
                code,
                message,
                retry_after,
            }),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Validates a spec server-side.
    pub fn check(&self, spec: &TargetingSpec) -> Result<(), ClientError> {
        match self.call(&Request::Check { spec: spec.clone() })? {
            Response::Ok => Ok(()),
            Response::Error {
                code,
                message,
                retry_after,
            } => Err(ClientError::Server {
                code,
                message,
                retry_after,
            }),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Wraps a request in [`Request::Traced`] when the calling thread is
    /// inside a span, opening a `wire:rtt` child span that the returned
    /// guard closes. The server continues that span on its side.
    fn trace_wrap(&self, inner: Request) -> (Request, Option<adcomp_obs::SpanGuard<'static>>) {
        match current_context() {
            Some(_) => {
                let span = Tracer::global().span("wire:rtt");
                let ctx = span.context();
                (
                    Request::Traced {
                        trace_id: ctx.trace_id,
                        span_id: ctx.span_id,
                        inner: Box::new(inner),
                    },
                    Some(span),
                )
            }
            None => (inner, None),
        }
    }

    /// Unwraps [`Response::Traced`], echoing the server's handling time
    /// into the trace as a `platform:remote` leaf (latency attribution
    /// splits wire RTT into network and platform time from it).
    fn trace_unwrap(response: Response) -> Response {
        match response {
            Response::Traced { server_us, inner } => {
                Tracer::global()
                    .event("platform:remote", &[("duration_us", server_us.to_string())]);
                *inner
            }
            other => other,
        }
    }

    /// Fetches the rounded audience-size estimate for a spec. Inside a
    /// span, the query carries the caller's [`TraceContext`] so the
    /// server's handling joins the caller's trace.
    pub fn estimate(&self, spec: &TargetingSpec) -> Result<u64, ClientError> {
        let (request, span) = self.trace_wrap(Request::Estimate { spec: spec.clone() });
        let response = self.call(&request)?;
        drop(span);
        match response {
            Response::Estimate { value } => Ok(value),
            Response::Error {
                code,
                message,
                retry_after,
            } => Err(ClientError::Server {
                code,
                message,
                retry_after,
            }),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Fetches estimates for a batch of specs by pipelining tagged
    /// requests over the one connection: up to
    /// [`ClientConfig::pipeline_window`] requests ride in flight at once
    /// and the server's [`Response::Tagged`] answers — possibly out of
    /// order — are matched back to their slot by correlation id, so a
    /// batch costs about one round-trip per window instead of one per
    /// query.
    ///
    /// Per-query server failures land in that query's slot. A transport
    /// failure tears the connection down, reconnects, and re-issues only
    /// the *unanswered* requests (under the retry policy), so answered
    /// queries are never replayed; rate-limited entries are retried per
    /// policy honouring the server's back-off hint. The connection lock
    /// is held for the whole batch.
    pub fn estimate_batch(&self, specs: &[TargetingSpec]) -> Vec<Result<u64, ClientError>> {
        // One wire:rtt span covers the whole pipelined batch; each
        // in-flight request carries its context so the server parents
        // its per-query spans under it.
        let span = current_context().map(|_| Tracer::global().span("wire:rtt"));
        let trace = span.as_ref().map(|s| s.context());
        let mut results: Vec<Option<Result<u64, ClientError>>> =
            (0..specs.len()).map(|_| None).collect();
        let mut todo: Vec<usize> = (0..specs.len()).collect();
        let mut rate_limit_attempt: u32 = 0;
        let mut transport_attempt: u32 = 0;
        let mut guard = self.conn.lock();
        while !todo.is_empty() {
            if let Err(retry_in) = self.breaker.lock().check(self.now()) {
                for &slot in &todo {
                    results[slot] = Some(Err(ClientError::CircuitOpen { retry_in }));
                }
                break;
            }
            if guard.is_none() {
                match self.open_conn() {
                    Ok(conn) => {
                        *guard = Some(conn);
                        self.metrics.reconnects.inc();
                    }
                    Err(e) => {
                        self.breaker.lock().record_failure(self.now());
                        if self.config.retry.should_retry(transport_attempt) {
                            self.metrics.retries_transport.inc();
                            std::thread::sleep(self.config.retry.backoff(transport_attempt, None));
                            transport_attempt += 1;
                            continue;
                        }
                        // Only the first unanswered slot carries the real
                        // error (io::Error does not clone); the rest
                        // report the connection as gone.
                        let mut original = Some(FrameError::Io(e));
                        for &slot in &todo {
                            results[slot] = Some(Err(ClientError::Transport(
                                original.take().unwrap_or(FrameError::Closed),
                            )));
                        }
                        break;
                    }
                }
            }
            let conn = guard.as_mut().expect("connection just ensured");
            match self.pipeline_round(conn, specs, &todo, &mut results, trace) {
                Ok(rate_limited) => {
                    self.breaker.lock().record_success();
                    transport_attempt = 0;
                    if rate_limited.is_empty() {
                        break;
                    }
                    if self.config.retry.should_retry(rate_limit_attempt) {
                        self.metrics.retries_rate_limited.inc();
                        let hint = rate_limited.iter().filter_map(|(_, h)| *h).max();
                        std::thread::sleep(self.config.retry.backoff(rate_limit_attempt, hint));
                        rate_limit_attempt += 1;
                    } else {
                        for (slot, retry_after) in rate_limited {
                            results[slot] = Some(Err(ClientError::Server {
                                code: ErrorCode::RateLimited,
                                message: "query rate exceeded".into(),
                                retry_after,
                            }));
                        }
                        break;
                    }
                }
                Err(RoundAbort::Transport(e)) => {
                    if let FrameError::Io(io) = &e {
                        if is_timeout(io.kind()) {
                            self.metrics.timeouts_io.inc();
                        }
                    }
                    // Tear down; the next iteration reconnects and
                    // re-issues only what is still unanswered.
                    *guard = None;
                    self.breaker.lock().record_failure(self.now());
                    todo.retain(|&slot| results[slot].is_none());
                    if self.config.retry.should_retry(transport_attempt) {
                        self.metrics.retries_transport.inc();
                        std::thread::sleep(self.config.retry.backoff(transport_attempt, None));
                        transport_attempt += 1;
                    } else {
                        let mut original = Some(e);
                        for &slot in &todo {
                            results[slot] = Some(Err(ClientError::Transport(
                                original.take().unwrap_or(FrameError::Closed),
                            )));
                        }
                        break;
                    }
                }
                Err(RoundAbort::Fatal(e)) => {
                    let mut original = Some(e);
                    for &slot in &todo {
                        if results[slot].is_none() {
                            results[slot] = Some(Err(original
                                .take()
                                .unwrap_or(ClientError::UnexpectedResponse)));
                        }
                    }
                    break;
                }
            }
            todo.retain(|&slot| results[slot].is_none());
        }
        results
            .into_iter()
            .map(|slot| slot.unwrap_or(Err(ClientError::UnexpectedResponse)))
            .collect()
    }

    /// One sliding-window pass over `todo` on the current connection:
    /// issues tagged estimates, keeps up to the configured window in
    /// flight, and files answers into `results` as they arrive.
    /// Rate-limited slots are returned with their back-off hints for the
    /// caller's retry loop.
    fn pipeline_round(
        &self,
        conn: &mut Conn,
        specs: &[TargetingSpec],
        todo: &[usize],
        results: &mut [Option<Result<u64, ClientError>>],
        trace: Option<TraceContext>,
    ) -> Result<Vec<(usize, Option<Duration>)>, RoundAbort> {
        let window = self.config.pipeline_window.max(1);
        let mut rate_limited = Vec::new();
        let mut in_flight: HashMap<u64, usize> = HashMap::new();
        let mut queue = todo.iter().copied();
        let mut next = queue.next();
        loop {
            while in_flight.len() < window {
                let Some(slot) = next else { break };
                let estimate = Request::Estimate {
                    spec: specs[slot].clone(),
                };
                let inner = match trace {
                    Some(ctx) => Request::Traced {
                        trace_id: ctx.trace_id,
                        span_id: ctx.span_id,
                        inner: Box::new(estimate),
                    },
                    None => estimate,
                };
                let request = Request::Tagged {
                    id: slot as u64,
                    inner: Box::new(inner),
                };
                write_frame(&mut conn.writer, &to_bytes(&request))
                    .map_err(RoundAbort::Transport)?;
                in_flight.insert(slot as u64, slot);
                next = queue.next();
            }
            self.metrics.pipeline_inflight.set(in_flight.len() as i64);
            if in_flight.is_empty() {
                return Ok(rate_limited);
            }
            let payload = read_frame(&mut conn.reader).map_err(RoundAbort::Transport)?;
            let response = from_bytes::<Response>(&payload)
                .map_err(|e| RoundAbort::Fatal(ClientError::Codec(e)))?;
            let Response::Tagged { id, inner } = response else {
                return Err(RoundAbort::Fatal(ClientError::UnexpectedResponse));
            };
            let Some(slot) = in_flight.remove(&id) else {
                return Err(RoundAbort::Fatal(ClientError::UnexpectedResponse));
            };
            match Self::trace_unwrap(*inner) {
                Response::Estimate { value } => results[slot] = Some(Ok(value)),
                Response::Error {
                    code: ErrorCode::RateLimited,
                    retry_after,
                    ..
                } => rate_limited.push((slot, retry_after)),
                Response::Error {
                    code,
                    message,
                    retry_after,
                } => {
                    results[slot] = Some(Err(ClientError::Server {
                        code,
                        message,
                        retry_after,
                    }))
                }
                _ => results[slot] = Some(Err(ClientError::UnexpectedResponse)),
            }
        }
    }

    /// Fetches one page of catalog metadata (`(name, feature)` pairs
    /// starting at id `start`); returns the entries and the next page's
    /// start id when more remain.
    pub fn catalog_page(&self, start: u32, limit: u32) -> Result<CatalogPage, ClientError> {
        match self.call(&Request::CatalogPage { start, limit })? {
            Response::CatalogPage { entries, next, .. } => Ok((entries, next)),
            Response::Error {
                code,
                message,
                retry_after,
            } => Err(ClientError::Server {
                code,
                message,
                retry_after,
            }),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Fetches the service's status report (health flag plus a
    /// human-readable body).
    pub fn status(&self) -> Result<(bool, String), ClientError> {
        match self.call(&Request::Status)? {
            Response::StatusReport { healthy, body } => Ok((healthy, body)),
            Response::Error {
                code,
                message,
                retry_after,
            } => Err(ClientError::Server {
                code,
                message,
                retry_after,
            }),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Scrapes the serving process's full Prometheus registry text.
    pub fn metrics(&self) -> Result<String, ClientError> {
        match self.call(&Request::Metrics)? {
            Response::MetricsText { text } => Ok(text),
            Response::Error {
                code,
                message,
                retry_after,
            } => Err(ClientError::Server {
                code,
                message,
                retry_after,
            }),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Pushes one opaque telemetry record to an aggregator sink,
    /// returning the acknowledged sequence number. Rides the same
    /// retry/backoff/breaker machinery as every other call.
    pub fn telemetry_push(
        &self,
        source: &str,
        seq: u64,
        payload: Vec<u8>,
    ) -> Result<u64, ClientError> {
        let request = Request::TelemetryPush {
            source: source.to_string(),
            seq,
            payload,
        };
        match self.call(&request)? {
            Response::TelemetryAck { seq } => Ok(seq),
            Response::Error {
                code,
                message,
                retry_after,
            } => Err(ClientError::Server {
                code,
                message,
                retry_after,
            }),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Fetches the server's query counters.
    pub fn stats(&self) -> Result<(u64, u64, u64), ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats {
                estimates,
                validation_failures,
                rate_limited,
            } => Ok((estimates, validation_failures, rate_limited)),
            Response::Error {
                code,
                message,
                retry_after,
            } => Err(ClientError::Server {
                code,
                message,
                retry_after,
            }),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }
}
