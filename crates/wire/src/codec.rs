//! Binary wire encoding.
//!
//! A small, explicit, length-checked codec over [`bytes`] buffers. Every
//! type that crosses the wire implements [`WireEncode`]/[`WireDecode`].
//! Integers are big-endian; strings are UTF-8 with a u32 length prefix;
//! vectors carry a u32 count; options a presence byte. Decoding is total:
//! malformed input yields a [`CodecError`], never a panic.

use bytes::{Buf, BufMut};

/// Encoding target alias.
pub type Writer = Vec<u8>;

/// Decode failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes than the type requires.
    UnexpectedEof,
    /// Unknown enum tag.
    InvalidTag {
        /// Type being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A declared length exceeds the sanity limit.
    LengthOverflow {
        /// Declared element count or byte length.
        declared: u64,
    },
    /// String bytes were not valid UTF-8.
    InvalidUtf8,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::InvalidTag { what, tag } => write!(f, "invalid tag {tag} for {what}"),
            CodecError::LengthOverflow { declared } => {
                write!(f, "declared length {declared} exceeds limit")
            }
            CodecError::InvalidUtf8 => write!(f, "invalid utf-8 in string"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Maximum element count accepted for any collection (DoS guard).
pub const MAX_ELEMENTS: u64 = 1 << 20;

/// Serialise into a byte buffer.
pub trait WireEncode {
    /// Appends this value's encoding to `buf`.
    fn encode(&self, buf: &mut Writer);
}

/// Deserialise from a byte buffer.
pub trait WireDecode: Sized {
    /// Reads one value, advancing `buf`.
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError>;
}

/// Checks `buf` holds at least `n` bytes.
#[inline]
fn need(buf: &&[u8], n: usize) -> Result<(), CodecError> {
    if buf.remaining() < n {
        Err(CodecError::UnexpectedEof)
    } else {
        Ok(())
    }
}

macro_rules! impl_int {
    ($ty:ty, $put:ident, $get:ident, $size:expr) => {
        impl WireEncode for $ty {
            fn encode(&self, buf: &mut Writer) {
                buf.$put(*self);
            }
        }
        impl WireDecode for $ty {
            fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
                need(buf, $size)?;
                Ok(buf.$get())
            }
        }
    };
}

impl_int!(u8, put_u8, get_u8, 1);
impl_int!(u16, put_u16, get_u16, 2);
impl_int!(u32, put_u32, get_u32, 4);
impl_int!(u64, put_u64, get_u64, 8);

impl WireEncode for bool {
    fn encode(&self, buf: &mut Writer) {
        buf.put_u8(*self as u8);
    }
}

impl WireDecode for bool {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        match u8::decode(buf)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CodecError::InvalidTag { what: "bool", tag }),
        }
    }
}

impl WireEncode for str {
    fn encode(&self, buf: &mut Writer) {
        (self.len() as u32).encode(buf);
        buf.put_slice(self.as_bytes());
    }
}

impl WireEncode for String {
    fn encode(&self, buf: &mut Writer) {
        self.as_str().encode(buf);
    }
}

impl WireDecode for String {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let len = u32::decode(buf)? as u64;
        if len > MAX_ELEMENTS {
            return Err(CodecError::LengthOverflow { declared: len });
        }
        need(buf, len as usize)?;
        let (head, rest) = buf.split_at(len as usize);
        let s = std::str::from_utf8(head)
            .map_err(|_| CodecError::InvalidUtf8)?
            .to_string();
        *buf = rest;
        Ok(s)
    }
}

impl<T: WireEncode> WireEncode for Vec<T> {
    fn encode(&self, buf: &mut Writer) {
        (self.len() as u32).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
}

impl<T: WireDecode> WireDecode for Vec<T> {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let len = u32::decode(buf)? as u64;
        if len > MAX_ELEMENTS {
            return Err(CodecError::LengthOverflow { declared: len });
        }
        let mut out = Vec::with_capacity(len.min(4096) as usize);
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<T: WireEncode> WireEncode for Option<T> {
    fn encode(&self, buf: &mut Writer) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
}

impl<T: WireDecode> WireDecode for Option<T> {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        match u8::decode(buf)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            tag => Err(CodecError::InvalidTag {
                what: "Option",
                tag,
            }),
        }
    }
}

/// Encodes a value to a fresh buffer.
pub fn to_bytes<T: WireEncode + ?Sized>(value: &T) -> Vec<u8> {
    let mut buf = Vec::new();
    value.encode(&mut buf);
    buf
}

/// Decodes a value, requiring the buffer to be fully consumed.
pub fn from_bytes<T: WireDecode>(mut buf: &[u8]) -> Result<T, CodecError> {
    let value = T::decode(&mut buf)?;
    if !buf.is_empty() {
        // Trailing garbage indicates a framing bug or protocol mismatch.
        return Err(CodecError::LengthOverflow {
            declared: buf.len() as u64,
        });
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: WireEncode + WireDecode + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = to_bytes(&v);
        assert_eq!(from_bytes::<T>(&bytes).unwrap(), v);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(u16::MAX);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(true);
        roundtrip(false);
    }

    #[test]
    fn string_and_collections() {
        roundtrip(String::new());
        roundtrip("hello — unicode ✓".to_string());
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(Some("x".to_string()));
        roundtrip(Option::<u32>::None);
        roundtrip(vec![Some(1u8), None]);
    }

    #[test]
    fn eof_is_detected_everywhere() {
        assert_eq!(from_bytes::<u32>(&[1, 2]), Err(CodecError::UnexpectedEof));
        // String longer than remaining bytes.
        let mut buf = Vec::new();
        10u32.encode(&mut buf);
        buf.extend_from_slice(b"abc");
        assert_eq!(from_bytes::<String>(&buf), Err(CodecError::UnexpectedEof));
        // Vec with a count but no elements.
        let bytes = to_bytes(&3u32);
        assert_eq!(
            from_bytes::<Vec<u16>>(&bytes),
            Err(CodecError::UnexpectedEof)
        );
    }

    #[test]
    fn invalid_tags_rejected() {
        assert!(matches!(
            from_bytes::<bool>(&[7]),
            Err(CodecError::InvalidTag {
                what: "bool",
                tag: 7
            })
        ));
        assert!(matches!(
            from_bytes::<Option<u8>>(&[9]),
            Err(CodecError::InvalidTag {
                what: "Option",
                tag: 9
            })
        ));
    }

    #[test]
    fn length_overflow_guard() {
        let bytes = to_bytes(&u32::MAX);
        assert!(matches!(
            from_bytes::<Vec<u8>>(&bytes),
            Err(CodecError::LengthOverflow { .. })
        ));
        assert!(matches!(
            from_bytes::<String>(&bytes),
            Err(CodecError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&5u8);
        bytes.push(0);
        assert!(from_bytes::<u8>(&bytes).is_err());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = Vec::new();
        2u32.encode(&mut buf);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert_eq!(from_bytes::<String>(&buf), Err(CodecError::InvalidUtf8));
    }
}
