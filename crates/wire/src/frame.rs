//! Length-prefixed framing over a byte stream.
//!
//! Each frame is a big-endian `u32` payload length followed by the
//! payload. The length is bounded by [`MAX_FRAME_BYTES`] so a corrupt or
//! hostile peer cannot make the reader allocate unbounded memory — the
//! classic framing pitfall.

use std::io::{Read, Write};
use std::sync::{Arc, OnceLock};

use adcomp_obs::metrics::{Counter, Registry};

/// Upper bound on a frame payload (1 MiB — far above any protocol
/// message, far below trouble).
pub const MAX_FRAME_BYTES: u32 = 1 << 20;

/// `(frames, bytes)` counters for one direction of the wire. Both client
/// and server go through [`write_frame`]/[`read_frame`], so these count
/// process-wide traffic ("out" = frames written, "in" = frames read).
fn traffic(dir: &'static str) -> &'static (Arc<Counter>, Arc<Counter>) {
    static IN: OnceLock<(Arc<Counter>, Arc<Counter>)> = OnceLock::new();
    static OUT: OnceLock<(Arc<Counter>, Arc<Counter>)> = OnceLock::new();
    let cell = if dir == "in" { &IN } else { &OUT };
    cell.get_or_init(|| {
        let reg = Registry::global();
        (
            reg.counter_with("adcomp_wire_frames_total", &[("dir", dir)]),
            reg.counter_with("adcomp_wire_bytes_total", &[("dir", dir)]),
        )
    })
}

/// Framing failures.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying I/O failed.
    Io(std::io::Error),
    /// Peer closed the connection cleanly between frames.
    Closed,
    /// Declared length exceeds [`MAX_FRAME_BYTES`].
    TooLarge {
        /// The declared payload length.
        declared: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::TooLarge { declared } => {
                write!(
                    f,
                    "frame of {declared} bytes exceeds the {MAX_FRAME_BYTES} limit"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame (length prefix + payload) and flushes.
pub fn write_frame<W: Write>(writer: &mut W, payload: &[u8]) -> Result<(), FrameError> {
    assert!(
        payload.len() as u64 <= MAX_FRAME_BYTES as u64,
        "oversized outgoing frame"
    );
    writer.write_all(&(payload.len() as u32).to_be_bytes())?;
    writer.write_all(payload)?;
    writer.flush()?;
    let (frames, bytes) = traffic("out");
    frames.inc();
    bytes.add(4 + payload.len() as u64);
    Ok(())
}

/// Reads one frame. Returns [`FrameError::Closed`] on a clean EOF at a
/// frame boundary; a mid-frame EOF is an I/O error.
pub fn read_frame<R: Read>(reader: &mut R) -> Result<Vec<u8>, FrameError> {
    let mut len_bytes = [0u8; 4];
    // Distinguish clean close (no bytes) from torn frame (some bytes).
    match reader.read(&mut len_bytes)? {
        0 => return Err(FrameError::Closed),
        n => reader.read_exact(&mut len_bytes[n..])?,
    }
    let len = u32::from_be_bytes(len_bytes);
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge { declared: len });
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    let (frames, bytes) = traffic("in");
    frames.inc();
    bytes.add(4 + u64::from(len));
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[7u8; 1000]).unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap(), b"");
        assert_eq!(read_frame(&mut cursor).unwrap(), vec![7u8; 1000]);
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Closed)));
    }

    #[test]
    fn oversized_frame_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_be_bytes());
        let mut cursor = Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameError::TooLarge { .. })
        ));
    }

    #[test]
    fn torn_length_prefix_is_io_error() {
        let mut cursor = Cursor::new(vec![0u8, 0]); // 2 of 4 length bytes
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Io(_))));
    }

    #[test]
    fn torn_payload_is_io_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&10u32.to_be_bytes());
        buf.extend_from_slice(b"abc"); // 3 of 10 payload bytes
        let mut cursor = Cursor::new(buf);
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Io(_))));
    }

    #[test]
    #[should_panic(expected = "oversized outgoing frame")]
    fn oversized_write_panics() {
        let mut sink = Vec::new();
        let huge = vec![0u8; (MAX_FRAME_BYTES + 1) as usize];
        let _ = write_frame(&mut sink, &huge);
    }
}
