//! Wire protocol and transport for the simulated platform APIs.
//!
//! The paper automated the targeting UIs' underlying size-estimate APIs
//! with scripts; this crate is that measurement plumbing for the
//! simulators, built the way the Rust networking guides teach a
//! synchronous stack: explicit framing, a total (never-panicking)
//! decoder, and a thread-per-connection blocking server —
//! no async runtime required at audit query rates.
//!
//! * [`codec`] — length-checked binary encoding of every protocol type;
//! * [`frame`] — u32-length-prefixed frames with a hard size cap;
//! * [`message`] — the request/response protocol (describe, browse,
//!   validate, estimate, stats), plus correlation-id-tagged frames
//!   ([`Request::Tagged`]/[`Response::Tagged`]) that let a client keep
//!   several requests in flight on one connection and match the
//!   possibly-out-of-order answers back by id (pipelining);
//! * [`server`] — expose any [`PlatformApi`](adcomp_platform::PlatformApi)
//!   (a plain [`AdPlatform`](adcomp_platform::AdPlatform) or a
//!   fault-injecting wrapper) on a TCP socket, with optional
//!   token-bucket rate limiting and a connection-fault hook; tagged
//!   requests are answered by a per-connection executor pool while
//!   admission control (fault hook, rate limiter) stays on the read
//!   thread in receive order, so fault plans remain deterministic;
//! * [`client`] — blocking client with timeouts, automatic reconnect,
//!   retry with backoff, a circuit breaker, and pipelined
//!   [`estimate_batch`](Client::estimate_batch) (a sliding window of
//!   tagged requests; reconnects re-issue only unanswered queries).
//!
//! # Distributed tracing
//!
//! The Tagged correlation-id framing extends to trace propagation:
//! when the calling thread is inside an `adcomp-obs` span, the client
//! wraps queries in [`Request::Traced`] carrying the caller's
//! `TraceContext` (`trace_id` + `span_id`; nested *inside* `Tagged`
//! when pipelined, so the pipelining machinery is untouched). The
//! server continues that span around its handling and answers with
//! [`Response::Traced`], echoing its handling time — so one estimate
//! yields a single span tree across processes, and wire RTT splits
//! into network and platform segments. Telemetry also rides the same
//! frames: [`Request::Metrics`] scrapes a process's Prometheus text
//! and [`Request::TelemetryPush`] carries opaque `adcomp-agg` records
//! to an aggregator sink.
//!
//! # Loopback example
//!
//! ```
//! use adcomp_platform::{SimScale, Simulation};
//! use adcomp_targeting::TargetingSpec;
//! use adcomp_wire::{serve, Client, ServerConfig};
//!
//! let sim = Simulation::build(7, SimScale::Test);
//! let handle = serve(sim.linkedin.clone(), "127.0.0.1:0", ServerConfig::default()).unwrap();
//! let client = Client::connect(handle.addr()).unwrap();
//! assert_eq!(client.describe().unwrap().label, "LinkedIn");
//! let reach = client.estimate(&TargetingSpec::everyone()).unwrap();
//! assert!(reach > 0);
//! handle.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod frame;
pub mod message;

pub mod client;
pub mod server;

pub use client::{CatalogPage, Client, ClientConfig, ClientError, InterfaceDescription};
pub use codec::{from_bytes, to_bytes, CodecError, WireDecode, WireEncode};
pub use frame::{read_frame, write_frame, FrameError, MAX_FRAME_BYTES};
pub use message::{ErrorCode, Request, Response};
pub use server::{
    serve, serve_service, ConnectionFault, ConnectionFaultHook, FaultPlanHook, PlatformService,
    ServerConfig, ServerHandle, WireService,
};
