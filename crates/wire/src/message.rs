//! Protocol messages: what the audit's query scripts exchange with a
//! platform endpoint.
//!
//! The shape mirrors what the paper reverse-engineered from the targeting
//! UIs: describe the interface, browse attributes, validate a targeting,
//! and fetch the audience-size estimate for it.

use std::time::Duration;

use adcomp_population::{AgeBucket, Gender};
use adcomp_targeting::{AttributeId, DemographicSpec, Location, OrGroup, TargetingSpec};

use crate::codec::{CodecError, WireDecode, WireEncode, Writer};

/// Client → server messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Interface description (label, catalog size, capabilities).
    Describe,
    /// Name/feature of one attribute.
    AttributeInfo {
        /// Attribute id.
        id: u32,
    },
    /// Validate a targeting spec against interface policy.
    Check {
        /// The spec.
        spec: TargetingSpec,
    },
    /// Rounded audience-size estimate for a spec.
    Estimate {
        /// The spec.
        spec: TargetingSpec,
    },
    /// Query-counter snapshot.
    Stats,
    /// A page of catalog entries (bulk metadata download, so clients need
    /// not issue one `AttributeInfo` per attribute).
    CatalogPage {
        /// First attribute id of the page.
        start: u32,
        /// Maximum entries to return (server may cap).
        limit: u32,
    },
    /// A correlation-id-tagged request: the client may have several of
    /// these in flight on one connection (pipelining) and matches the
    /// server's [`Response::Tagged`] answers — which may arrive out of
    /// order — by id. Nesting `Tagged` inside `Tagged` is a protocol
    /// error.
    Tagged {
        /// Correlation id, echoed verbatim in the response.
        id: u64,
        /// The request to answer.
        inner: Box<Request>,
    },
    /// Service status: health plus a human-readable body (used by the
    /// continuous-audit daemon's status endpoint; a plain platform
    /// server answers healthy with its label).
    Status,
    /// A request carrying the caller's trace context, so the server
    /// continues the caller's span instead of starting fresh and both
    /// sides' JSONL sinks share one `trace_id`. Wraps the real request;
    /// rides *inside* [`Request::Tagged`] when pipelined. Nesting
    /// `Traced` or `Tagged` inside `Traced` is a protocol error.
    Traced {
        /// The caller's trace id (the root span's id).
        trace_id: u64,
        /// The caller's span (what the server's span is parented to).
        span_id: u64,
        /// The request to answer.
        inner: Box<Request>,
    },
    /// Full Prometheus registry text of the serving process — what an
    /// aggregator or dashboard scrapes, over the same connection the
    /// audit runs on.
    Metrics,
    /// Pushed telemetry (a metric snapshot, trace events, or a drift
    /// alert) from `source`, addressed to an aggregator sink. `payload`
    /// is an opaque encoded `adcomp-agg` telemetry record: the wire
    /// layer routes it without knowing its shape. `seq` is the pusher's
    /// delivery counter, echoed in [`Response::TelemetryAck`].
    TelemetryPush {
        /// Stable name of the pushing process (daemon label).
        source: String,
        /// Pusher-side delivery sequence number.
        seq: u64,
        /// Encoded telemetry record.
        payload: Vec<u8>,
    },
}

/// Server → client messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Interface description.
    Described {
        /// Report label ("Facebook", …).
        label: String,
        /// Catalog size.
        catalog_len: u32,
        /// Gender targeting allowed?
        gender_targeting: bool,
        /// Age targeting allowed?
        age_targeting: bool,
        /// Exclusions allowed?
        exclusions: bool,
        /// Same-feature AND allowed?
        same_feature_and: bool,
        /// Estimates are impressions (vs users)?
        impressions: bool,
    },
    /// Attribute metadata.
    AttributeInfo {
        /// Human-readable name.
        name: String,
        /// Feature family.
        feature: u16,
    },
    /// Spec passed validation.
    Ok,
    /// The estimate.
    Estimate {
        /// Rounded value at platform scale.
        value: u64,
    },
    /// Counter snapshot.
    Stats {
        /// Successful estimates served.
        estimates: u64,
        /// Validation rejections.
        validation_failures: u64,
        /// Rate-limit rejections.
        rate_limited: u64,
    },
    /// Request failed.
    Error {
        /// Machine-readable code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
        /// For `RateLimited`: the server-advertised back-off.
        retry_after: Option<Duration>,
    },
    /// A page of catalog metadata.
    CatalogPage {
        /// First id of the page.
        start: u32,
        /// `(name, feature)` per attribute, ids `start..start+len`.
        entries: Vec<(String, u16)>,
        /// Id to request next, when more entries exist.
        next: Option<u32>,
    },
    /// Answer to a [`Request::Tagged`], carrying its correlation id.
    Tagged {
        /// The id of the request this answers.
        id: u64,
        /// The answer itself (never another `Tagged`).
        inner: Box<Response>,
    },
    /// Answer to [`Request::Status`].
    StatusReport {
        /// Whether the service considers itself healthy.
        healthy: bool,
        /// Human-readable status body (epoch counters, uptime, …).
        body: String,
    },
    /// Answer to a [`Request::Traced`]: the inner answer plus how long
    /// the server spent producing it, so the client can attribute
    /// wire-RTT minus server time to the network.
    Traced {
        /// Server-side handling time in microseconds.
        server_us: u64,
        /// The answer itself (never another `Traced`).
        inner: Box<Response>,
    },
    /// Answer to [`Request::Metrics`]: Prometheus text exposition.
    MetricsText {
        /// The registry rendered in Prometheus text format.
        text: String,
    },
    /// Answer to [`Request::TelemetryPush`], echoing its `seq`.
    TelemetryAck {
        /// The acknowledged delivery sequence number.
        seq: u64,
    },
}

impl WireEncode for (String, u16) {
    fn encode(&self, buf: &mut Writer) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
}

impl WireDecode for (String, u16) {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok((String::decode(buf)?, u16::decode(buf)?))
    }
}

/// Error codes carried on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// Targeting violates interface policy.
    InvalidTargeting,
    /// Unknown attribute id.
    UnknownAttribute,
    /// Client exceeded the query rate.
    RateLimited,
    /// Malformed request.
    BadRequest,
    /// Anything else.
    Internal,
}

impl ErrorCode {
    fn tag(self) -> u8 {
        match self {
            ErrorCode::InvalidTargeting => 0,
            ErrorCode::UnknownAttribute => 1,
            ErrorCode::RateLimited => 2,
            ErrorCode::BadRequest => 3,
            ErrorCode::Internal => 4,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, CodecError> {
        Ok(match tag {
            0 => ErrorCode::InvalidTargeting,
            1 => ErrorCode::UnknownAttribute,
            2 => ErrorCode::RateLimited,
            3 => ErrorCode::BadRequest,
            4 => ErrorCode::Internal,
            tag => {
                return Err(CodecError::InvalidTag {
                    what: "ErrorCode",
                    tag,
                })
            }
        })
    }
}

// --- TargetingSpec encoding -------------------------------------------

impl WireEncode for TargetingSpec {
    fn encode(&self, buf: &mut Writer) {
        let genders: Option<Vec<u8>> = self
            .demographics
            .genders
            .as_ref()
            .map(|gs| gs.iter().map(|g| g.index() as u8).collect());
        genders.encode(buf);
        let ages: Option<Vec<u8>> = self
            .demographics
            .ages
            .as_ref()
            .map(|a| a.iter().map(|b| b.index() as u8).collect());
        ages.encode(buf);
        let include: Vec<Vec<u32>> = self
            .include
            .iter()
            .map(|g| g.attributes.iter().map(|a| a.0).collect())
            .collect();
        include.encode(buf);
        let exclude: Vec<u32> = self.exclude.iter().map(|a| a.0).collect();
        exclude.encode(buf);
    }
}

impl WireDecode for TargetingSpec {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let genders: Option<Vec<u8>> = Option::decode(buf)?;
        let genders = genders
            .map(|gs| {
                gs.into_iter()
                    .map(|i| match i {
                        0 => Ok(Gender::Male),
                        1 => Ok(Gender::Female),
                        tag => Err(CodecError::InvalidTag {
                            what: "Gender",
                            tag,
                        }),
                    })
                    .collect::<Result<Vec<_>, _>>()
            })
            .transpose()?;
        let ages: Option<Vec<u8>> = Option::decode(buf)?;
        let ages = ages
            .map(|a| {
                a.into_iter()
                    .map(|i| {
                        if (i as usize) < AgeBucket::ALL.len() {
                            Ok(AgeBucket::from_index(i as usize))
                        } else {
                            Err(CodecError::InvalidTag {
                                what: "AgeBucket",
                                tag: i,
                            })
                        }
                    })
                    .collect::<Result<Vec<_>, _>>()
            })
            .transpose()?;
        let include: Vec<Vec<u32>> = Vec::decode(buf)?;
        let exclude: Vec<u32> = Vec::decode(buf)?;
        Ok(TargetingSpec {
            demographics: DemographicSpec {
                genders,
                ages,
                location: Location::UnitedStates,
            },
            include: include
                .into_iter()
                .map(|g| OrGroup {
                    attributes: g.into_iter().map(AttributeId).collect(),
                })
                .collect(),
            exclude: exclude.into_iter().map(AttributeId).collect(),
        })
    }
}

// --- Request / Response encoding --------------------------------------

impl WireEncode for Request {
    fn encode(&self, buf: &mut Writer) {
        match self {
            Request::Describe => 0u8.encode(buf),
            Request::AttributeInfo { id } => {
                1u8.encode(buf);
                id.encode(buf);
            }
            Request::Check { spec } => {
                2u8.encode(buf);
                spec.encode(buf);
            }
            Request::Estimate { spec } => {
                3u8.encode(buf);
                spec.encode(buf);
            }
            Request::Stats => 4u8.encode(buf),
            Request::CatalogPage { start, limit } => {
                5u8.encode(buf);
                start.encode(buf);
                limit.encode(buf);
            }
            Request::Tagged { id, inner } => {
                6u8.encode(buf);
                id.encode(buf);
                inner.encode(buf);
            }
            Request::Status => 7u8.encode(buf),
            Request::Traced {
                trace_id,
                span_id,
                inner,
            } => {
                8u8.encode(buf);
                trace_id.encode(buf);
                span_id.encode(buf);
                inner.encode(buf);
            }
            Request::Metrics => 9u8.encode(buf),
            Request::TelemetryPush {
                source,
                seq,
                payload,
            } => {
                10u8.encode(buf);
                source.encode(buf);
                seq.encode(buf);
                payload.encode(buf);
            }
        }
    }
}

impl WireDecode for Request {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(match u8::decode(buf)? {
            0 => Request::Describe,
            1 => Request::AttributeInfo {
                id: u32::decode(buf)?,
            },
            2 => Request::Check {
                spec: TargetingSpec::decode(buf)?,
            },
            3 => Request::Estimate {
                spec: TargetingSpec::decode(buf)?,
            },
            4 => Request::Stats,
            5 => Request::CatalogPage {
                start: u32::decode(buf)?,
                limit: u32::decode(buf)?,
            },
            6 => Request::Tagged {
                id: u64::decode(buf)?,
                inner: Box::new(Request::decode(buf)?),
            },
            7 => Request::Status,
            8 => Request::Traced {
                trace_id: u64::decode(buf)?,
                span_id: u64::decode(buf)?,
                inner: Box::new(Request::decode(buf)?),
            },
            9 => Request::Metrics,
            10 => Request::TelemetryPush {
                source: String::decode(buf)?,
                seq: u64::decode(buf)?,
                payload: Vec::decode(buf)?,
            },
            tag => {
                return Err(CodecError::InvalidTag {
                    what: "Request",
                    tag,
                })
            }
        })
    }
}

impl WireEncode for Response {
    fn encode(&self, buf: &mut Writer) {
        match self {
            Response::Described {
                label,
                catalog_len,
                gender_targeting,
                age_targeting,
                exclusions,
                same_feature_and,
                impressions,
            } => {
                0u8.encode(buf);
                label.encode(buf);
                catalog_len.encode(buf);
                gender_targeting.encode(buf);
                age_targeting.encode(buf);
                exclusions.encode(buf);
                same_feature_and.encode(buf);
                impressions.encode(buf);
            }
            Response::AttributeInfo { name, feature } => {
                1u8.encode(buf);
                name.encode(buf);
                feature.encode(buf);
            }
            Response::Ok => 2u8.encode(buf),
            Response::Estimate { value } => {
                3u8.encode(buf);
                value.encode(buf);
            }
            Response::Stats {
                estimates,
                validation_failures,
                rate_limited,
            } => {
                4u8.encode(buf);
                estimates.encode(buf);
                validation_failures.encode(buf);
                rate_limited.encode(buf);
            }
            Response::Error {
                code,
                message,
                retry_after,
            } => {
                5u8.encode(buf);
                code.tag().encode(buf);
                message.encode(buf);
                // Carried as whole microseconds: plenty for back-off hints.
                retry_after.map(|d| d.as_micros() as u64).encode(buf);
            }
            Response::CatalogPage {
                start,
                entries,
                next,
            } => {
                6u8.encode(buf);
                start.encode(buf);
                entries.encode(buf);
                next.encode(buf);
            }
            Response::Tagged { id, inner } => {
                7u8.encode(buf);
                id.encode(buf);
                inner.encode(buf);
            }
            Response::StatusReport { healthy, body } => {
                8u8.encode(buf);
                healthy.encode(buf);
                body.encode(buf);
            }
            Response::Traced { server_us, inner } => {
                9u8.encode(buf);
                server_us.encode(buf);
                inner.encode(buf);
            }
            Response::MetricsText { text } => {
                10u8.encode(buf);
                text.encode(buf);
            }
            Response::TelemetryAck { seq } => {
                11u8.encode(buf);
                seq.encode(buf);
            }
        }
    }
}

impl WireDecode for Response {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(match u8::decode(buf)? {
            0 => Response::Described {
                label: String::decode(buf)?,
                catalog_len: u32::decode(buf)?,
                gender_targeting: bool::decode(buf)?,
                age_targeting: bool::decode(buf)?,
                exclusions: bool::decode(buf)?,
                same_feature_and: bool::decode(buf)?,
                impressions: bool::decode(buf)?,
            },
            1 => Response::AttributeInfo {
                name: String::decode(buf)?,
                feature: u16::decode(buf)?,
            },
            2 => Response::Ok,
            3 => Response::Estimate {
                value: u64::decode(buf)?,
            },
            4 => Response::Stats {
                estimates: u64::decode(buf)?,
                validation_failures: u64::decode(buf)?,
                rate_limited: u64::decode(buf)?,
            },
            5 => Response::Error {
                code: ErrorCode::from_tag(u8::decode(buf)?)?,
                message: String::decode(buf)?,
                retry_after: Option::<u64>::decode(buf)?.map(Duration::from_micros),
            },
            6 => Response::CatalogPage {
                start: u32::decode(buf)?,
                entries: Vec::decode(buf)?,
                next: Option::decode(buf)?,
            },
            7 => Response::Tagged {
                id: u64::decode(buf)?,
                inner: Box::new(Response::decode(buf)?),
            },
            8 => Response::StatusReport {
                healthy: bool::decode(buf)?,
                body: String::decode(buf)?,
            },
            9 => Response::Traced {
                server_us: u64::decode(buf)?,
                inner: Box::new(Response::decode(buf)?),
            },
            10 => Response::MetricsText {
                text: String::decode(buf)?,
            },
            11 => Response::TelemetryAck {
                seq: u64::decode(buf)?,
            },
            tag => {
                return Err(CodecError::InvalidTag {
                    what: "Response",
                    tag,
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{from_bytes, to_bytes};

    fn roundtrip_req(r: Request) {
        assert_eq!(from_bytes::<Request>(&to_bytes(&r)).unwrap(), r);
    }

    fn roundtrip_resp(r: Response) {
        assert_eq!(from_bytes::<Response>(&to_bytes(&r)).unwrap(), r);
    }

    fn sample_spec() -> TargetingSpec {
        TargetingSpec::builder()
            .genders([Gender::Female])
            .ages([AgeBucket::A18_24, AgeBucket::A55Plus])
            .any_of([AttributeId(1), AttributeId(2)])
            .attribute(AttributeId(9))
            .exclude([AttributeId(4)])
            .build()
    }

    #[test]
    fn catalog_page_roundtrips() {
        roundtrip_req(Request::CatalogPage {
            start: 10,
            limit: 100,
        });
        roundtrip_resp(Response::CatalogPage {
            start: 10,
            entries: vec![
                ("Games — Racing games".into(), 0),
                ("Topics — Manga".into(), 1),
            ],
            next: Some(12),
        });
        roundtrip_resp(Response::CatalogPage {
            start: 0,
            entries: vec![],
            next: None,
        });
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_req(Request::Describe);
        roundtrip_req(Request::AttributeInfo { id: 42 });
        roundtrip_req(Request::Check {
            spec: sample_spec(),
        });
        roundtrip_req(Request::Estimate {
            spec: TargetingSpec::everyone(),
        });
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::Status);
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_resp(Response::Described {
            label: "Facebook".into(),
            catalog_len: 667,
            gender_targeting: true,
            age_targeting: true,
            exclusions: true,
            same_feature_and: true,
            impressions: false,
        });
        roundtrip_resp(Response::AttributeInfo {
            name: "Games — Racing games".into(),
            feature: 0,
        });
        roundtrip_resp(Response::Ok);
        roundtrip_resp(Response::Estimate { value: 5_200_000 });
        roundtrip_resp(Response::Stats {
            estimates: 1,
            validation_failures: 2,
            rate_limited: 3,
        });
        roundtrip_resp(Response::Error {
            code: ErrorCode::RateLimited,
            message: "slow down".into(),
            retry_after: Some(Duration::from_millis(250)),
        });
        roundtrip_resp(Response::Error {
            code: ErrorCode::Internal,
            message: "transient".into(),
            retry_after: None,
        });
        roundtrip_resp(Response::StatusReport {
            healthy: true,
            body: "epoch 3/10 · 0 alerts".into(),
        });
        roundtrip_resp(Response::StatusReport {
            healthy: false,
            body: String::new(),
        });
    }

    #[test]
    fn spec_roundtrip_preserves_semantics() {
        let spec = sample_spec();
        let decoded = from_bytes::<TargetingSpec>(&to_bytes(&spec)).unwrap();
        assert_eq!(decoded, spec);
        let everyone = from_bytes::<TargetingSpec>(&to_bytes(&TargetingSpec::everyone())).unwrap();
        assert!(everyone.demographics.is_unconstrained());
    }

    #[test]
    fn bad_gender_tag_rejected() {
        // Hand-craft a spec with gender index 9.
        let mut buf = Vec::new();
        Some(vec![9u8]).encode(&mut buf);
        Option::<Vec<u8>>::None.encode(&mut buf);
        Vec::<Vec<u32>>::new().encode(&mut buf);
        Vec::<u32>::new().encode(&mut buf);
        assert!(matches!(
            from_bytes::<TargetingSpec>(&buf),
            Err(CodecError::InvalidTag {
                what: "Gender",
                tag: 9
            })
        ));
    }

    #[test]
    fn tagged_messages_roundtrip() {
        roundtrip_req(Request::Tagged {
            id: 0xDEAD_BEEF_0042,
            inner: Box::new(Request::Estimate {
                spec: sample_spec(),
            }),
        });
        roundtrip_resp(Response::Tagged {
            id: 7,
            inner: Box::new(Response::Estimate { value: 1_000 }),
        });
        roundtrip_resp(Response::Tagged {
            id: u64::MAX,
            inner: Box::new(Response::Error {
                code: ErrorCode::RateLimited,
                message: "slow down".into(),
                retry_after: Some(Duration::from_millis(1)),
            }),
        });
    }

    #[test]
    fn traced_messages_roundtrip() {
        roundtrip_req(Request::Traced {
            trace_id: 0x0042_0000_0000_0001,
            span_id: 0x0042_0000_0000_0007,
            inner: Box::new(Request::Estimate {
                spec: sample_spec(),
            }),
        });
        // Pipelined form: Traced rides inside Tagged.
        roundtrip_req(Request::Tagged {
            id: 3,
            inner: Box::new(Request::Traced {
                trace_id: 1,
                span_id: 2,
                inner: Box::new(Request::Estimate {
                    spec: TargetingSpec::everyone(),
                }),
            }),
        });
        roundtrip_resp(Response::Traced {
            server_us: 1_234,
            inner: Box::new(Response::Estimate { value: 5_000 }),
        });
        roundtrip_resp(Response::Tagged {
            id: 3,
            inner: Box::new(Response::Traced {
                server_us: 9,
                inner: Box::new(Response::Estimate { value: 10 }),
            }),
        });
    }

    #[test]
    fn telemetry_messages_roundtrip() {
        roundtrip_req(Request::Metrics);
        roundtrip_resp(Response::MetricsText {
            text: "# TYPE x counter\nx 1\n".into(),
        });
        roundtrip_req(Request::TelemetryPush {
            source: "daemon-a".into(),
            seq: 41,
            payload: vec![0, 1, 2, 255],
        });
        roundtrip_req(Request::TelemetryPush {
            source: String::new(),
            seq: 0,
            payload: Vec::new(),
        });
        roundtrip_resp(Response::TelemetryAck { seq: 41 });
    }

    #[test]
    fn unknown_message_tags_rejected() {
        assert!(from_bytes::<Request>(&[99]).is_err());
        assert!(from_bytes::<Response>(&[99]).is_err());
        assert!(matches!(
            ErrorCode::from_tag(200),
            Err(CodecError::InvalidTag {
                what: "ErrorCode",
                tag: 200
            })
        ));
    }
}
