//! Threaded TCP server exposing a platform over the wire protocol.
//!
//! One accept thread plus one thread per connection — the smoltcp-style
//! synchronous event model is plenty for an audit workload of one or a
//! few measurement clients. A shared token-bucket rate limiter models the
//! query throttling real platforms apply (and that the paper's ethics
//! section respected from the client side).
//!
//! The server dispatches to a [`WireService`] — any request handler.
//! [`serve`] wraps a [`PlatformApi`] in the standard [`PlatformService`]
//! so the same transport can expose a plain
//! [`AdPlatform`](adcomp_platform::AdPlatform) or a
//! [`FaultyPlatform`](adcomp_platform::FaultyPlatform), while
//! [`serve_service`] lets non-platform services (the continuous-audit
//! daemon's status endpoint) ride the same frames, rate limiting, and
//! drain path. For
//! *transport-level* faults a [`ConnectionFaultHook`] in [`ServerConfig`]
//! is consulted once per received frame (indexed by a global request
//! counter) and may kill the connection — cleanly between frames, or
//! mid-frame, leaving the client a torn partial payload. Dropped requests
//! are never dispatched to the platform, so the platform's own fault and
//! query counters stay deterministic whatever the transport does.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use adcomp_obs::metrics::{Counter, Registry};
use adcomp_obs::trace::{TraceContext, Tracer};
use adcomp_platform::{
    EstimateRequest, FaultKind, FaultPlan, PlatformApi, PlatformError, TokenBucket,
};
use adcomp_targeting::ValidationError;
use parking_lot::Mutex;

use crate::codec::{from_bytes, to_bytes};
use crate::frame::{read_frame, write_frame, FrameError};
use crate::message::{ErrorCode, Request, Response};

/// A request handler behind the wire transport.
///
/// The server owns framing, fault injection, rate limiting, pipelining
/// and the shutdown drain; the service only turns one [`Request`] into
/// one [`Response`]. [`PlatformService`] is the standard implementation
/// over a [`PlatformApi`]; the continuous-audit daemon serves its
/// status endpoint through its own implementation.
pub trait WireService: Send + Sync {
    /// Answers one request. Must not block indefinitely.
    fn handle(&self, request: Request) -> Response;

    /// Called when the transport rejects a request for rate (so the
    /// service can keep its own throttling counters).
    fn note_rate_limited(&self) {}
}

/// The standard [`WireService`]: dispatches the full platform protocol
/// (describe/check/estimate/catalog/stats) to a [`PlatformApi`] and
/// answers [`Request::Status`] as healthy with the platform label.
pub struct PlatformService(pub Arc<dyn PlatformApi>);

impl WireService for PlatformService {
    fn handle(&self, request: Request) -> Response {
        handle_request(self.0.as_ref(), request)
    }

    fn note_rate_limited(&self) {
        self.0.note_rate_limited();
    }
}

/// A transport-level fault decision for one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnectionFault {
    /// Close the connection instead of answering, at a frame boundary.
    Drop,
    /// Write a torn partial frame (length prefix promising more bytes
    /// than follow), then close.
    DropMidFrame,
}

/// Decides, per received request, whether to kill the connection.
///
/// `index` is a global counter across all connections, incremented once
/// per frame successfully read — so a deterministic hook yields a
/// deterministic fault sequence even across reconnects.
pub trait ConnectionFaultHook: Send + Sync {
    /// The fault (if any) for request number `index`.
    fn fault_for(&self, index: u64) -> Option<ConnectionFault>;
}

/// Adapts a [`FaultPlan`]'s `Drop` rules into a [`ConnectionFaultHook`];
/// platform-level rules in the same plan are ignored here (the
/// [`FaultyPlatform`](adcomp_platform::FaultyPlatform) handles those).
#[derive(Clone, Debug)]
pub struct FaultPlanHook(pub FaultPlan);

impl ConnectionFaultHook for FaultPlanHook {
    fn fault_for(&self, index: u64) -> Option<ConnectionFault> {
        match self.0.action_at(index) {
            Some(FaultKind::Drop { mid_frame: true }) => Some(ConnectionFault::DropMidFrame),
            Some(FaultKind::Drop { mid_frame: false }) => Some(ConnectionFault::Drop),
            _ => None,
        }
    }
}

/// Server tuning.
#[derive(Clone)]
pub struct ServerConfig {
    /// Requests per second admitted across all connections; `None`
    /// disables rate limiting.
    pub rate_limit: Option<f64>,
    /// Burst capacity of the limiter (ignored when `rate_limit` is
    /// `None`; must be ≥ 1 otherwise).
    pub burst: f64,
    /// Transport-fault injector, consulted once per received frame.
    pub fault_hook: Option<Arc<dyn ConnectionFaultHook>>,
    /// Executor threads per connection for pipelined
    /// ([`Request::Tagged`]) requests. Fault hooks and rate limiting are
    /// always applied on the read thread in receive order, so they stay
    /// deterministic at any setting; with the default of 1 the platform
    /// itself also sees requests in receive order, which keeps
    /// platform-level fault plans deterministic too. Raise it only when
    /// that ordering does not matter.
    pub executors: usize,
    /// How long [`ServerHandle::shutdown`] waits for in-flight frames
    /// (read but not yet answered) to finish before force-closing
    /// connections.
    pub drain_timeout: Duration,
    /// Tracer that server-side continuation spans ([`Request::Traced`])
    /// are recorded into; `None` uses the process-global tracer. Inject
    /// one to capture a server's half of a distributed trace separately
    /// (tests do, to prove client and server sinks share a `trace_id`).
    pub tracer: Option<Arc<Tracer>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            rate_limit: None,
            burst: 50.0,
            fault_hook: None,
            executors: 1,
            drain_timeout: Duration::from_secs(5),
            tracer: None,
        }
    }
}

impl ServerConfig {
    /// Rate-limited config (requests/second with the given burst).
    pub fn rate_limited(rate: f64, burst: f64) -> Self {
        ServerConfig {
            rate_limit: Some(rate),
            burst,
            ..ServerConfig::default()
        }
    }

    /// Attaches a connection-fault hook (builder style).
    pub fn with_fault_hook(mut self, hook: Arc<dyn ConnectionFaultHook>) -> Self {
        self.fault_hook = Some(hook);
        self
    }

    /// Sets the per-connection executor count for pipelined requests
    /// (builder style; clamped to at least 1).
    pub fn with_executors(mut self, executors: usize) -> Self {
        self.executors = executors.max(1);
        self
    }

    /// Sets the shutdown drain window (builder style).
    pub fn with_drain_timeout(mut self, timeout: Duration) -> Self {
        self.drain_timeout = timeout;
        self
    }

    /// Records server-side continuation spans into `tracer` instead of
    /// the process-global one (builder style).
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("rate_limit", &self.rate_limit)
            .field("burst", &self.burst)
            .field("fault_hook", &self.fault_hook.as_ref().map(|_| "…"))
            .field("executors", &self.executors)
            .field("drain_timeout", &self.drain_timeout)
            .field("tracer", &self.tracer.as_ref().map(|_| "…"))
            .finish()
    }
}

/// Per-connection count of frames read off the socket but not yet
/// answered (or dropped by the fault hook). Shutdown drains on this.
struct ConnTracker {
    in_flight: AtomicU64,
}

/// RAII accounting for one read frame: created right after `read_frame`
/// succeeds, dropped once its response is written (the executor side for
/// pipelined requests) or the frame is otherwise disposed of.
struct WorkToken {
    tracker: Arc<ConnTracker>,
}

impl WorkToken {
    fn new(tracker: &Arc<ConnTracker>) -> WorkToken {
        tracker.in_flight.fetch_add(1, Ordering::AcqRel);
        WorkToken {
            tracker: tracker.clone(),
        }
    }
}

impl Drop for WorkToken {
    fn drop(&mut self) {
        self.tracker.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A live connection as the shutdown path sees it.
struct ConnReg {
    stream: TcpStream,
    tracker: Arc<ConnTracker>,
    handle: Option<std::thread::JoinHandle<()>>,
}

type ConnRegistry = Arc<Mutex<Vec<ConnReg>>>;

/// Handle to a running server; shutting down joins all threads.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    conns: ConnRegistry,
    drain_timeout: Duration,
}

impl ServerHandle {
    /// The bound address (use port 0 to pick a free port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and **drains**: every frame already read off a
    /// socket gets its response written (up to the configured
    /// [`drain_timeout`](ServerConfig::drain_timeout)) before
    /// connections are closed and their threads joined. No new frames
    /// are read once the signal lands, so a pipelining client can
    /// distinguish a draining endpoint (all admitted requests answered)
    /// from a killed one (responses lost mid-window).
    pub fn shutdown(mut self) {
        self.shutdown_now();
    }

    fn shutdown_now(&mut self) {
        self.signal_shutdown();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let conns = std::mem::take(&mut *self.conns.lock());
        // Wait for read-but-unanswered frames; the pipeline executors
        // keep writing responses while the read threads idle.
        let deadline = Instant::now() + self.drain_timeout;
        for conn in &conns {
            while conn.tracker.in_flight.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        // A timed-out drain abandons frames a client already sent; that
        // must never pass silently — the client sees lost responses.
        let abandoned: u64 = conns
            .iter()
            .map(|c| c.tracker.in_flight.load(Ordering::Acquire))
            .sum();
        if abandoned > 0 {
            Registry::global()
                .counter("adcomp_wire_drain_abandoned")
                .add(abandoned);
            adcomp_obs::warn!(
                "wire shutdown drain timed out after {:?}: abandoning {abandoned} in-flight \
                 frame(s)",
                self.drain_timeout
            );
        }
        // Now actively close: this unblocks read threads parked in
        // `read_frame` on clients that never hang up.
        for conn in &conns {
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        }
        for mut conn in conns {
            if let Some(h) = conn.handle.take() {
                let _ = h.join();
            }
        }
    }

    fn signal_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.shutdown_now();
        }
    }
}

/// Starts serving `platform` on `addr` (e.g. `"127.0.0.1:0"`) through
/// the standard [`PlatformService`].
pub fn serve(
    platform: Arc<dyn PlatformApi>,
    addr: &str,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    serve_service(Arc::new(PlatformService(platform)), addr, config)
}

/// Unwraps [`Request::Traced`] in front of any service: continues the
/// caller's span on the server tracer for the duration of the inner
/// handling and wraps the answer in [`Response::Traced`] with the
/// measured server time. Untraced requests pass through untouched, so
/// the wrapper costs one enum match when tracing is off the wire.
struct TracedService {
    inner: Arc<dyn WireService>,
    tracer: Option<Arc<Tracer>>,
}

impl TracedService {
    fn tracer(&self) -> &Tracer {
        match &self.tracer {
            Some(t) => t.as_ref(),
            None => Tracer::global(),
        }
    }
}

impl WireService for TracedService {
    fn handle(&self, request: Request) -> Response {
        match request {
            Request::Traced {
                trace_id,
                span_id,
                inner,
            } => {
                if matches!(*inner, Request::Traced { .. } | Request::Tagged { .. }) {
                    return Response::Error {
                        code: ErrorCode::BadRequest,
                        message: "nested Traced/Tagged inside Traced".into(),
                        retry_after: None,
                    };
                }
                let started = Instant::now();
                let ctx = TraceContext {
                    trace_id,
                    span_id,
                    parent: None,
                };
                let name = match &*inner {
                    Request::Estimate { .. } => "platform:estimate",
                    Request::Check { .. } => "platform:check",
                    _ => "platform:serve",
                };
                let span = self.tracer().continue_span(ctx, name, &[]);
                let response = self.inner.handle(*inner);
                drop(span);
                Response::Traced {
                    server_us: started.elapsed().as_micros() as u64,
                    inner: Box::new(response),
                }
            }
            other => self.inner.handle(other),
        }
    }

    fn note_rate_limited(&self) {
        self.inner.note_rate_limited();
    }
}

/// Starts serving an arbitrary [`WireService`] on `addr`.
pub fn serve_service(
    service: Arc<dyn WireService>,
    addr: &str,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let service: Arc<dyn WireService> = Arc::new(TracedService {
        inner: service,
        tracer: config.tracer.clone(),
    });
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let limiter = config.rate_limit.map(|rate| {
        Arc::new(Mutex::new((
            TokenBucket::new(rate, config.burst),
            Instant::now(),
        )))
    });
    let fault_hook = config.fault_hook;
    let executors = config.executors.max(1);
    // One counter across all connections: reconnecting does not reset the
    // fault schedule.
    let request_counter = Arc::new(AtomicU64::new(0));
    let conns: ConnRegistry = Arc::new(Mutex::new(Vec::new()));

    let accept_shutdown = shutdown.clone();
    let accept_conns = conns.clone();
    let accept_thread = std::thread::Builder::new()
        .name("adcomp-wire-accept".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let Ok(reg_stream) = stream.try_clone() else {
                    continue;
                };
                let service = service.clone();
                let limiter = limiter.clone();
                let fault_hook = fault_hook.clone();
                let request_counter = request_counter.clone();
                let conn_shutdown = accept_shutdown.clone();
                let tracker = Arc::new(ConnTracker {
                    in_flight: AtomicU64::new(0),
                });
                let conn_tracker = tracker.clone();
                // Connection threads are not joined here (that would
                // deadlock a shutdown while a client keeps its connection
                // open — the thread blocks in read_frame); the registry
                // keeps their handles so shutdown can drain in-flight
                // frames, close the sockets, and then join.
                let handle = std::thread::spawn(move || {
                    let _ = handle_connection(
                        stream,
                        service,
                        limiter,
                        fault_hook,
                        request_counter,
                        conn_shutdown,
                        executors,
                        conn_tracker,
                    );
                });
                accept_conns.lock().push(ConnReg {
                    stream: reg_stream,
                    tracker,
                    handle: Some(handle),
                });
            }
        })
        .expect("spawn accept thread");

    Ok(ServerHandle {
        addr,
        shutdown,
        accept_thread: Some(accept_thread),
        conns,
        drain_timeout: config.drain_timeout,
    })
}

type SharedLimiter = Arc<Mutex<(TokenBucket, Instant)>>;

/// `adcomp_wire_requests_total{kind}` — requests dispatched to the
/// platform, by request kind.
fn requests_total(kind: &'static str) -> Arc<Counter> {
    Registry::global().counter_with("adcomp_wire_requests_total", &[("kind", kind)])
}

/// Connections killed by the transport fault hook.
fn conn_drops_total() -> Arc<Counter> {
    Registry::global().counter("adcomp_wire_conn_drops_total")
}

/// Per-connection executor pool answering pipelined ([`Request::Tagged`])
/// requests off the read thread. Responses go through a shared writer
/// lock, so they interleave with read-thread writes frame-atomically but
/// may leave in any order — the correlation id is what the client keys on.
struct PipelinePool {
    jobs: Option<crossbeam::channel::Sender<(u64, Request, WorkToken)>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl PipelinePool {
    fn start(
        executors: usize,
        service: Arc<dyn WireService>,
        writer: Arc<Mutex<TcpStream>>,
    ) -> Self {
        let (tx, rx) = crossbeam::channel::unbounded::<(u64, Request, WorkToken)>();
        let workers = (0..executors.max(1))
            .map(|i| {
                let rx = rx.clone();
                let service = service.clone();
                let writer = writer.clone();
                std::thread::Builder::new()
                    .name(format!("adcomp-wire-exec-{i}"))
                    .spawn(move || {
                        for (id, request, token) in rx.iter() {
                            let inner = service.handle(request);
                            let frame = to_bytes(&Response::Tagged {
                                id,
                                inner: Box::new(inner),
                            });
                            // A failed write means the client is gone;
                            // keep draining so shutdown stays clean.
                            let _ = write_frame(&mut *writer.lock(), &frame);
                            // The frame counts as in-flight until its
                            // response hits the socket.
                            drop(token);
                        }
                    })
                    .expect("spawn pipeline executor")
            })
            .collect();
        PipelinePool {
            jobs: Some(tx),
            workers,
        }
    }

    fn submit(&self, id: u64, request: Request, token: WorkToken) {
        let _ = self
            .jobs
            .as_ref()
            .expect("pool is running")
            .send((id, request, token));
    }

    fn join(mut self) {
        self.jobs.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_connection(
    stream: TcpStream,
    service: Arc<dyn WireService>,
    limiter: Option<SharedLimiter>,
    fault_hook: Option<Arc<dyn ConnectionFaultHook>>,
    request_counter: Arc<AtomicU64>,
    shutdown: Arc<AtomicBool>,
    executors: usize,
    tracker: Arc<ConnTracker>,
) -> Result<(), FrameError> {
    stream.set_nodelay(true)?;
    let writer = Arc::new(Mutex::new(stream.try_clone()?));
    let mut reader = BufReader::new(stream);
    // Started on the first tagged request, so plain request/response
    // connections never pay for extra threads.
    let mut pipeline: Option<PipelinePool> = None;
    let result = read_loop(
        &mut reader,
        &writer,
        &service,
        &limiter,
        &fault_hook,
        &request_counter,
        &shutdown,
        executors,
        &mut pipeline,
        &tracker,
    );
    if let Some(pool) = pipeline {
        // Drain in-flight work before the connection thread exits.
        pool.join();
    }
    result
}

/// Checks the shared limiter for one request, in receive order on the
/// read thread. Returns the rejection to send when the request is over
/// the rate.
fn rate_limit_check(
    limiter: &Option<SharedLimiter>,
    service: &dyn WireService,
) -> Option<Response> {
    let limiter = limiter.as_ref()?;
    let mut guard = limiter.lock();
    let (bucket, epoch) = &mut *guard;
    if bucket.try_acquire(epoch.elapsed()) {
        return None;
    }
    let retry_after = bucket.retry_after(epoch.elapsed());
    drop(guard);
    service.note_rate_limited();
    Some(Response::Error {
        code: ErrorCode::RateLimited,
        message: "query rate exceeded".into(),
        retry_after: Some(retry_after),
    })
}

#[allow(clippy::too_many_arguments)]
fn read_loop(
    reader: &mut BufReader<TcpStream>,
    writer: &Arc<Mutex<TcpStream>>,
    service: &Arc<dyn WireService>,
    limiter: &Option<SharedLimiter>,
    fault_hook: &Option<Arc<dyn ConnectionFaultHook>>,
    request_counter: &Arc<AtomicU64>,
    shutdown: &Arc<AtomicBool>,
    executors: usize,
    pipeline: &mut Option<PipelinePool>,
    tracker: &Arc<ConnTracker>,
) -> Result<(), FrameError> {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let payload = match read_frame(reader) {
            Ok(p) => p,
            Err(FrameError::Closed) => return Ok(()),
            Err(e) => return Err(e),
        };
        // From here until its response is on the socket (or the fault
        // hook disposes of it) this frame is in-flight for drain
        // accounting.
        let token = WorkToken::new(tracker);
        if let Some(hook) = fault_hook {
            let index = request_counter.fetch_add(1, Ordering::SeqCst);
            match hook.fault_for(index) {
                Some(ConnectionFault::Drop) => {
                    conn_drops_total().inc();
                    return Ok(());
                }
                Some(ConnectionFault::DropMidFrame) => {
                    conn_drops_total().inc();
                    // Promise a frame, deliver half of it, hang up.
                    let mut w = writer.lock();
                    w.write_all(&64u32.to_be_bytes())?;
                    w.write_all(&[0u8; 16])?;
                    w.flush()?;
                    return Ok(());
                }
                None => {}
            }
        }
        let response = match from_bytes::<Request>(&payload) {
            Err(e) => Response::Error {
                code: ErrorCode::BadRequest,
                message: e.to_string(),
                retry_after: None,
            },
            Ok(Request::Tagged { id, inner }) => {
                // Pipelined request: admission control (fault hook above,
                // rate limiter here) runs on the read thread in receive
                // order — determinism is independent of the executor
                // count — and only admitted platform work is dispatched.
                let rejection = if matches!(*inner, Request::Tagged { .. }) {
                    Some(Response::Error {
                        code: ErrorCode::BadRequest,
                        message: "nested Tagged request".into(),
                        retry_after: None,
                    })
                } else {
                    rate_limit_check(limiter, service.as_ref())
                };
                match rejection {
                    Some(error) => Response::Tagged {
                        id,
                        inner: Box::new(error),
                    },
                    None => {
                        pipeline
                            .get_or_insert_with(|| {
                                PipelinePool::start(executors, service.clone(), writer.clone())
                            })
                            .submit(id, *inner, token);
                        continue;
                    }
                }
            }
            Ok(request) => match rate_limit_check(limiter, service.as_ref()) {
                Some(error) => error,
                None => service.handle(request),
            },
        };
        write_frame(&mut *writer.lock(), &to_bytes(&response))?;
        // Answered inline on the read thread: retire the frame.
        drop(token);
    }
}

fn handle_request(platform: &dyn PlatformApi, request: Request) -> Response {
    requests_total(match &request {
        Request::Describe => "describe",
        Request::AttributeInfo { .. } => "attribute_info",
        Request::Check { .. } => "check",
        Request::Estimate { .. } => "estimate",
        Request::CatalogPage { .. } => "catalog_page",
        Request::Stats => "stats",
        Request::Status => "status",
        Request::Tagged { .. } => "tagged",
        Request::Traced { .. } => "traced",
        Request::Metrics => "metrics",
        Request::TelemetryPush { .. } => "telemetry_push",
    })
    .inc();
    match request {
        Request::Describe => {
            let caps = &platform.config().capabilities;
            Response::Described {
                label: platform.label().to_string(),
                catalog_len: platform.catalog().len() as u32,
                gender_targeting: caps.gender_targeting,
                age_targeting: caps.age_targeting,
                exclusions: caps.exclusions,
                same_feature_and: caps.same_feature_and,
                impressions: platform.config().estimate_kind
                    == adcomp_platform::EstimateKind::Impressions,
            }
        }
        Request::AttributeInfo { id } => {
            match platform.catalog().get(adcomp_targeting::AttributeId(id)) {
                Some(entry) => Response::AttributeInfo {
                    name: entry.name.clone(),
                    feature: entry.feature.0,
                },
                None => Response::Error {
                    code: ErrorCode::UnknownAttribute,
                    message: format!("attribute #{id} not in catalog"),
                    retry_after: None,
                },
            }
        }
        Request::Check { spec } => match platform.check(&spec) {
            Ok(()) => Response::Ok,
            Err(e) => platform_error_to_response(e),
        },
        Request::Estimate { spec } => {
            let req = EstimateRequest::new(spec, platform.config().default_objective);
            match platform.reach_estimate(&req) {
                Ok(est) => Response::Estimate { value: est.value },
                Err(e) => platform_error_to_response(e),
            }
        }
        Request::CatalogPage { start, limit } => {
            // Cap pages to keep frames well under MAX_FRAME_BYTES.
            const PAGE_CAP: u32 = 1_000;
            let total = platform.catalog().len() as u32;
            let start = start.min(total);
            let end = start.saturating_add(limit.min(PAGE_CAP)).min(total);
            let entries: Vec<(String, u16)> = (start..end)
                .map(|id| {
                    let e = platform
                        .catalog()
                        .get(adcomp_targeting::AttributeId(id))
                        .expect("id < total");
                    (e.name.clone(), e.feature.0)
                })
                .collect();
            let next = (end < total).then_some(end);
            Response::CatalogPage {
                start,
                entries,
                next,
            }
        }
        Request::Stats => {
            let s = platform.stats();
            Response::Stats {
                estimates: s.estimates,
                validation_failures: s.validation_failures,
                rate_limited: s.rate_limited,
            }
        }
        // A platform endpoint is healthy iff it is answering at all.
        Request::Status => Response::StatusReport {
            healthy: true,
            body: format!("platform {} serving", platform.label()),
        },
        // The read loop unwraps tagging before dispatch; reaching this
        // arm means a nested Tagged slipped through.
        Request::Tagged { .. } => Response::Error {
            code: ErrorCode::BadRequest,
            message: "nested Tagged request".into(),
            retry_after: None,
        },
        // The TracedService wrapper unwraps tracing before dispatch.
        Request::Traced { .. } => Response::Error {
            code: ErrorCode::BadRequest,
            message: "nested Traced request".into(),
            retry_after: None,
        },
        // The scrape endpoint: whatever this process has recorded.
        Request::Metrics => Response::MetricsText {
            text: Registry::global().render_prometheus(),
        },
        // Platform endpoints answer queries; they do not ingest
        // telemetry. Pushes belong at an adcomp-agg sink.
        Request::TelemetryPush { .. } => Response::Error {
            code: ErrorCode::BadRequest,
            message: "platform endpoints do not accept telemetry pushes".into(),
            retry_after: None,
        },
    }
}

fn platform_error_to_response(e: PlatformError) -> Response {
    let (code, retry_after) = match &e {
        PlatformError::Validation(ValidationError::UnknownAttribute(_)) => {
            (ErrorCode::UnknownAttribute, None)
        }
        PlatformError::Validation(_) => (ErrorCode::InvalidTargeting, None),
        PlatformError::Eval(_) => (ErrorCode::UnknownAttribute, None),
        PlatformError::RateLimited { retry_after } => (ErrorCode::RateLimited, Some(*retry_after)),
        PlatformError::UnsupportedObjective(_) => (ErrorCode::BadRequest, None),
        PlatformError::Transient(_) => (ErrorCode::Internal, None),
    };
    Response::Error {
        code,
        message: e.to_string(),
        retry_after,
    }
}
