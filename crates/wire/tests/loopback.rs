//! End-to-end tests over a real TCP loopback: server, client, rate
//! limiting, error mapping, and concurrent clients.

use std::sync::Arc;

use adcomp_platform::{SimScale, Simulation};
use adcomp_population::Gender;
use adcomp_targeting::{AttributeId, TargetingSpec};
use adcomp_wire::{serve, Client, ClientError, ErrorCode, ServerConfig};

fn sim() -> &'static Simulation {
    use std::sync::OnceLock;
    static SIM: OnceLock<Simulation> = OnceLock::new();
    SIM.get_or_init(|| Simulation::build(70, SimScale::Test))
}

#[test]
fn describe_matches_platform() {
    let handle = serve(sim().google.clone(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let client = Client::connect(handle.addr()).unwrap();
    let desc = client.describe().unwrap();
    assert_eq!(desc.label, "Google");
    assert_eq!(desc.catalog_len as usize, sim().google.catalog().len());
    assert!(!desc.same_feature_and, "google composes across features only");
    assert!(desc.impressions);
    handle.shutdown();
}

#[test]
fn estimates_match_in_process_values() {
    let handle = serve(sim().facebook.clone(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let client = Client::connect(handle.addr()).unwrap();
    for spec in [
        TargetingSpec::everyone(),
        TargetingSpec::and_of([AttributeId(0)]),
        TargetingSpec::builder().gender(Gender::Female).attribute(AttributeId(1)).build(),
    ] {
        let remote = client.estimate(&spec).unwrap();
        let local = {
            use adcomp_platform::EstimateRequest;
            sim().facebook
                .reach_estimate(&EstimateRequest::new(
                    spec.clone(),
                    sim().facebook.config().default_objective,
                ))
                .unwrap()
                .value
        };
        assert_eq!(remote, local, "spec {spec}");
    }
    handle.shutdown();
}

#[test]
fn attribute_info_and_unknown_ids() {
    let handle = serve(sim().linkedin.clone(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let client = Client::connect(handle.addr()).unwrap();
    let (name, _feature) = client.attribute_info(0).unwrap();
    assert_eq!(name, sim().linkedin.catalog().get(AttributeId(0)).unwrap().name);
    match client.attribute_info(99_999) {
        Err(ClientError::Server { code: ErrorCode::UnknownAttribute, .. }) => {}
        other => panic!("expected UnknownAttribute, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn policy_violations_map_to_invalid_targeting() {
    let handle =
        serve(sim().facebook_restricted.clone(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let client = Client::connect(handle.addr()).unwrap();
    let spec = TargetingSpec::builder().gender(Gender::Male).build();
    match client.check(&spec) {
        Err(ClientError::Server { code: ErrorCode::InvalidTargeting, message }) => {
            assert!(message.contains("gender"), "message: {message}");
        }
        other => panic!("expected InvalidTargeting, got {other:?}"),
    }
    // Valid spec passes.
    client.check(&TargetingSpec::and_of([AttributeId(0)])).unwrap();
    handle.shutdown();
}

#[test]
fn stats_are_served() {
    let handle = serve(sim().linkedin.clone(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let client = Client::connect(handle.addr()).unwrap();
    let before = client.stats().unwrap();
    client.estimate(&TargetingSpec::everyone()).unwrap();
    let after = client.stats().unwrap();
    assert!(after.0 > before.0, "estimate counter must advance");
    handle.shutdown();
}

#[test]
fn rate_limited_client_retries_transparently() {
    // 20 req/s with burst 2: a burst of requests trips the limiter, and
    // the client's retry loop absorbs it.
    let config = ServerConfig { rate_limit: Some(20.0), burst: 2.0 };
    let handle = serve(sim().linkedin.clone(), "127.0.0.1:0", config).unwrap();
    let client = Client::connect(handle.addr()).unwrap();
    for _ in 0..6 {
        client.estimate(&TargetingSpec::everyone()).unwrap();
    }
    let (_, _, rate_limited) = client.stats().unwrap();
    assert!(rate_limited > 0, "the limiter must have fired at least once");
    handle.shutdown();
}

#[test]
fn concurrent_clients_get_consistent_answers() {
    let handle = serve(sim().facebook.clone(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = handle.addr();
    let spec = TargetingSpec::and_of([AttributeId(2)]);
    let expected = {
        let c = Client::connect(addr).unwrap();
        c.estimate(&spec).unwrap()
    };
    let mut threads = Vec::new();
    for _ in 0..4 {
        let spec = spec.clone();
        threads.push(std::thread::spawn(move || {
            let c = Client::connect(addr).unwrap();
            (0..20).map(|_| c.estimate(&spec).unwrap()).collect::<Vec<u64>>()
        }));
    }
    for t in threads {
        for v in t.join().unwrap() {
            assert_eq!(v, expected);
        }
    }
    handle.shutdown();
}

#[test]
fn shared_client_across_threads() {
    let handle = serve(sim().facebook.clone(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let client = Arc::new(Client::connect(handle.addr()).unwrap());
    let spec = TargetingSpec::and_of([AttributeId(3)]);
    let expected = client.estimate(&spec).unwrap();
    let mut threads = Vec::new();
    for _ in 0..4 {
        let client = client.clone();
        let spec = spec.clone();
        threads.push(std::thread::spawn(move || client.estimate(&spec).unwrap()));
    }
    for t in threads {
        assert_eq!(t.join().unwrap(), expected);
    }
    handle.shutdown();
}

#[test]
fn server_survives_malformed_frames() {
    let handle = serve(sim().linkedin.clone(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    // Send garbage bytes in a valid frame; the server should answer with
    // BadRequest rather than dropping the connection.
    use std::io::{Read, Write};
    let mut raw = std::net::TcpStream::connect(handle.addr()).unwrap();
    let garbage = [0xFFu8, 0x01, 0x02];
    raw.write_all(&(garbage.len() as u32).to_be_bytes()).unwrap();
    raw.write_all(&garbage).unwrap();
    let mut len = [0u8; 4];
    raw.read_exact(&mut len).unwrap();
    let mut payload = vec![0u8; u32::from_be_bytes(len) as usize];
    raw.read_exact(&mut payload).unwrap();
    let resp: adcomp_wire::Response = adcomp_wire::from_bytes(&payload).unwrap();
    assert!(matches!(
        resp,
        adcomp_wire::Response::Error { code: ErrorCode::BadRequest, .. }
    ));
    // The same platform still serves real clients.
    let client = Client::connect(handle.addr()).unwrap();
    assert!(client.estimate(&TargetingSpec::everyone()).unwrap() > 0);
    handle.shutdown();
}

#[test]
fn catalog_pagination_covers_the_whole_catalog() {
    let handle = serve(sim().google.clone(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let client = Client::connect(handle.addr()).unwrap();
    let total = sim().google.catalog().len() as u32;

    // Walk pages of 64 and reassemble the catalog.
    let mut start = 0u32;
    let mut all: Vec<(String, u16)> = Vec::new();
    loop {
        let (entries, next) = client.catalog_page(start, 64).unwrap();
        assert!(entries.len() <= 64);
        all.extend(entries);
        match next {
            Some(n) => {
                assert_eq!(n, all.len() as u32, "pages must be contiguous");
                start = n;
            }
            None => break,
        }
    }
    assert_eq!(all.len() as u32, total);
    for (i, (name, feature)) in all.iter().enumerate() {
        let entry = sim().google.catalog().get(AttributeId(i as u32)).unwrap();
        assert_eq!(*name, entry.name);
        assert_eq!(*feature, entry.feature.0);
    }
    // Out-of-range start yields an empty terminal page, not an error.
    let (entries, next) = client.catalog_page(total + 10, 64).unwrap();
    assert!(entries.is_empty());
    assert_eq!(next, None);
    handle.shutdown();
}
