//! End-to-end tests over a real TCP loopback: server, client, rate
//! limiting, fault injection, error mapping, and concurrent clients.

use std::sync::Arc;

use adcomp_platform::{FaultKind, FaultPlan, Schedule, SimScale, Simulation};
use adcomp_population::Gender;
use adcomp_targeting::{AttributeId, TargetingSpec};
use adcomp_wire::{
    serve, serve_service, Client, ClientConfig, ClientError, ErrorCode, FaultPlanHook, Request,
    Response, ServerConfig, WireService,
};

fn sim() -> &'static Simulation {
    use std::sync::OnceLock;
    static SIM: OnceLock<Simulation> = OnceLock::new();
    SIM.get_or_init(|| Simulation::build(70, SimScale::Test))
}

#[test]
fn describe_matches_platform() {
    let handle = serve(sim().google.clone(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let client = Client::connect(handle.addr()).unwrap();
    let desc = client.describe().unwrap();
    assert_eq!(desc.label, "Google");
    assert_eq!(desc.catalog_len as usize, sim().google.catalog().len());
    assert!(
        !desc.same_feature_and,
        "google composes across features only"
    );
    assert!(desc.impressions);
    handle.shutdown();
}

#[test]
fn estimates_match_in_process_values() {
    let handle = serve(
        sim().facebook.clone(),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let client = Client::connect(handle.addr()).unwrap();
    for spec in [
        TargetingSpec::everyone(),
        TargetingSpec::and_of([AttributeId(0)]),
        TargetingSpec::builder()
            .gender(Gender::Female)
            .attribute(AttributeId(1))
            .build(),
    ] {
        let remote = client.estimate(&spec).unwrap();
        let local = {
            use adcomp_platform::EstimateRequest;
            sim()
                .facebook
                .reach_estimate(&EstimateRequest::new(
                    spec.clone(),
                    sim().facebook.config().default_objective,
                ))
                .unwrap()
                .value
        };
        assert_eq!(remote, local, "spec {spec}");
    }
    handle.shutdown();
}

#[test]
fn attribute_info_and_unknown_ids() {
    let handle = serve(
        sim().linkedin.clone(),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let client = Client::connect(handle.addr()).unwrap();
    let (name, _feature) = client.attribute_info(0).unwrap();
    assert_eq!(
        name,
        sim().linkedin.catalog().get(AttributeId(0)).unwrap().name
    );
    match client.attribute_info(99_999) {
        Err(ClientError::Server {
            code: ErrorCode::UnknownAttribute,
            ..
        }) => {}
        other => panic!("expected UnknownAttribute, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn policy_violations_map_to_invalid_targeting() {
    let handle = serve(
        sim().facebook_restricted.clone(),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let client = Client::connect(handle.addr()).unwrap();
    let spec = TargetingSpec::builder().gender(Gender::Male).build();
    match client.check(&spec) {
        Err(ClientError::Server {
            code: ErrorCode::InvalidTargeting,
            message,
            ..
        }) => {
            assert!(message.contains("gender"), "message: {message}");
        }
        other => panic!("expected InvalidTargeting, got {other:?}"),
    }
    // Valid spec passes.
    client
        .check(&TargetingSpec::and_of([AttributeId(0)]))
        .unwrap();
    handle.shutdown();
}

#[test]
fn stats_are_served() {
    let handle = serve(
        sim().linkedin.clone(),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let client = Client::connect(handle.addr()).unwrap();
    let before = client.stats().unwrap();
    client.estimate(&TargetingSpec::everyone()).unwrap();
    let after = client.stats().unwrap();
    assert!(after.0 > before.0, "estimate counter must advance");
    handle.shutdown();
}

#[test]
fn rate_limited_client_retries_transparently() {
    // 20 req/s with burst 2: a burst of requests trips the limiter, and
    // the client's retry loop absorbs it.
    let config = ServerConfig::rate_limited(20.0, 2.0);
    let handle = serve(sim().linkedin.clone(), "127.0.0.1:0", config).unwrap();
    let client = Client::connect(handle.addr()).unwrap();
    for _ in 0..6 {
        client.estimate(&TargetingSpec::everyone()).unwrap();
    }
    let (_, _, rate_limited) = client.stats().unwrap();
    assert!(
        rate_limited > 0,
        "the limiter must have fired at least once"
    );
    handle.shutdown();
}

#[test]
fn concurrent_clients_get_consistent_answers() {
    let handle = serve(
        sim().facebook.clone(),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let addr = handle.addr();
    let spec = TargetingSpec::and_of([AttributeId(2)]);
    let expected = {
        let c = Client::connect(addr).unwrap();
        c.estimate(&spec).unwrap()
    };
    let mut threads = Vec::new();
    for _ in 0..4 {
        let spec = spec.clone();
        threads.push(std::thread::spawn(move || {
            let c = Client::connect(addr).unwrap();
            (0..20)
                .map(|_| c.estimate(&spec).unwrap())
                .collect::<Vec<u64>>()
        }));
    }
    for t in threads {
        for v in t.join().unwrap() {
            assert_eq!(v, expected);
        }
    }
    handle.shutdown();
}

#[test]
fn shared_client_across_threads() {
    let handle = serve(
        sim().facebook.clone(),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let client = Arc::new(Client::connect(handle.addr()).unwrap());
    let spec = TargetingSpec::and_of([AttributeId(3)]);
    let expected = client.estimate(&spec).unwrap();
    let mut threads = Vec::new();
    for _ in 0..4 {
        let client = client.clone();
        let spec = spec.clone();
        threads.push(std::thread::spawn(move || client.estimate(&spec).unwrap()));
    }
    for t in threads {
        assert_eq!(t.join().unwrap(), expected);
    }
    handle.shutdown();
}

#[test]
fn server_survives_malformed_frames() {
    let handle = serve(
        sim().linkedin.clone(),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    // Send garbage bytes in a valid frame; the server should answer with
    // BadRequest rather than dropping the connection.
    use std::io::{Read, Write};
    let mut raw = std::net::TcpStream::connect(handle.addr()).unwrap();
    let garbage = [0xFFu8, 0x01, 0x02];
    raw.write_all(&(garbage.len() as u32).to_be_bytes())
        .unwrap();
    raw.write_all(&garbage).unwrap();
    let mut len = [0u8; 4];
    raw.read_exact(&mut len).unwrap();
    let mut payload = vec![0u8; u32::from_be_bytes(len) as usize];
    raw.read_exact(&mut payload).unwrap();
    let resp: adcomp_wire::Response = adcomp_wire::from_bytes(&payload).unwrap();
    assert!(matches!(
        resp,
        adcomp_wire::Response::Error {
            code: ErrorCode::BadRequest,
            ..
        }
    ));
    // The same platform still serves real clients.
    let client = Client::connect(handle.addr()).unwrap();
    assert!(client.estimate(&TargetingSpec::everyone()).unwrap() > 0);
    handle.shutdown();
}

#[test]
fn client_reconnects_through_dropped_connections() {
    // Every third request the server hangs up instead of answering; the
    // client must reconnect and retry without the caller noticing.
    let plan = FaultPlan::new(11).with(
        FaultKind::Drop { mid_frame: false },
        Schedule::EveryNth {
            period: 3,
            offset: 2,
        },
    );
    let config = ServerConfig::default().with_fault_hook(Arc::new(FaultPlanHook(plan)));
    let handle = serve(sim().linkedin.clone(), "127.0.0.1:0", config).unwrap();
    let client = Client::connect_with(handle.addr(), ClientConfig::fast()).unwrap();
    let clean = {
        let plain = serve(
            sim().linkedin.clone(),
            "127.0.0.1:0",
            ServerConfig::default(),
        )
        .unwrap();
        let c = Client::connect(plain.addr()).unwrap();
        let v = c.estimate(&TargetingSpec::everyone()).unwrap();
        plain.shutdown();
        v
    };
    for _ in 0..10 {
        assert_eq!(client.estimate(&TargetingSpec::everyone()).unwrap(), clean);
    }
    handle.shutdown();
}

#[test]
fn client_survives_a_mid_frame_drop() {
    // One torn frame (length prefix promising more bytes than arrive)
    // followed by a clean connection close.
    let plan = FaultPlan::new(12).with(
        FaultKind::Drop { mid_frame: true },
        Schedule::Once { at: 1 },
    );
    let config = ServerConfig::default().with_fault_hook(Arc::new(FaultPlanHook(plan)));
    let handle = serve(sim().linkedin.clone(), "127.0.0.1:0", config).unwrap();
    let client = Client::connect_with(handle.addr(), ClientConfig::fast()).unwrap();
    let first = client.estimate(&TargetingSpec::everyone()).unwrap();
    let second = client.estimate(&TargetingSpec::everyone()).unwrap();
    assert_eq!(first, second);
    handle.shutdown();
}

#[test]
fn circuit_breaker_opens_when_the_endpoint_dies() {
    let handle = serve(
        sim().linkedin.clone(),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let client = Client::connect_with(handle.addr(), ClientConfig::fast()).unwrap();
    client.estimate(&TargetingSpec::everyone()).unwrap();
    handle.shutdown();
    // With the server gone, retries exhaust and the breaker trips
    // (threshold 4 < the 6 attempts of one call) …
    let first = client.estimate(&TargetingSpec::everyone());
    assert!(
        matches!(
            first,
            Err(ClientError::Transport(_)) | Err(ClientError::CircuitOpen { .. })
        ),
        "got {first:?}"
    );
    // … so an immediate follow-up is rejected without touching the wire.
    match client.estimate(&TargetingSpec::everyone()) {
        Err(ClientError::CircuitOpen { retry_in }) => assert!(retry_in > std::time::Duration::ZERO),
        other => panic!("expected CircuitOpen, got {other:?}"),
    }
}

#[test]
fn rate_limit_responses_carry_a_structured_hint() {
    // Drain the burst with a raw connection, then inspect the error the
    // server sends (bypassing the client's transparent retry).
    use std::io::{Read, Write};
    let config = ServerConfig::rate_limited(5.0, 1.0);
    let handle = serve(sim().linkedin.clone(), "127.0.0.1:0", config).unwrap();
    let mut raw = std::net::TcpStream::connect(handle.addr()).unwrap();
    let payload = adcomp_wire::to_bytes(&adcomp_wire::Request::Stats);
    let mut saw_hint = false;
    for _ in 0..4 {
        raw.write_all(&(payload.len() as u32).to_be_bytes())
            .unwrap();
        raw.write_all(&payload).unwrap();
        let mut len = [0u8; 4];
        raw.read_exact(&mut len).unwrap();
        let mut buf = vec![0u8; u32::from_be_bytes(len) as usize];
        raw.read_exact(&mut buf).unwrap();
        if let adcomp_wire::Response::Error {
            code, retry_after, ..
        } = adcomp_wire::from_bytes::<adcomp_wire::Response>(&buf).unwrap()
        {
            assert_eq!(code, ErrorCode::RateLimited);
            let hint = retry_after.expect("rate-limit errors must advertise a back-off");
            assert!(hint > std::time::Duration::ZERO);
            saw_hint = true;
        }
    }
    assert!(
        saw_hint,
        "burst of 1 must trip the limiter within 4 requests"
    );
    handle.shutdown();
}

#[test]
fn catalog_pagination_covers_the_whole_catalog() {
    let handle = serve(sim().google.clone(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let client = Client::connect(handle.addr()).unwrap();
    let total = sim().google.catalog().len() as u32;

    // Walk pages of 64 and reassemble the catalog.
    let mut start = 0u32;
    let mut all: Vec<(String, u16)> = Vec::new();
    loop {
        let (entries, next) = client.catalog_page(start, 64).unwrap();
        assert!(entries.len() <= 64);
        all.extend(entries);
        match next {
            Some(n) => {
                assert_eq!(n, all.len() as u32, "pages must be contiguous");
                start = n;
            }
            None => break,
        }
    }
    assert_eq!(all.len() as u32, total);
    for (i, (name, feature)) in all.iter().enumerate() {
        let entry = sim().google.catalog().get(AttributeId(i as u32)).unwrap();
        assert_eq!(*name, entry.name);
        assert_eq!(*feature, entry.feature.0);
    }
    // Out-of-range start yields an empty terminal page, not an error.
    let (entries, next) = client.catalog_page(total + 10, 64).unwrap();
    assert!(entries.is_empty());
    assert_eq!(next, None);
    handle.shutdown();
}

#[test]
fn pipelined_batch_matches_serial_estimates() {
    let handle = serve(
        sim().facebook.clone(),
        "127.0.0.1:0",
        ServerConfig::default().with_executors(4),
    )
    .unwrap();
    let client = Client::connect_with(
        handle.addr(),
        ClientConfig {
            pipeline_window: 8,
            ..ClientConfig::fast()
        },
    )
    .unwrap();
    let specs: Vec<TargetingSpec> = (0..20)
        .map(|i| TargetingSpec::and_of([AttributeId(i)]))
        .collect();
    let serial: Vec<u64> = specs.iter().map(|s| client.estimate(s).unwrap()).collect();
    let batched = client.estimate_batch(&specs);
    for (i, (serial, batched)) in serial.iter().zip(&batched).enumerate() {
        assert_eq!(
            batched.as_ref().unwrap(),
            serial,
            "spec {i} differs under pipelining"
        );
    }
    handle.shutdown();
}

#[test]
fn pipelined_batch_carries_per_query_errors() {
    let handle = serve(
        sim().facebook.clone(),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let client = Client::connect_with(handle.addr(), ClientConfig::fast()).unwrap();
    let bogus = TargetingSpec::and_of([AttributeId(999_999)]);
    let specs = vec![
        TargetingSpec::everyone(),
        bogus,
        TargetingSpec::and_of([AttributeId(0)]),
    ];
    let results = client.estimate_batch(&specs);
    assert!(results[0].is_ok());
    assert!(
        matches!(
            results[1],
            Err(ClientError::Server {
                code: ErrorCode::UnknownAttribute,
                ..
            })
        ),
        "got {:?}",
        results[1]
    );
    assert!(results[2].is_ok(), "a bad spec must not poison its batch");
    handle.shutdown();
}

#[test]
fn pipelined_batch_rides_out_rate_limiting() {
    // A tight limiter: the batch trips it, the client backs off per the
    // server's hint, and — given enough retry budget — every query still
    // completes.
    let handle = serve(
        sim().linkedin.clone(),
        "127.0.0.1:0",
        ServerConfig::rate_limited(1_000.0, 3.0),
    )
    .unwrap();
    let client = Client::connect_with(
        handle.addr(),
        ClientConfig {
            retry: adcomp_platform::RetryPolicy::fast(30),
            ..ClientConfig::fast()
        },
    )
    .unwrap();
    let specs = vec![TargetingSpec::everyone(); 12];
    let results = client.estimate_batch(&specs);
    let first = results[0].as_ref().unwrap();
    for r in &results {
        assert_eq!(r.as_ref().unwrap(), first);
    }
    handle.shutdown();
}

/// A platform whose estimates take `delay` each — long enough for a
/// shutdown to land while frames are admitted but unanswered.
struct SlowPlatform {
    inner: Arc<adcomp_platform::AdPlatform>,
    delay: std::time::Duration,
}

impl adcomp_platform::PlatformApi for SlowPlatform {
    fn config(&self) -> &adcomp_platform::PlatformConfig {
        self.inner.config()
    }

    fn catalog(&self) -> &adcomp_platform::Catalog {
        self.inner.catalog()
    }

    fn reach_estimate(
        &self,
        request: &adcomp_platform::EstimateRequest,
    ) -> Result<adcomp_platform::SizeEstimate, adcomp_platform::PlatformError> {
        std::thread::sleep(self.delay);
        self.inner.reach_estimate(request)
    }

    fn check(&self, spec: &TargetingSpec) -> Result<(), adcomp_platform::PlatformError> {
        adcomp_platform::AdPlatform::check(&self.inner, spec)
    }

    fn stats(&self) -> adcomp_platform::QueryStats {
        self.inner.stats()
    }

    fn note_rate_limited(&self) {
        adcomp_platform::PlatformApi::note_rate_limited(self.inner.as_ref())
    }
}

#[test]
fn shutdown_drains_in_flight_pipelined_frames() {
    // 16 pipelined estimates at 30ms each over 2 executors ≈ 240ms of
    // server-side work. Shutdown lands mid-flight and must hold the
    // connection open until every admitted frame is answered — before
    // graceful drain, the active close could cut off queued responses.
    let slow = Arc::new(SlowPlatform {
        inner: sim().linkedin.clone(),
        delay: std::time::Duration::from_millis(30),
    });
    let handle = serve(
        slow,
        "127.0.0.1:0",
        ServerConfig::default()
            .with_executors(2)
            .with_drain_timeout(std::time::Duration::from_secs(30)),
    )
    .unwrap();
    let expected = {
        use adcomp_platform::EstimateRequest;
        let p = &sim().linkedin;
        p.reach_estimate(&EstimateRequest::new(
            TargetingSpec::everyone(),
            p.config().default_objective,
        ))
        .unwrap()
        .value
    };
    let client = Client::connect_with(
        handle.addr(),
        ClientConfig {
            pipeline_window: 16,
            io_timeout: Some(std::time::Duration::from_secs(30)),
            ..ClientConfig::fast()
        },
    )
    .unwrap();
    let batch = std::thread::spawn(move || {
        let specs = vec![TargetingSpec::everyone(); 16];
        client.estimate_batch(&specs)
    });
    // Let the window land server-side so frames are read and queued.
    std::thread::sleep(std::time::Duration::from_millis(100));
    handle.shutdown();
    let results = batch.join().unwrap();
    assert_eq!(results.len(), 16);
    for (i, r) in results.iter().enumerate() {
        assert_eq!(
            r.as_ref().expect("drained shutdown answers every frame"),
            &expected,
            "slot {i}"
        );
    }
}

#[test]
fn status_endpoint_reports_platform_health() {
    let handle = serve(
        sim().linkedin.clone(),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let client = Client::connect_with(handle.addr(), ClientConfig::fast()).unwrap();
    let (healthy, body) = client.status().unwrap();
    assert!(healthy, "a serving platform reports healthy");
    assert!(body.contains("LinkedIn"), "status body names the platform");
    handle.shutdown();
}

#[test]
fn custom_service_rides_the_wire_transport() {
    // A non-platform service (like the continuous-audit daemon's status
    // endpoint) answers through the same frames and drain path.
    struct Fixed;
    impl WireService for Fixed {
        fn handle(&self, request: Request) -> Response {
            match request {
                Request::Status => Response::StatusReport {
                    healthy: false,
                    body: "degraded: replica 2 down".into(),
                },
                _ => Response::Error {
                    code: ErrorCode::BadRequest,
                    message: "status only".into(),
                    retry_after: None,
                },
            }
        }
    }
    let handle = serve_service(Arc::new(Fixed), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let client = Client::connect_with(handle.addr(), ClientConfig::fast()).unwrap();
    let (healthy, body) = client.status().unwrap();
    assert!(!healthy);
    assert_eq!(body, "degraded: replica 2 down");
    let err = client.stats().unwrap_err();
    assert!(matches!(
        err,
        ClientError::Server {
            code: ErrorCode::BadRequest,
            ..
        }
    ));
    handle.shutdown();
}

#[test]
fn expired_drain_is_surfaced_not_silent() {
    // Admitted frames that cannot be answered inside the drain window
    // must be counted, not dropped on the floor. 8 pipelined estimates
    // at 200ms each against a 20ms drain window guarantees leftovers.
    let abandoned = adcomp_obs::metrics::Registry::global().counter("adcomp_wire_drain_abandoned");
    let before = abandoned.get();
    let slow = Arc::new(SlowPlatform {
        inner: sim().linkedin.clone(),
        delay: std::time::Duration::from_millis(200),
    });
    let handle = serve(
        slow,
        "127.0.0.1:0",
        ServerConfig::default().with_drain_timeout(std::time::Duration::from_millis(20)),
    )
    .unwrap();
    let client = Client::connect_with(
        handle.addr(),
        ClientConfig {
            pipeline_window: 8,
            retry: adcomp_platform::RetryPolicy::none(),
            ..ClientConfig::fast()
        },
    )
    .unwrap();
    let batch = std::thread::spawn(move || {
        let specs = vec![TargetingSpec::everyone(); 8];
        client.estimate_batch(&specs)
    });
    // Let the window land server-side so frames are read and queued.
    std::thread::sleep(std::time::Duration::from_millis(100));
    handle.shutdown();
    let _ = batch.join().unwrap();
    assert!(
        abandoned.get() > before,
        "an expired drain must increment adcomp_wire_drain_abandoned"
    );
}

#[test]
fn pipelined_batch_reconnects_and_reissues_only_unanswered() {
    // Kill the connection mid-batch; the client reconnects and re-issues
    // the unanswered tail, so every slot ends up filled and correct.
    let plan = FaultPlan::new(31).with(
        FaultKind::Drop { mid_frame: false },
        Schedule::Once { at: 5 },
    );
    let config = ServerConfig::default().with_fault_hook(Arc::new(FaultPlanHook(plan)));
    let handle = serve(sim().linkedin.clone(), "127.0.0.1:0", config).unwrap();
    let client = Client::connect_with(
        handle.addr(),
        ClientConfig {
            pipeline_window: 4,
            ..ClientConfig::fast()
        },
    )
    .unwrap();
    let specs: Vec<TargetingSpec> = (0..10)
        .map(|i| TargetingSpec::and_of([AttributeId(i)]))
        .collect();
    let results = client.estimate_batch(&specs);
    for (i, r) in results.iter().enumerate() {
        let clean = client.estimate(&specs[i]).unwrap();
        assert_eq!(r.as_ref().unwrap(), &clean, "slot {i}");
    }
    handle.shutdown();
}
