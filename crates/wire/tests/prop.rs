//! Property tests for the wire codec: arbitrary messages round-trip, and
//! arbitrary byte garbage never panics the decoder.

use adcomp_population::{AgeBucket, Gender};
use adcomp_targeting::{AttributeId, DemographicSpec, Location, OrGroup, TargetingSpec};
use adcomp_wire::{from_bytes, to_bytes, ErrorCode, Request, Response};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = TargetingSpec> {
    (
        proptest::option::of(proptest::collection::vec(0u8..2, 1..=2)),
        proptest::option::of(proptest::collection::vec(0u8..4, 1..=4)),
        proptest::collection::vec(proptest::collection::vec(any::<u32>(), 1..5), 0..4),
        proptest::collection::vec(any::<u32>(), 0..4),
    )
        .prop_map(|(genders, ages, include, exclude)| TargetingSpec {
            demographics: DemographicSpec {
                genders: genders.map(|gs| {
                    gs.into_iter()
                        .map(|i| if i == 0 { Gender::Male } else { Gender::Female })
                        .collect()
                }),
                ages: ages.map(|a| {
                    a.into_iter()
                        .map(|i| AgeBucket::from_index(i as usize))
                        .collect()
                }),
                location: Location::UnitedStates,
            },
            include: include
                .into_iter()
                .map(|g| OrGroup {
                    attributes: g.into_iter().map(AttributeId).collect(),
                })
                .collect(),
            exclude: exclude.into_iter().map(AttributeId).collect(),
        })
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::Describe),
        any::<u32>().prop_map(|id| Request::AttributeInfo { id }),
        arb_spec().prop_map(|spec| Request::Check { spec }),
        arb_spec().prop_map(|spec| Request::Estimate { spec }),
        Just(Request::Stats),
    ]
}

fn arb_error_code() -> impl Strategy<Value = ErrorCode> {
    prop_oneof![
        Just(ErrorCode::InvalidTargeting),
        Just(ErrorCode::UnknownAttribute),
        Just(ErrorCode::RateLimited),
        Just(ErrorCode::BadRequest),
        Just(ErrorCode::Internal),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        (any::<String>(), any::<u32>(), any::<[bool; 5]>()).prop_map(
            |(label, catalog_len, flags)| Response::Described {
                label,
                catalog_len,
                gender_targeting: flags[0],
                age_targeting: flags[1],
                exclusions: flags[2],
                same_feature_and: flags[3],
                impressions: flags[4],
            }
        ),
        (any::<String>(), any::<u16>())
            .prop_map(|(name, feature)| Response::AttributeInfo { name, feature }),
        Just(Response::Ok),
        any::<u64>().prop_map(|value| Response::Estimate { value }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(estimates, validation_failures, rate_limited)| Response::Stats {
                estimates,
                validation_failures,
                rate_limited,
            }
        ),
        (
            arb_error_code(),
            any::<String>(),
            proptest::option::of(any::<u64>())
        )
            .prop_map(|(code, message, micros)| Response::Error {
                code,
                message,
                retry_after: micros.map(std::time::Duration::from_micros),
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn requests_roundtrip(request in arb_request()) {
        let bytes = to_bytes(&request);
        prop_assert_eq!(from_bytes::<Request>(&bytes).unwrap(), request);
    }

    #[test]
    fn responses_roundtrip(response in arb_response()) {
        let bytes = to_bytes(&response);
        prop_assert_eq!(from_bytes::<Response>(&bytes).unwrap(), response);
    }

    #[test]
    fn specs_roundtrip(spec in arb_spec()) {
        let bytes = to_bytes(&spec);
        prop_assert_eq!(from_bytes::<TargetingSpec>(&bytes).unwrap(), spec);
    }

    #[test]
    fn decoder_is_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Must never panic; errors are fine.
        let _ = from_bytes::<Request>(&bytes);
        let _ = from_bytes::<Response>(&bytes);
        let _ = from_bytes::<TargetingSpec>(&bytes);
    }

    #[test]
    fn truncation_always_errors(request in arb_request(), cut in any::<proptest::sample::Index>()) {
        let bytes = to_bytes(&request);
        if bytes.len() > 1 {
            let cut = 1 + cut.index(bytes.len() - 1);
            if cut < bytes.len() {
                prop_assert!(from_bytes::<Request>(&bytes[..cut]).is_err());
            }
        }
    }

    #[test]
    fn trailing_garbage_always_errors(request in arb_request(), extra in 1u8..=255) {
        let mut bytes = to_bytes(&request);
        bytes.push(extra);
        prop_assert!(from_bytes::<Request>(&bytes).is_err());
    }
}
