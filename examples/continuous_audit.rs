//! Continuous audit: three epochs under a supervising daemon, with a
//! drifting platform and a `kill -9` in the middle.
//!
//! The paper's audit is one crawl; `adcomp-serve` turns it into a
//! *service* that re-runs the crawl on a schedule, diffs consecutive
//! epochs, and raises an alert whenever a representation ratio crosses
//! a four-fifths threshold between visits. This example runs three
//! epochs against the simulated LinkedIn interface. Epoch 1 is served
//! through a [`FaultPlan`] that perturbs every other answer by ±35 %
//! and inflates everything by a slow monotone drift — so its diff
//! against epoch 0 must alert. Mid-way through epoch 1's survey the
//! daemon is killed outright and restarted; the journal and the epoch
//! stores bring the resumed incarnation back to exactly where the dead
//! one stopped, without re-asking a single answered query.
//!
//! ```text
//! cargo run --release --example continuous_audit
//! ```

use std::sync::Arc;

use discrimination_via_composition::audit::recording::EpochEvent;
use discrimination_via_composition::platform::{FaultKind, FaultPlan, Schedule};
use discrimination_via_composition::serve::{
    run_chaos, run_clean, ChaosPlan, EpochJournal, KillPoint, ServeConfig, SimProvider,
};

const SEED: u64 = 2020;

/// Noise + monotone drift: the estimate endpoint the auditor left six
/// months ago is not the one it comes back to.
fn drifting_plan() -> FaultPlan {
    FaultPlan::new(41)
        .with(
            FaultKind::Noise { amplitude: 0.35 },
            Schedule::EveryNth {
                period: 2,
                offset: 0,
            },
        )
        .with(
            FaultKind::Drift { rate: 0.0005 },
            Schedule::EveryNth {
                period: 1,
                offset: 0,
            },
        )
}

fn config_at(root: &std::path::Path) -> ServeConfig {
    let mut cfg = ServeConfig::default_at(root);
    cfg.seed = SEED;
    cfg.max_epochs = 3;
    cfg.interval_ms = 10;
    cfg.epoch_retries = 0; // a killed process has no retry budget
    cfg.fsync = true; // the recovery guarantee is a durability guarantee
    cfg
}

fn main() {
    let root = std::env::temp_dir().join(format!("adcomp-continuous-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // ── The run that gets killed. ───────────────────────────────────────
    //
    // Three epochs, epoch 1 drifting; the daemon dies after epoch 1's
    // survey has asked 200 fresh queries, and a second incarnation picks
    // the epoch back up from the journal.
    let killed_root = root.join("killed");
    let cfg = config_at(&killed_root);
    let provider = Arc::new(SimProvider::from_config(&cfg).with_fault(1, drifting_plan()));
    let plan = ChaosPlan {
        kills: vec![KillPoint::MidSurvey {
            epoch: 1,
            after_queries: 200,
        }],
    };
    let outcome = run_chaos(&cfg, provider.clone(), &plan).expect("chaos run");
    assert_eq!(outcome.kills, 1);
    assert_eq!(outcome.incarnations, 2);

    println!(
        "ran {} epochs across {} daemon incarnations ({} kill)",
        outcome.digests.len(),
        outcome.incarnations,
        outcome.kills
    );
    for (epoch, digest) in outcome.digests.iter().enumerate() {
        println!("  epoch {epoch}: digest {digest:016x}");
    }

    // ── The journal tells the whole story. ──────────────────────────────
    let journal = EpochJournal::open(cfg.journal_dir(), "serve", false).expect("reopen journal");
    println!("\njournal timeline:");
    for event in journal.events() {
        match event {
            EpochEvent::Started { epoch, attempt } => {
                println!("  epoch {epoch}: started (attempt {attempt})")
            }
            EpochEvent::Completed {
                epoch, estimates, ..
            } => println!("  epoch {epoch}: completed — {estimates} estimates durable"),
            EpochEvent::DriftChecked { epoch: 0, .. } => {
                println!("  epoch 0: drift baseline recorded (nothing to diff yet)")
            }
            EpochEvent::DriftChecked {
                epoch,
                findings,
                crossings,
            } => println!(
                "  epoch {epoch}: drift vs epoch {} — {findings} findings, {crossings} crossings",
                epoch - 1
            ),
            EpochEvent::AlertRaised { epoch, detail, .. } => {
                println!("  epoch {epoch}: ALERT — {detail}")
            }
            EpochEvent::Degraded { epoch, .. } => println!("  epoch {epoch}: ran degraded"),
        }
    }

    // Both transitions alerted: epoch 1 when the drift arrived, epoch 2
    // when the platform snapped back. The killed-and-restarted epoch 1
    // raised its alert exactly once, restart notwithstanding.
    assert_eq!(outcome.alerted_epochs, vec![1, 2]);
    let epoch1_alerts = journal
        .events()
        .into_iter()
        .filter(|e| matches!(e, EpochEvent::AlertRaised { epoch: 1, .. }))
        .count();
    assert_eq!(epoch1_alerts, 1, "exactly one alert, kill notwithstanding");

    // ── The same three epochs with no kill converge to the same bytes. ──
    let clean_root = root.join("clean");
    let clean_cfg = config_at(&clean_root);
    let clean_provider =
        Arc::new(SimProvider::from_config(&clean_cfg).with_fault(1, drifting_plan()));
    let clean = run_clean(&clean_cfg, clean_provider.clone()).expect("clean run");

    assert_eq!(outcome.digests, clean.digests);
    assert_eq!(outcome.answered, clean.answered);
    println!(
        "\nkilled-and-resumed run converged byte-identically to the clean run \
         ({} platform queries each — zero re-issued) ✓",
        outcome.answered.unwrap_or(0)
    );
    let _ = std::fs::remove_dir_all(&root);
}
