//! Delivery-skew audit over a hostile wire transport.
//!
//! The Imana-style paired experiment (see
//! `adcomp_core::experiments::delivery_exp`): a job ad whose creative
//! the delivery optimizer has learned a male lean for, and a baseline ad
//! identical in every other respect, both targeted at *everyone*. The
//! advertiser-side measurement runs through a wire server that injects
//! transient errors, rate limits, and dropped connections — the
//! resilience layer absorbs all of it — while the platform-side delivery
//! simulation allocates impressions auction by auction.
//!
//! The audit separates the stages: neutral targeting clears the
//! four-fifths line, the job ad's *delivery* falls below it, and the
//! end-of-run report records the crossing as a degradation.
//!
//! ```text
//! cargo run --release --example delivery_audit
//! ```

use std::sync::Arc;
use std::time::Duration;

use adcomp_obs::RunReport;

use discrimination_via_composition::audit::experiments::delivery_exp::{
    delivery_table_tsv, paired_ad_cell_for, PairedAdConfig,
};
use discrimination_via_composition::audit::{AuditTarget, ResilienceConfig, FOUR_FIFTHS_THRESHOLD};
use discrimination_via_composition::platform::{
    FaultKind, FaultPlan, FaultyPlatform, Schedule, SimScale, Simulation,
};
use discrimination_via_composition::wire::{serve, ClientConfig, FaultPlanHook, ServerConfig};
use discrimination_via_composition::RemoteSource;

fn main() {
    let seed = 2020;
    let sim = Simulation::build(seed, SimScale::Test);
    let cfg = PairedAdConfig::for_scale(SimScale::Test);

    // A deterministic fault plan: transient rejections, rate limits with
    // a structured hint, and dropped connections — none of which may
    // move a measured byte.
    let plan = FaultPlan::new(9)
        .with(
            FaultKind::Transient,
            Schedule::EveryNth {
                period: 31,
                offset: 4,
            },
        )
        .with(
            FaultKind::RateLimit {
                retry_after: Duration::from_millis(2),
            },
            Schedule::EveryNth {
                period: 41,
                offset: 9,
            },
        )
        .with(
            FaultKind::Drop { mid_frame: false },
            Schedule::EveryNth {
                period: 53,
                offset: 2,
            },
        );
    let faulty = Arc::new(FaultyPlatform::new(sim.facebook.clone(), plan.clone()));
    let server = ServerConfig::default().with_fault_hook(Arc::new(FaultPlanHook(plan)));
    let handle = serve(faulty.clone(), "127.0.0.1:0", server).expect("bind");
    println!(
        "serving fault-injected simulated Facebook on {}",
        handle.addr()
    );

    let client = discrimination_via_composition::wire::Client::connect_with(
        handle.addr(),
        ClientConfig::fast(),
    )
    .expect("connect");
    let remote = Arc::new(RemoteSource::new(client).expect("describe"));
    let target = AuditTarget::direct(remote).with_resilience(ResilienceConfig::standard(seed));

    // The paired experiment: measurement over the hostile wire, delivery
    // simulated platform-side.
    let cell = paired_ad_cell_for(&target, &sim.facebook, seed, &cfg).expect("paired audit");
    println!("\n{}", delivery_table_tsv(std::slice::from_ref(&cell)));
    println!(
        "targeting stage: ratio {:.2} — the advertiser targeted everyone; nothing to flag",
        cell.targeting_ratio
    );
    println!(
        "delivery stage:  job ad {:.2} vs baseline {:.2} (paired skew {:.2}) — the
platform's relevance model decided who actually saw the job ad",
        cell.job_delivery_ratio, cell.baseline_delivery_ratio, cell.paired_skew
    );
    let injected = faulty.injected();
    println!(
        "measured through {} injected faults ({} transient, {} rate-limited)",
        injected.total(),
        injected.transient,
        injected.rate_limited
    );
    handle.shutdown();

    // Cross-check: the same audit in-process is byte-identical — faults
    // and transport cannot have moved the result.
    let local = AuditTarget::for_platform(&sim.facebook, &sim);
    let local_cell = paired_ad_cell_for(&local, &sim.facebook, seed, &cfg).expect("local audit");
    assert_eq!(
        delivery_table_tsv(std::slice::from_ref(&cell)),
        delivery_table_tsv(std::slice::from_ref(&local_cell)),
        "wire cell must be byte-identical to the in-process cell"
    );
    assert_eq!(cell.log_digest, local_cell.log_digest);
    println!("\nwire audit matches in-process audit byte-for-byte ✓");

    // The end-of-run record: four-fifths crossings are degradations.
    let mut report = RunReport::new("delivery_audit");
    if cell.targeting_ratio >= FOUR_FIFTHS_THRESHOLD
        && cell.job_delivery_ratio < FOUR_FIFTHS_THRESHOLD
    {
        report.degradation(format!(
            "delivery skew: neutral targeting (ratio {:.2}) delivered at {:.2}, \
             below the four-fifths line of {FOUR_FIFTHS_THRESHOLD}",
            cell.targeting_ratio, cell.job_delivery_ratio
        ));
    }
    report.note(format!(
        "paired skew {:.2} (job {:.2} / baseline {:.2}); {} injected faults absorbed",
        cell.paired_skew,
        cell.job_delivery_ratio,
        cell.baseline_delivery_ratio,
        injected.total()
    ));
    assert!(
        report.degraded(),
        "the loaded creative must have crossed the four-fifths line"
    );
    print!("\n{}", report.render());
}
