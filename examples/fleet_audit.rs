//! Table 1 over a fleet of three wire endpoints per interface — one of
//! them dropping connections on a deterministic fault plan, one of them
//! killed partway through the run — with the merged results
//! byte-identical to the single-endpoint serial baseline.
//!
//! The run shows the two failover mechanics in isolation first:
//!
//! 1. a *lease-expiry* walkthrough on a bare [`UnitQueue`] with a
//!    manual clock (claim → silence → expiry → requeue → late
//!    completion rejected as stale), then
//! 2. the full distributed Table-1 audit, where the same mechanics run
//!    live against TCP endpoints and the scheduler's metrics record
//!    how many units had to be requeued onto the survivors.
//!
//! ```text
//! cargo run --release --example fleet_audit
//! ```
//!
//! [`UnitQueue`]: discrimination_via_composition::sched::UnitQueue

use std::sync::Arc;
use std::time::Duration;

use adcomp_obs::{Clock, ManualClock, Registry};

use discrimination_via_composition::audit::experiments::table1::{table1, table1_tsv};
use discrimination_via_composition::audit::experiments::{ExperimentConfig, ExperimentContext};
use discrimination_via_composition::audit::SchedulerConfig;
use discrimination_via_composition::platform::{
    FaultKind, FaultPlan, InterfaceKind, RetryPolicy, Schedule, Simulation,
};
use discrimination_via_composition::sched::{Completion, LeaseConfig, UnitQueue};
use discrimination_via_composition::wire::{ClientConfig, FaultPlanHook, ServerConfig};
use discrimination_via_composition::Fleet;

fn main() {
    lease_expiry_walkthrough();
    distributed_table1();
}

/// The failover primitive, frame by frame: a worker claims a unit and
/// goes silent; the lease expires; the unit is regranted to a healthy
/// worker; the silent worker's late answer is rejected as stale.
fn lease_expiry_walkthrough() {
    println!("--- lease expiry walkthrough ---");
    let clock = Arc::new(ManualClock::new());
    let queue = UnitQueue::new(
        LeaseConfig {
            ttl: Duration::from_millis(100),
            ..LeaseConfig::default()
        },
        clock.clone() as Arc<dyn Clock>,
        None,
    );
    queue.seed_slots(4, 4);

    let stuck = queue.try_claim("worker-a").expect("grant");
    println!(
        "worker-a claimed unit {} (lease {})",
        stuck.unit, stuck.lease
    );
    clock.advance(Duration::from_millis(150));
    let expired = queue.expire_overdue();
    println!("150 ms of silence: {expired} lease(s) expired, unit requeued");

    let rescued = queue.try_claim("worker-b").expect("regrant");
    assert_eq!(rescued.unit, stuck.unit);
    println!(
        "worker-b claimed the same unit (attempt {} under lease {})",
        rescued.attempt, rescued.lease
    );
    assert_eq!(
        queue.complete(stuck.lease, &stuck.slots),
        Completion::Stale,
        "the silent worker's late answer must not land"
    );
    println!("worker-a's late completion rejected as stale ✓");
    assert!(matches!(
        queue.complete(rescued.lease, &rescued.slots),
        Completion::Accepted { .. }
    ));
    assert!(queue.is_drained());
    println!("worker-b's completion accepted; queue drained ✓\n");
}

fn distributed_table1() {
    println!("--- distributed Table 1 ---");
    let config = ExperimentConfig::test(2026);

    // Single-endpoint serial baseline: the bytes to beat.
    let serial_tsv = table1_tsv(&table1(&ExperimentContext::new(config)).expect("serial table"));

    // Three replicas per interface, all wrapping one simulation:
    //   replica 0 — healthy;
    //   replica 1 — drops the connection every 67th request;
    //   replica 2 — healthy for now, killed mid-run below. Its client
    //     keeps a 2 s socket timeout, far beyond the 250 ms lease TTL,
    //     so the kill surfaces as lease expiry, not a fast error.
    let fleet_sim = Simulation::build(config.seed, config.scale);
    let plan = FaultPlan::new(11).with(
        FaultKind::Drop { mid_frame: false },
        Schedule::EveryNth {
            period: 67,
            offset: 9,
        },
    );
    let fleet = Arc::new(
        Fleet::launch_with(
            &fleet_sim,
            3,
            |_, replica| {
                if replica == 1 {
                    ServerConfig::default().with_fault_hook(Arc::new(FaultPlanHook(plan.clone())))
                } else {
                    ServerConfig::default()
                }
            },
            |_, replica| {
                if replica == 2 {
                    ClientConfig::fast()
                } else {
                    ClientConfig {
                        io_timeout: Some(Duration::from_millis(400)),
                        retry: RetryPolicy::fast(1),
                        ..ClientConfig::fast()
                    }
                }
            },
        )
        .expect("launch fleet"),
    );
    for kind in [
        InterfaceKind::FacebookNormal,
        InterfaceKind::GoogleDisplay,
        InterfaceKind::LinkedIn,
    ] {
        println!(
            "{:<18} replicas: {} (faulty: replica 1)",
            kind.label(),
            fleet.replicas()
        );
    }

    let ctx =
        ExperimentContext::distributed(config, Fleet::factory(&fleet), SchedulerConfig::fast());

    // Kill replica 2 of every interface 300 ms into the run — mid-audit
    // by construction, since the distributed table takes far longer.
    let killer = {
        let fleet = fleet.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(300));
            for kind in [
                InterfaceKind::FacebookNormal,
                InterfaceKind::FacebookRestricted,
                InterfaceKind::GoogleDisplay,
                InterfaceKind::LinkedIn,
            ] {
                fleet.kill(kind, 2);
            }
            println!("[killer] replica 2 of every interface is gone");
        })
    };

    let distributed_tsv = table1_tsv(&table1(&ctx).expect("distributed table"));
    killer.join().expect("killer thread");

    assert_eq!(
        distributed_tsv, serial_tsv,
        "distributed Table 1 must be byte-identical to the serial baseline"
    );
    println!("\n{distributed_tsv}");
    println!("byte-identical to the single-endpoint serial run ✓");

    // The scheduler's own account of the turbulence.
    let snap = Registry::global().snapshot();
    let queued = snap.counter("adcomp_sched_units_queued");
    let completed = snap.counter("adcomp_sched_units_completed");
    let requeued = snap.counter("adcomp_sched_units_requeued");
    let expired = snap.counter("adcomp_sched_lease_expired_total");
    println!(
        "scheduler: {queued} units queued, {completed} completed, \
         {requeued} requeued after failures, {expired} leases expired"
    );
    assert!(
        requeued > 0,
        "a dropped and a killed replica must have forced requeues"
    );

    fleet.shutdown();
}
