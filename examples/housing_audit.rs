//! Housing-ad audit on Facebook's restricted interface.
//!
//! The restricted interface exists precisely to prevent discriminatory
//! housing/credit/employment ads: no age or gender targeting, no
//! exclusions, and a sanitized attribute catalog. This example plays an
//! auditor: it verifies the interface enforces those rules, then shows
//! that an advertiser can nonetheless compose two innocuous-looking
//! attributes into a heavily gender-skewed audience — the paper's §4.1
//! result.
//!
//! ```text
//! cargo run --release --example housing_audit
//! ```

use discrimination_via_composition::audit::{
    four_fifths_band, measure_spec, rank_individuals, rep_ratio_of, survey_individuals,
    top_compositions, AuditTarget, Direction, DiscoveryConfig, SensitiveClass, SkewBand,
    FOUR_FIFTHS_HIGH,
};
use discrimination_via_composition::platform::{SimScale, Simulation};
use discrimination_via_composition::population::Gender;
use discrimination_via_composition::targeting::{AttributeId, TargetingSpec};

fn main() {
    let sim = Simulation::build(2020, SimScale::Test);
    let restricted = &sim.facebook_restricted;
    println!("== Interface policy checks ==");

    // 1. The restricted interface rejects demographic targeting and
    //    exclusions outright.
    let by_gender = TargetingSpec::builder().gender(Gender::Female).build();
    assert!(restricted.check(&by_gender).is_err());
    println!("gender targeting rejected: OK");
    let with_exclusion = TargetingSpec::builder()
        .attribute(AttributeId(0))
        .exclude([AttributeId(1)])
        .build();
    assert!(restricted.check(&with_exclusion).is_err());
    println!("exclusion targeting rejected: OK");

    // 2. The catalog is sanitized: smaller than the full interface's.
    println!(
        "catalog: {} options (full interface: {})",
        restricted.catalog().len(),
        sim.facebook.catalog().len()
    );

    // 3. And yet: compositions of permitted options are heavily skewed.
    //    The audit measures through the *normal* interface, which still
    //    exposes gender targeting — exactly as the paper did.
    let target = AuditTarget::for_platform(&sim.facebook_restricted, &sim);
    let male = SensitiveClass::Gender(Gender::Male);
    let survey = survey_individuals(&target).expect("survey");
    let cfg = DiscoveryConfig {
        top_k: 50,
        ..DiscoveryConfig::default()
    };
    let ranked = rank_individuals(&survey, male, Direction::Toward, cfg.min_reach);
    let top = top_compositions(&target, &survey, &ranked, &cfg).expect("discovery");

    println!("\n== Most skewed 2-way compositions a housing advertiser could run ==");
    let mut shown = 0;
    for comp in &top {
        let Some(ratio) = comp.ratio(&survey.base, male) else {
            continue;
        };
        if four_fifths_band(ratio) != SkewBand::Over {
            continue;
        }
        let names: Vec<String> = comp
            .attrs
            .iter()
            .map(|&id| restricted.catalog().get(id).unwrap().name.clone())
            .collect();
        println!(
            "ratio {ratio:>6.2}  reach {:>12}  {}",
            comp.measurement.total,
            names.join("  ∧  ")
        );
        shown += 1;
        if shown >= 8 {
            break;
        }
    }
    assert!(
        shown > 0,
        "skewed compositions must exist on the sanitized interface"
    );

    // 4. Compare with the skew of the individual options involved, using
    //    the most skewed discovered composition.
    let example = top
        .iter()
        .max_by(|a, b| {
            let ra = a.ratio(&survey.base, male).unwrap_or(0.0);
            let rb = b.ratio(&survey.base, male).unwrap_or(0.0);
            ra.partial_cmp(&rb).expect("finite ratios")
        })
        .expect("non-empty discovery");
    let base = measure_spec(&target, &TargetingSpec::everyone()).unwrap();
    let combined = rep_ratio_of(&example.measurement, &base, male).unwrap();
    println!("\nMost skewed composition ratio: {combined:.2} — components:");
    for &id in &example.attrs {
        let individual = &survey.entries[id.0 as usize];
        let r = individual.ratio(&survey.base, male).unwrap();
        println!(
            "  {:<55} {r:.2}",
            restricted.catalog().get(id).unwrap().name
        );
    }
    println!(
        "\nConclusion: the sanitized interface still allows targeting {}x more",
        (combined / FOUR_FIFTHS_HIGH).round()
    );
    println!("male-skewed than the four-fifths threshold, via composition alone.");
}
