//! Longitudinal audit: the same survey recorded in two epochs, diffed
//! entirely offline.
//!
//! The paper's audit is a snapshot; real platforms move under the
//! auditor between visits. This example records two epochs of the same
//! individual survey into crash-safe run stores — epoch one against a
//! well-behaved platform, epoch two against the *same* platform six
//! months later, when its estimate endpoint has grown noisy and its
//! audience has drifted (a [`FaultPlan`] with `Noise` and `Drift`
//! faults). Both epochs go over the wire, like the paper's crawls.
//!
//! The drift report is then computed purely from the two recordings —
//! no platform, no simulation — and flags every `(spec, class)`
//! representation ratio that crossed a four-fifths threshold between
//! epochs: audiences whose compliance class silently changed while the
//! auditor was away.
//!
//! ```text
//! cargo run --release --example longitudinal_audit
//! ```

use std::sync::Arc;

use discrimination_via_composition::audit::{drift_between, survey_individuals, AuditTarget};
use discrimination_via_composition::platform::{
    FaultKind, FaultPlan, FaultyPlatform, Schedule, SimScale, Simulation,
};
use discrimination_via_composition::store::RunStore;
use discrimination_via_composition::wire::{serve, ServerConfig};
use discrimination_via_composition::RemoteSource;

const SEED: u64 = 2020;

/// Records one epoch's survey over the wire into `dir`, returning the
/// number of surveyed attributes.
fn record_epoch(
    platform: Arc<dyn discrimination_via_composition::platform::PlatformApi>,
    dir: &std::path::Path,
) -> usize {
    let handle = serve(platform, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let remote = Arc::new(RemoteSource::connect(handle.addr()).expect("connect"));
    let store = Arc::new(RunStore::open(dir).expect("open run store"));
    let target = AuditTarget::direct(remote)
        .with_recording(store.clone())
        .expect("wrap recorder");
    let survey = survey_individuals(&target).expect("survey");
    store.save_snapshot().expect("persist snapshot");
    handle.shutdown();
    survey.entries.len()
}

fn main() {
    let root = std::env::temp_dir().join(format!("adcomp-longitudinal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let dir1 = root.join("epoch-1");
    let dir2 = root.join("epoch-2");
    std::fs::create_dir_all(&dir1).expect("epoch-1 dir");
    std::fs::create_dir_all(&dir2).expect("epoch-2 dir");

    // ── Epoch 1: the baseline crawl. ────────────────────────────────────
    let sim = Simulation::build(SEED, SimScale::Test);
    let n = record_epoch(sim.linkedin.clone(), &dir1);
    println!(
        "epoch 1 recorded: {n} attributes surveyed → {}",
        dir1.display()
    );

    // ── Epoch 2: the platform has moved. ────────────────────────────────
    //
    // Same simulated platform (same seed), but the estimate endpoint now
    // perturbs every other answer by up to ±35 % and inflates everything
    // by a slow monotone drift — audience growth plus an obfuscated size
    // field, the changes §3's consistency probes exist to catch.
    let sim2 = Simulation::build(SEED, SimScale::Test);
    let plan = FaultPlan::new(41)
        .with(
            FaultKind::Noise { amplitude: 0.35 },
            Schedule::EveryNth {
                period: 2,
                offset: 0,
            },
        )
        .with(
            FaultKind::Drift { rate: 0.0005 },
            Schedule::EveryNth {
                period: 1,
                offset: 0,
            },
        );
    let faulty = Arc::new(FaultyPlatform::new(sim2.linkedin.clone(), plan));
    let n2 = record_epoch(faulty.clone(), &dir2);
    println!(
        "epoch 2 recorded: {n2} attributes surveyed through {} injected perturbations → {}",
        faulty.injected().total(),
        dir2.display()
    );

    // ── The diff, computed offline from the recordings alone. ───────────
    let store1 = RunStore::open(&dir1).expect("reopen epoch 1");
    let store2 = RunStore::open(&dir2).expect("reopen epoch 2");
    let report = drift_between(&store1.snapshot(), &store2.snapshot());

    println!();
    print!("{}", report.render("epoch-1 → epoch-2"));

    let crossings: Vec<_> = report.ratio_moves.iter().filter(|m| m.crossed()).collect();
    println!(
        "\n{} of {} common specs moved; {} representation ratios compared, \
         {} crossed a four-fifths threshold",
        report.estimate_drifts.len(),
        report.common_specs,
        report.ratios_compared,
        crossings.len()
    );
    for m in crossings.iter().take(8) {
        let (before_band, after_band) = m.bands();
        println!(
            "  {}: `{}` × {} — ratio {:.2} → {:.2} ({before_band:?} → {after_band:?})",
            m.label, m.spec, m.class, m.before, m.after
        );
    }

    // The drifted epoch must actually have been flagged — an audience
    // that changed compliance class between visits is the finding a
    // longitudinal audit exists to surface.
    assert!(
        !report.identical(),
        "the drifted epoch cannot be estimate-identical"
    );
    assert!(
        report.findings() > 0,
        "noise + drift faults must surface as drift findings"
    );

    // Epoch 1 is still fully replayable on its own, platform long gone.
    let replay = AuditTarget::from_replay(&store1, "LinkedIn").expect("replay epoch 1");
    let replayed = survey_individuals(&replay).expect("offline replay");
    assert_eq!(replayed.entries.len(), n);
    println!(
        "\nepoch 1 replays offline: {} attributes, base audience {} ✓",
        replayed.entries.len(),
        replayed.base.total
    );
    let _ = std::fs::remove_dir_all(&root);
}
