//! Lookalike audiences and the "Special Ad Audience" adjustment.
//!
//! The restricted interface replaces Lookalike Audiences with Special Ad
//! Audiences that are "adjusted to comply with the audience selection
//! restrictions" (paper §2.2) — i.e. built without demographic features.
//! This example uploads a male-skewed customer list, expands it both
//! ways, and measures what the adjustment actually buys: skew drops a
//! little, but behavioural similarity leaks the seed's demographics into
//! the expansion regardless.
//!
//! ```text
//! cargo run --release --example lookalike_leakage
//! ```

use discrimination_via_composition::audit::FOUR_FIFTHS_HIGH;
use discrimination_via_composition::bitset::Bitset;
use discrimination_via_composition::platform::{LookalikeConfig, SimScale, Simulation};
use discrimination_via_composition::population::Gender;

fn main() {
    let sim = Simulation::build(2020, SimScale::Test);
    let fb = &sim.facebook;
    let universe = fb.universe();
    let males = universe.gender_audience(Gender::Male);
    let females = universe.gender_audience(Gender::Female);

    let ratio = |set: &Bitset| {
        let m = set.intersection_len(males) as f64 / males.len() as f64;
        let f = set.intersection_len(females) as f64 / females.len() as f64;
        m / f
    };

    // The advertiser's "customer list": members of the most male-skewed
    // attribute audience (stand-in for a PII upload of, say, the buyers
    // of a male-dominated product).
    let seed = (0..fb.catalog().len())
        .map(|idx| fb.attribute_audience_raw(idx).unwrap())
        .filter(|audience| audience.len() >= 500)
        .max_by(|a, b| ratio(a).partial_cmp(&ratio(b)).unwrap())
        .expect("catalog has audiences")
        .clone();

    println!(
        "seed (customer list):       {:>8} users, male ratio {:>5.2}",
        seed.len(),
        ratio(&seed)
    );

    let regular = fb
        .lookalike(&seed, &LookalikeConfig::default())
        .expect("lookalike");
    println!(
        "regular lookalike:          {:>8} users, male ratio {:>5.2}",
        regular.len(),
        ratio(&regular)
    );

    let saa = fb
        .lookalike(&seed, &LookalikeConfig::special_ad_audience())
        .expect("special ad audience");
    println!(
        "special ad audience (SAA):  {:>8} users, male ratio {:>5.2}",
        saa.len(),
        ratio(&saa)
    );

    println!();
    println!("The SAA 'adjustment' removes explicit demographic features, yet the");
    println!("expansion remains skewed: attribute co-membership carries demographics.");
    println!("Outcome-level mitigation (core::mitigation::PreflightGate) would catch");
    println!("both audiences; feature-level adjustment catches neither.");

    assert!(
        ratio(&regular) > FOUR_FIFTHS_HIGH,
        "regular lookalike should violate four-fifths"
    );
    assert!(
        ratio(&saa) > FOUR_FIFTHS_HIGH,
        "SAA should still violate four-fifths"
    );
    assert!(ratio(&saa) <= ratio(&regular) + 1e-9);
}
