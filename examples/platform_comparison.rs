//! Cross-platform comparison: how individual-attribute skew differs
//! across Facebook, FB-restricted, Google, and LinkedIn — a miniature of
//! the paper's Figure 2 "Individual" columns plus the §4.2 observations
//! (LinkedIn leans male; Google/LinkedIn lean away from 18-24).
//!
//! ```text
//! cargo run --release --example platform_comparison
//! ```

use discrimination_via_composition::audit::experiments::{
    ExperimentConfig, ExperimentContext, INTERFACE_ORDER,
};
use discrimination_via_composition::audit::{BoxStats, SensitiveClass};
use discrimination_via_composition::population::{AgeBucket, Gender};

fn main() {
    let ctx = ExperimentContext::new(ExperimentConfig::test(2020));
    let male = SensitiveClass::Gender(Gender::Male);
    let young = SensitiveClass::Age(AgeBucket::A18_24);

    println!(
        "{:<15} {:<9} {:>8} {:>8} {:>8} {:>8} {:>6}",
        "interface", "class", "p10", "median", "p90", "max", "n"
    );
    for kind in INTERFACE_ORDER {
        let survey = ctx.survey(kind).expect("survey");
        for class in [male, young] {
            let ratios: Vec<f64> = survey
                .entries
                .iter()
                .filter(|e| e.measurement.total >= 10_000)
                .filter_map(|e| e.ratio(&survey.base, class))
                .collect();
            let b = BoxStats::from_samples(&ratios).expect("non-empty");
            println!(
                "{:<15} {:<9} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>6}",
                kind.label(),
                class.to_string(),
                b.p10,
                b.median,
                b.p90,
                b.max,
                b.n
            );
        }
    }

    // The paper's §4.2 directional finding, verified on the simulation.
    // The median is the stable statistic at this reduced scale (the p90
    // tail of ~70 attributes is a handful of samples).
    let median_male = |kind| {
        let survey = ctx.survey(kind).unwrap();
        let ratios: Vec<f64> = survey
            .entries
            .iter()
            .filter(|e| e.measurement.total >= 10_000)
            .filter_map(|e| e.ratio(&survey.base, male))
            .collect();
        BoxStats::from_samples(&ratios).unwrap().median
    };
    use discrimination_via_composition::platform::InterfaceKind;
    let li = median_male(InterfaceKind::LinkedIn);
    let fb = median_male(InterfaceKind::FacebookNormal);
    println!("\nLinkedIn individual male median = {li:.2}; Facebook = {fb:.2}");
    println!("(paper's direction: LinkedIn's professional catalog leans male, Facebook's female)");
    assert!(li > fb, "LinkedIn should lean more male than Facebook");
}
