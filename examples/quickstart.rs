//! Quickstart: build a simulated platform, compose two targeting
//! attributes, and measure how much more skewed the composition is than
//! either attribute alone — the paper's core phenomenon in ~40 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use discrimination_via_composition::audit::{
    measure_spec, rep_ratio_of, AuditTarget, SensitiveClass,
};
use discrimination_via_composition::platform::{SimScale, Simulation};
use discrimination_via_composition::population::Gender;
use discrimination_via_composition::targeting::{AttributeId, TargetingSpec};

fn main() {
    // A deterministic, laptop-sized simulation of all four interfaces.
    let sim = Simulation::build(2020, SimScale::Test);
    let target = AuditTarget::for_platform(&sim.facebook, &sim);
    let male = SensitiveClass::Gender(Gender::Male);

    // The base population measurement RA (denominators of Equation 1).
    let base = measure_spec(&target, &TargetingSpec::everyone()).expect("base measurement");

    // Find a male-skewed pair of attributes to demonstrate with.
    let catalog = sim.facebook.catalog();
    let mut best: Option<(AttributeId, AttributeId, f64, f64, f64)> = None;
    for a in 0..60u32 {
        for b in (a + 1)..60u32 {
            let (ia, ib) = (AttributeId(a), AttributeId(b));
            let ra = ratio(&target, &base, TargetingSpec::and_of([ia]), male);
            let rb = ratio(&target, &base, TargetingSpec::and_of([ib]), male);
            let rab = ratio(&target, &base, TargetingSpec::and_of([ia, ib]), male);
            if let (Some(ra), Some(rb), Some(rab)) = (ra, rb, rab) {
                if rab > ra.max(rb)
                    && ra > 1.2
                    && rb > 1.2
                    && best.is_none_or(|(.., prev)| rab > prev)
                {
                    best = Some((ia, ib, ra, rb, rab));
                }
            }
        }
    }

    let (ia, ib, ra, rb, rab) = best.expect("an amplifying pair exists in the first 60 attrs");
    let name = |id: AttributeId| catalog.get(id).unwrap().name.clone();
    println!("Attribute A: {:<50} rep ratio (male) = {ra:.2}", name(ia));
    println!("Attribute B: {:<50} rep ratio (male) = {rb:.2}", name(ib));
    println!(
        "A AND B:     {:<50} rep ratio (male) = {rab:.2}",
        "(composition)"
    );
    println!();
    println!(
        "The composition is {:.1}x more skewed than the stronger component —",
        rab / ra.max(rb)
    );
    println!("composing individually-mild targeting options amplifies demographic skew.");
    assert!(rab > ra.max(rb));
}

fn ratio(
    target: &AuditTarget,
    base: &discrimination_via_composition::audit::SpecMeasurement,
    spec: TargetingSpec,
    class: SensitiveClass,
) -> Option<f64> {
    let m = measure_spec(target, &spec).ok()?;
    if m.total < 10_000 {
        return None; // the paper's niche-targeting filter
    }
    rep_ratio_of(&m, base, class)
}
