//! Recall maximisation across multiple skewed compositions.
//!
//! §4.3 of the paper: one skewed composition reaches only a sliver of a
//! sensitive population, but because composition audiences barely
//! overlap, an advertiser can run ads across the top-k compositions and
//! multiply their effective (still skewed) reach. This example measures
//! overlap, estimates the union by inclusion–exclusion, and shows the
//! convergence of partial sums the paper reports.
//!
//! ```text
//! cargo run --release --example recall_maximizer
//! ```

use discrimination_via_composition::audit::{
    median_pairwise_overlap, rank_individuals, survey_individuals, top_compositions, union_recall,
    AuditTarget, Direction, DiscoveryConfig, Selector, SensitiveClass,
};
use discrimination_via_composition::platform::{SimScale, Simulation};
use discrimination_via_composition::population::Gender;
use discrimination_via_composition::targeting::TargetingSpec;

fn main() {
    let sim = Simulation::build(2020, SimScale::Test);
    let target = AuditTarget::for_platform(&sim.facebook, &sim);
    let female = SensitiveClass::Gender(Gender::Female);
    let selector = Selector::Class(female);

    // Discover the most female-skewed compositions.
    let survey = survey_individuals(&target).expect("survey");
    let cfg = DiscoveryConfig {
        top_k: 60,
        ..DiscoveryConfig::default()
    };
    let ranked = rank_individuals(&survey, female, Direction::Toward, cfg.min_reach);
    let mut comps = top_compositions(&target, &survey, &ranked, &cfg).expect("discovery");
    comps.sort_by(|a, b| {
        b.ratio(&survey.base, female)
            .partial_cmp(&a.ratio(&survey.base, female))
            .expect("finite")
    });
    let specs: Vec<TargetingSpec> = comps.iter().take(10).map(|c| c.spec.clone()).collect();
    assert!(!specs.is_empty(), "need discovered compositions");

    // How much do their female audiences overlap?
    let overlap = median_pairwise_overlap(&target, &specs, selector, 10)
        .expect("overlap queries")
        .unwrap_or(0.0);
    println!(
        "median pairwise overlap of top compositions: {:.1}%",
        overlap * 100.0
    );

    // Top-1 recall vs the top-10 union.
    let population = target
        .selector_estimate(&TargetingSpec::everyone(), selector)
        .expect("population");
    let top1 = target
        .selector_estimate(&specs[0], selector)
        .expect("top-1");
    let union = union_recall(&target, &specs, selector, specs.len()).expect("union");

    println!("female population:        {population:>14}");
    println!(
        "top-1 composition recall: {top1:>14} ({:.2}%)",
        pct(top1, population)
    );
    println!(
        "top-10 union recall:      {:>14} ({:.2}%)  [{} queries]",
        union.recall,
        pct(union.recall, population),
        union.queries
    );
    println!("\ninclusion–exclusion partial sums (convergence):");
    for (order, sum) in union.partial_sums.iter().enumerate() {
        println!("  order {:>2}: {sum}", order + 1);
    }
    assert!(
        union.recall > top1,
        "running across compositions must increase recall"
    );
    println!(
        "\nunion recall is {:.1}x the single best composition — low overlap lets an",
        union.recall as f64 / top1.max(1) as f64
    );
    println!("advertiser scale a skewed campaign, as the paper's Table 1 shows.");
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}
