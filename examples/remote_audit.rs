//! Remote audit over the wire protocol — including against a *hostile*
//! transport.
//!
//! The paper's measurements went through the platforms' network APIs;
//! this example does the same: it serves a simulated LinkedIn on a local
//! TCP port, connects the audit pipeline through [`RemoteSource`], and
//! verifies the remote audit returns byte-identical estimates to the
//! in-process one. It then re-runs a granularity probe through a server
//! that injects transient errors, rate limits, and dropped connections —
//! and survives a mid-probe "crash" by resuming from a checkpoint.
//!
//! The whole run is observable: a JSONL trace of every phase streams to
//! `results/remote_audit_trace.jsonl`, the global metrics registry is
//! dumped to `results/remote_audit_metrics.prom` (with the retry,
//! rate-limit, and reconnect counters the fault plan must have moved),
//! and an end-of-run report prints what degraded.
//!
//! ```text
//! cargo run --release --example remote_audit
//! ```

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use adcomp_obs::{Registry, RunReport, Tracer};

use discrimination_via_composition::audit::{
    rank_individuals, survey_individuals, top_compositions, AuditTarget, Direction,
    DiscoveryConfig, EstimateSource, GranularityProbe, ProbeCheckpoint, ResilienceConfig,
    SensitiveClass,
};
use discrimination_via_composition::platform::{
    FaultKind, FaultPlan, FaultyPlatform, Schedule, SimScale, Simulation,
};
use discrimination_via_composition::population::Gender;
use discrimination_via_composition::wire::{serve, ClientConfig, FaultPlanHook, ServerConfig};
use discrimination_via_composition::RemoteSource;

fn main() {
    // Stream the structured trace to disk for post-hoc analysis.
    std::fs::create_dir_all("results").expect("results dir");
    let trace_path = Path::new("results/remote_audit_trace.jsonl");
    Tracer::global()
        .install_jsonl(trace_path)
        .expect("install trace sink");

    let sim = Simulation::build(2020, SimScale::Test);

    // Serve LinkedIn on a loopback socket with polite rate limiting.
    let config = ServerConfig::rate_limited(20_000.0, 1_000.0);
    let handle = serve(sim.linkedin.clone(), "127.0.0.1:0", config).expect("bind");
    println!("serving simulated LinkedIn on {}", handle.addr());

    // The audit connects like the paper's scripts connected to the real
    // APIs — it sees only the wire surface.
    let remote = Arc::new(RemoteSource::connect(handle.addr()).expect("connect"));
    let prefetched = remote.prefetch_catalog().expect("catalog download");
    println!(
        "connected: {} ({} catalog attributes, {} prefetched in bulk)",
        remote.label(),
        remote.catalog_len(),
        prefetched
    );
    let target = AuditTarget::direct(remote);

    let male = SensitiveClass::Gender(Gender::Male);
    let survey = {
        let _span = Tracer::global().span("remote:survey");
        survey_individuals(&target).expect("remote survey")
    };
    let cfg = DiscoveryConfig {
        top_k: 30,
        ..DiscoveryConfig::default()
    };
    let ranked = rank_individuals(&survey, male, Direction::Toward, cfg.min_reach);
    let top = {
        let _span = Tracer::global().span("remote:discovery");
        top_compositions(&target, &survey, &ranked, &cfg).expect("remote discovery")
    };

    println!("\ntop male-skewed compositions discovered over the wire:");
    for comp in top.iter().take(5) {
        let ratio = comp.ratio(&survey.base, male).unwrap_or(f64::NAN);
        let names: Vec<String> = comp
            .attrs
            .iter()
            .map(|&id| target.targeting.attribute_name(id).unwrap_or_default())
            .collect();
        println!("  ratio {ratio:>6.2}  {}", names.join("  ∧  "));
    }

    // Cross-check: the same audit in-process gives identical estimates.
    let local = AuditTarget::for_platform(&sim.linkedin, &sim);
    let local_survey = survey_individuals(&local).expect("local survey");
    assert_eq!(
        survey.base, local_survey.base,
        "base measurements must match"
    );
    for (r, l) in survey.entries.iter().zip(&local_survey.entries) {
        assert_eq!(r.measurement, l.measurement, "attribute {:?}", r.attrs);
    }
    println!(
        "\nremote audit matches in-process audit on all {} attributes ✓",
        survey.entries.len()
    );
    handle.shutdown();

    // ── Part 2: the same probe against an unreliable platform. ──────────
    //
    // A deterministic fault plan makes the server reject every 29th call
    // transiently, rate-limit every 37th (with a structured retry-after
    // hint), and drop the TCP connection on every 47th request. The
    // resilient client stack retries through all of it, and a checkpoint
    // file turns a hard kill into a resume.
    println!("\n--- fault injection ---");
    let fault_span = Tracer::global().span("remote:fault_probe");
    let plan = FaultPlan::new(7)
        .with(
            FaultKind::Transient,
            Schedule::EveryNth {
                period: 29,
                offset: 5,
            },
        )
        .with(
            FaultKind::RateLimit {
                retry_after: Duration::from_millis(2),
            },
            Schedule::EveryNth {
                period: 37,
                offset: 11,
            },
        )
        .with(
            FaultKind::Drop { mid_frame: false },
            Schedule::EveryNth {
                period: 47,
                offset: 3,
            },
        );
    let faulty = Arc::new(FaultyPlatform::new(sim.linkedin.clone(), plan.clone()));
    let config = ServerConfig::default().with_fault_hook(Arc::new(FaultPlanHook(plan)));
    let handle = serve(faulty.clone(), "127.0.0.1:0", config).expect("bind");

    let client = discrimination_via_composition::wire::Client::connect_with(
        handle.addr(),
        ClientConfig::fast(),
    )
    .expect("connect");
    let remote = Arc::new(RemoteSource::new(client).expect("describe"));
    let target = AuditTarget::direct(remote).with_resilience(ResilienceConfig::standard(2020));

    let ckpt = std::env::temp_dir().join("remote_audit_probe.ckpt");
    let _ = std::fs::remove_file(&ckpt);
    let mut probe = GranularityProbe::new(2020, 120);
    // Run the first half, checkpoint, then pretend the process died and
    // resume from disk — answered queries are never re-issued.
    let (report, answered) = match probe.run_checkpointed(&target, &ckpt, 25) {
        Ok(report) => (report, probe.observations().len()),
        Err(e) => {
            println!("probe interrupted ({e}); resuming from {}", ckpt.display());
            let mut resumed =
                GranularityProbe::resume(ProbeCheckpoint::load(&ckpt).expect("checkpoint"));
            let report = resumed
                .run_checkpointed(&target, &ckpt, 25)
                .expect("resumed probe");
            (report, resumed.observations().len())
        }
    };
    let injected = faulty.injected();
    println!(
        "granularity probe finished through {} injected faults \
         ({} transient, {} rate-limited): consistent floors across {answered} observations ✓",
        injected.total(),
        injected.transient,
        injected.rate_limited,
    );
    println!(
        "max significant digits observed: {}",
        report.max_significant_digits()
    );
    let _ = std::fs::remove_file(&ckpt);
    handle.shutdown();
    drop(fault_span);

    // ── Part 3: the observability record of everything above. ───────────
    //
    // The fault plan must have left its marks in the global registry:
    // retries absorbed by the resilience layer, rate-limited calls the
    // wire client waited out, and reconnects after dropped connections.
    let registry = Registry::global();
    let metrics_path = Path::new("results/remote_audit_metrics.prom");
    std::fs::write(metrics_path, registry.render_prometheus()).expect("write metrics dump");

    let snap = registry.snapshot();
    let retries = snap.counter("adcomp_retries_total");
    let rate_limited = snap.counter("adcomp_wire_retries_total");
    let reconnects = snap.counter("adcomp_wire_reconnects_total");
    assert!(
        retries > 0,
        "fault plan must have forced resilience retries"
    );
    assert!(
        reconnects > 0,
        "dropped connections must have forced reconnects"
    );
    println!(
        "\nobservability: {retries} resilience retries, {rate_limited} wire retries, \
         {reconnects} reconnects recorded"
    );

    Tracer::global().flush();
    let trace = std::fs::read_to_string(trace_path).expect("read trace");
    for phase in [
        "remote:survey",
        "remote:discovery",
        "remote:fault_probe",
        "probe:granularity",
    ] {
        assert!(
            trace.contains(phase),
            "JSONL trace must cover phase {phase}"
        );
    }
    println!(
        "trace: {} events across all phases → {}",
        trace.lines().count(),
        trace_path.display()
    );
    println!("metrics dump → {}", metrics_path.display());

    let mut report = RunReport::new("remote_audit");
    let skipped = snap.counter("adcomp_skipped_total");
    if skipped > 0 {
        report.degradation(format!("{skipped} spec(s) skipped after exhausted retries"));
    }
    report.note(format!("{} injected faults survived", injected.total()));
    report.note(format!("trace: {}", trace_path.display()));
    print!("\n{}", report.render());
}
