//! Remote audit over the wire protocol.
//!
//! The paper's measurements went through the platforms' network APIs;
//! this example does the same: it serves a simulated LinkedIn on a local
//! TCP port, connects the audit pipeline through [`RemoteSource`], and
//! verifies the remote audit returns byte-identical estimates to the
//! in-process one.
//!
//! ```text
//! cargo run --release --example remote_audit
//! ```

use std::sync::Arc;

use discrimination_via_composition::audit::{
    rank_individuals, survey_individuals, top_compositions, AuditTarget, Direction,
    DiscoveryConfig, EstimateSource, SensitiveClass,
};
use discrimination_via_composition::platform::{SimScale, Simulation};
use discrimination_via_composition::population::Gender;
use discrimination_via_composition::wire::{serve, ServerConfig};
use discrimination_via_composition::RemoteSource;

fn main() {
    let sim = Simulation::build(2020, SimScale::Test);

    // Serve LinkedIn on a loopback socket with polite rate limiting.
    let config = ServerConfig { rate_limit: Some(20_000.0), burst: 1_000.0 };
    let handle = serve(sim.linkedin.clone(), "127.0.0.1:0", config).expect("bind");
    println!("serving simulated LinkedIn on {}", handle.addr());

    // The audit connects like the paper's scripts connected to the real
    // APIs — it sees only the wire surface.
    let remote = Arc::new(RemoteSource::connect(handle.addr()).expect("connect"));
    let prefetched = remote.prefetch_catalog().expect("catalog download");
    println!(
        "connected: {} ({} catalog attributes, {} prefetched in bulk)",
        remote.label(),
        remote.catalog_len(),
        prefetched
    );
    let target = AuditTarget::direct(remote);

    let male = SensitiveClass::Gender(Gender::Male);
    let survey = survey_individuals(&target).expect("remote survey");
    let cfg = DiscoveryConfig { top_k: 30, ..DiscoveryConfig::default() };
    let ranked = rank_individuals(&survey, male, Direction::Toward, cfg.min_reach);
    let top = top_compositions(&target, &survey, &ranked, &cfg).expect("remote discovery");

    println!("\ntop male-skewed compositions discovered over the wire:");
    for comp in top.iter().take(5) {
        let ratio = comp.ratio(&survey.base, male).unwrap_or(f64::NAN);
        let names: Vec<String> = comp
            .attrs
            .iter()
            .map(|&id| target.targeting.attribute_name(id).unwrap_or_default())
            .collect();
        println!("  ratio {ratio:>6.2}  {}", names.join("  ∧  "));
    }

    // Cross-check: the same audit in-process gives identical estimates.
    let local = AuditTarget::for_platform(&sim.linkedin, &sim);
    let local_survey = survey_individuals(&local).expect("local survey");
    assert_eq!(survey.base, local_survey.base, "base measurements must match");
    for (r, l) in survey.entries.iter().zip(&local_survey.entries) {
        assert_eq!(r.measurement, l.measurement, "attribute {:?}", r.attrs);
    }
    println!("\nremote audit matches in-process audit on all {} attributes ✓", survey.entries.len());

    handle.shutdown();
}
