//! Offline stand-in for the `bytes` crate.
//!
//! The wire codec only needs big-endian cursor reads over `&[u8]` and
//! big-endian appends onto `Vec<u8>`; this shim provides exactly that
//! [`Buf`]/[`BufMut`] subset. Reads past the end panic, as upstream's
//! do — the codec guards every read with an explicit length check.

#![forbid(unsafe_code)]

/// Read side: a cursor over a byte buffer.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Consumes `n` bytes, returning them.
    fn take_bytes(&mut self, n: usize) -> &[u8];

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take_bytes(2).try_into().expect("2 bytes"))
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_bytes(4).try_into().expect("4 bytes"))
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take_bytes(8).try_into().expect("8 bytes"))
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_bytes(&mut self, n: usize) -> &[u8] {
        let (head, rest) = self.split_at(n);
        *self = rest;
        head
    }
}

/// Write side: appending big-endian integers and slices.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Owned immutable byte buffer (kept for API parity; rarely needed).
pub type Bytes = Vec<u8>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = Vec::new();
        buf.put_u8(7);
        buf.put_u16(0xABCD);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(0x0123_4567_89AB_CDEF);
        buf.put_slice(b"xyz");
        let mut cursor: &[u8] = &buf;
        assert_eq!(cursor.remaining(), 1 + 2 + 4 + 8 + 3);
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u16(), 0xABCD);
        assert_eq!(cursor.get_u32(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(cursor, b"xyz");
    }

    #[test]
    fn big_endian_layout_matches_wire_format() {
        let mut buf = Vec::new();
        buf.put_u32(1);
        assert_eq!(buf, [0, 0, 0, 1]);
    }
}
