//! Offline stand-in for the `criterion` crate.
//!
//! Runs each registered benchmark closure a small fixed number of
//! iterations and prints the mean wall-clock time. No statistical
//! analysis, warm-up calibration, or HTML reports — enough to keep
//! `cargo bench` compiling and producing comparable rough numbers.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Iterations per benchmark; small because there is no calibration.
const ITERS: u32 = 30;

/// Opaque value sink preventing the optimiser from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortises setup cost. All variants behave
/// identically here (setup always runs once per iteration).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    total: Duration,
    runs: u32,
}

impl Bencher {
    /// Times `routine` over the fixed iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..ITERS {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.runs += 1;
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.runs += 1;
        }
    }
}

/// Named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark and prints its mean time.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            total: Duration::ZERO,
            runs: 0,
        };
        f(&mut bencher);
        let mean = if bencher.runs == 0 {
            Duration::ZERO
        } else {
            bencher.total / bencher.runs
        };
        println!(
            "bench {}/{}: mean {:?} over {} iters",
            self.name,
            id.into(),
            mean,
            bencher.runs
        );
        self
    }

    /// Accepted for source compatibility; the shim's single-pass timer
    /// has no sampling to configure.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ends the group (upstream flushes reports; nothing to do here).
    pub fn finish(&mut self) {}
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.benchmark_group(id.clone()).bench_function(id, f);
        self
    }
}

/// Declares a group-runner function invoking each benchmark fn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("sum");
        group.bench_function("iter", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runner_executes() {
        benches();
    }
}
