//! Offline stand-in for the `crossbeam` crate.
//!
//! This workspace uses `crossbeam::thread::scope` (maps directly onto
//! `std::thread::scope`, stable since 1.63) and `crossbeam::channel`
//! (multi-producer **multi-consumer** channels, which std's `mpsc` does
//! not provide — its `Receiver` is neither `Clone` nor `Sync`). The
//! channel here is a straightforward `Mutex<VecDeque>` + two `Condvar`s;
//! it favours predictability over raw throughput, which is fine for the
//! coarse work-distribution this workspace does (each message carries a
//! chunk of estimate queries, not a single cheap op).
//!
//! Semantic differences from real crossbeam, none observable to our
//! callers: `thread::scope` panics the parent on child panic instead of
//! returning `Err` (all callers `.expect()`), and `select!` is absent.

#![forbid(unsafe_code)]

/// Scoped threads.
pub mod thread {
    /// Borrow-friendly handle passed to the scope closure.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped worker. The closure receives the scope handle
        /// (crossbeam's signature) so nested spawns keep working.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = *self;
            self.inner.spawn(move || f(&handle))
        }
    }

    /// Runs `f` with a scope in which borrowing spawns are allowed, and
    /// joins every spawned worker before returning.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

/// Multi-producer multi-consumer channels (the crossbeam-channel subset
/// this workspace uses).
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    /// Error returned by [`Sender::send`] when every receiver is gone.
    /// Carries the unsent message back, like crossbeam's.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty (senders still connected).
        Empty,
        /// Channel empty and every sender dropped.
        Disconnected,
    }

    /// Error returned by [`Sender::try_send`]. Carries the unsent
    /// message back, like crossbeam's.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// Every receiver has been dropped.
        Disconnected(T),
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        /// Capacity bound (`None` = unbounded).
        cap: Option<usize>,
        /// Signalled when the queue gains a message or loses all senders.
        not_empty: Condvar,
        /// Signalled when the queue loses a message or loses all
        /// receivers (wakes bounded senders).
        not_full: Condvar,
    }

    /// The sending half; clonable across threads.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; clonable across threads (mpmc — each message
    /// is delivered to exactly one receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a bounded channel; `send` blocks while `cap` messages are
    /// queued. `cap = 0` is treated as 1 (this shim has no rendezvous
    /// mode; no caller relies on one).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is queued (bounded channels may wait
        /// for room). Fails only when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let shared = &self.shared;
            let mut state = shared.lock();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(msg));
                }
                match shared.cap {
                    Some(cap) if state.queue.len() >= cap => {
                        state = shared
                            .not_full
                            .wait(state)
                            .unwrap_or_else(|poisoned| poisoned.into_inner());
                    }
                    _ => break,
                }
            }
            state.queue.push_back(msg);
            drop(state);
            shared.not_empty.notify_one();
            Ok(())
        }

        /// Non-blocking send: queues the message only when the channel
        /// has room right now. The building block for lossy telemetry
        /// queues that must never stall a hot path.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let shared = &self.shared;
            let mut state = shared.lock();
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = shared.cap {
                if state.queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            state.queue.push_back(msg);
            drop(state);
            shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; fails once the channel is
        /// empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let shared = &self.shared;
            let mut state = shared.lock();
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    drop(state);
                    shared.not_full.notify_one();
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = shared
                    .not_empty
                    .wait(state)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let shared = &self.shared;
            let mut state = shared.lock();
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                shared.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Messages currently queued (racy by nature; for gauges).
        pub fn len(&self) -> usize {
            self.shared.lock().queue.len()
        }

        /// Whether the queue is currently empty (racy by nature).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator draining the channel until disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.lock().senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.lock().receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.lock();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Blocked receivers must wake to observe disconnection.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.lock();
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                // Blocked senders must wake to observe disconnection.
                self.shared.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn scoped_spawns_join_and_borrow() {
        let mut data = vec![0u32; 8];
        super::thread::scope(|scope| {
            for (i, slot) in data.iter_mut().enumerate() {
                scope.spawn(move |_| *slot = i as u32 * 2);
            }
        })
        .unwrap();
        assert_eq!(data, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn unbounded_fifo_roundtrip() {
        let (tx, rx) = channel::unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 10);
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert!(rx.is_empty());
    }

    #[test]
    fn disconnection_is_observable_on_both_ends() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(channel::RecvError));
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(9), Err(channel::SendError(9)));
    }

    #[test]
    fn try_recv_distinguishes_empty_from_disconnected() {
        let (tx, rx) = channel::unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        tx.send(3).unwrap();
        assert_eq!(rx.try_recv(), Ok(3));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }

    #[test]
    fn bounded_channel_applies_backpressure() {
        let (tx, rx) = channel::bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        // A third send must block until the consumer drains one slot.
        let handle = std::thread::spawn(move || {
            tx.send(3).unwrap();
            tx.send(4).unwrap();
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        let drained: Vec<i32> = (0..4).map(|_| rx.recv().unwrap()).collect();
        handle.join().unwrap();
        assert_eq!(drained, vec![1, 2, 3, 4]);
    }

    #[test]
    fn try_send_never_blocks() {
        let (tx, rx) = channel::bounded(2);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Ok(()));
        assert_eq!(tx.try_send(3), Err(channel::TrySendError::Full(3)));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(tx.try_send(3), Ok(()));
        drop(rx);
        assert_eq!(tx.try_send(4), Err(channel::TrySendError::Disconnected(4)));
    }

    #[test]
    fn many_producers_many_consumers_deliver_each_message_once() {
        let (tx, rx) = channel::bounded(4);
        let total: u64 = std::thread::scope(|s| {
            for p in 0..4u64 {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..100u64 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                });
            }
            drop(tx);
            let mut sums = Vec::new();
            for _ in 0..4 {
                let rx = rx.clone();
                sums.push(s.spawn(move || rx.iter().map(|_| 1u64).sum::<u64>()));
            }
            drop(rx);
            sums.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, 400, "each message consumed exactly once");
    }
}
