//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` is used by this workspace; it maps
//! directly onto `std::thread::scope` (stable since 1.63). The one
//! semantic difference: a panicking child panics the parent at the end
//! of the scope instead of surfacing as `Err`, which is equivalent for
//! callers that `.expect()` the result (all of ours do).

#![forbid(unsafe_code)]

/// Scoped threads.
pub mod thread {
    /// Borrow-friendly handle passed to the scope closure.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped worker. The closure receives the scope handle
        /// (crossbeam's signature) so nested spawns keep working.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = *self;
            self.inner.spawn(move || f(&handle))
        }
    }

    /// Runs `f` with a scope in which borrowing spawns are allowed, and
    /// joins every spawned worker before returning.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_spawns_join_and_borrow() {
        let mut data = vec![0u32; 8];
        super::thread::scope(|scope| {
            for (i, slot) in data.iter_mut().enumerate() {
                scope.spawn(move |_| *slot = i as u32 * 2);
            }
        })
        .unwrap();
        assert_eq!(data, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }
}
