//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the narrow API surface it actually uses: [`Mutex`] and
//! [`RwLock`] with non-poisoning guards. Backed by `std::sync`; a
//! poisoned lock recovers the inner value, matching `parking_lot`'s
//! poison-free semantics closely enough for this codebase.

#![forbid(unsafe_code)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` cannot fail (poison is swallowed).
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, recovering from poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// A reader-writer lock whose acquisitions cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
