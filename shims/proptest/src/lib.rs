//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use:
//! `proptest!`/`prop_compose!`/`prop_oneof!`, `prop_assert*`,
//! [`strategy::Strategy`] with `prop_map`/`prop_filter`, range and tuple
//! strategies, `collection::vec`, `option::of`, `array::uniform4`,
//! `any::<T>()`, and `sample::Index`.
//!
//! Differences from upstream, deliberately accepted:
//! * **No shrinking** — a failing case reports the panic (with the case
//!   seed) but is not minimised.
//! * **Deterministic** — cases derive from a hash of the test name and
//!   case index, so every run explores the same inputs (upstream
//!   persists failing seeds; we never vary them in the first place).

#![forbid(unsafe_code)]

/// Pseudo-random source for generation: SplitMix64.
pub mod test_runner {
    /// Run configuration; only the case count is honoured.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic generator handed to strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Generator for one `(property, case)` pair. Mixing the test
        /// name in keeps sibling properties on different streams.
        pub fn for_case(test_name: &str, case: u32) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty choice");
            // Modulo bias is ≤ bound/2^64 — irrelevant for test generation.
            self.next_u64() % bound
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Strategies: composable value generators.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of one type.
    pub trait Strategy {
        /// Generated type.
        type Value;

        /// Produces one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Discards values failing `pred` (bounded retries).
        fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                pred,
            }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn gen_value(&self, rng: &mut TestRng) -> S::Value {
            (**self).gen_value(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// `prop_filter` adapter.
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn gen_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.gen_value(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter '{}' rejected 1000 candidates in a row",
                self.whence
            );
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Empty union; populate with [`Union::or`].
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            Union {
                options: Vec::new(),
            }
        }

        /// Adds an alternative.
        pub fn or(mut self, s: impl Strategy<Value = V> + 'static) -> Self {
            self.options.push(Box::new(s));
            self
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn gen_value(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].gen_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn gen_value(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    // Two draws cover the full u128 span when needed.
                    let wide = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                    (self.start as i128 + wide as i128) as $ty
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn gen_value(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let wide = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                    (lo as i128 + wide as i128) as $ty
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn gen_value(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $ty
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn gen_value(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (hi - lo) * rng.unit_f64() as $ty
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($S:ident / $idx:tt),+))*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.gen_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
        (A/0, B/1, C/2, D/3, E/4, F/5)
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
    }
}

/// `any::<T>()` — canonical strategies per type.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Types with a canonical generation strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy wrapper over [`Arbitrary`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! arb_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Mostly ASCII with occasional multi-byte code points, so
            // UTF-8 boundary handling gets exercised.
            if rng.below(4) == 0 {
                char::from_u32(0x00A1 + rng.below(0x2000) as u32).unwrap_or('☃')
            } else {
                (b' ' + rng.below(95) as u8) as char
            }
        }
    }

    impl Arbitrary for String {
        fn arbitrary(rng: &mut TestRng) -> String {
            let len = rng.below(12) as usize;
            (0..len).map(|_| char::arbitrary(rng)).collect()
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Admissible element counts for a collection strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi_inclusive - self.lo + 1) as u64) as usize
        }
    }

    /// `Vec` strategy with sizes drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of values from `element`, with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// `Option<T>` strategy: `None` one time in four.
    pub struct OptionStrategy<S>(S);

    /// Wraps a strategy into an optional one.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.gen_value(rng))
            }
        }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// `[T; N]` from one element strategy.
    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn gen_value(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.0.gen_value(rng))
        }
    }

    macro_rules! uniform_fn {
        ($($name:ident / $n:literal),*) => {$(
            /// Array of $n values from `element`.
            pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray(element)
            }
        )*};
    }

    uniform_fn!(
        uniform2 / 2,
        uniform3 / 3,
        uniform4 / 4,
        uniform5 / 5,
        uniform8 / 8
    );
}

/// Sampling helpers.
pub mod sample {
    use super::arbitrary::Arbitrary;
    use super::test_runner::TestRng;

    /// An index into a collection whose size is only known at use site.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        /// Projects onto `0..len`.
        ///
        /// # Panics
        /// Panics when `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64() as usize)
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };
}

/// Skips the current case when `cond` is false.
///
/// The `proptest!` macro runs each case body inside a closure, so a
/// plain `return` abandons just that case. Unlike upstream, skipped
/// cases count toward the case total.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return;
        }
    };
}

/// Asserts inside a property (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new()$(.or($strategy))+
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...)` body
/// runs for `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $cfg; $($rest)*);
    };
    (@run $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let strategies = ($($strategy,)*);
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    #[allow(unused_variables)]
                    let ($($pat,)*) =
                        $crate::strategy::Strategy::gen_value(&strategies, &mut rng);
                    // Closure wrapper lets prop_assume! skip one case
                    // with a plain `return`.
                    #[allow(clippy::redundant_closure_call)]
                    (|| $body)();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Defines a named strategy function from component strategies.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($arg:ident: $argty:ty),* $(,)?)
        ($($pat:pat in $strategy:expr),* $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(
                ($($strategy,)*),
                move |($($pat,)*)| $body,
            )
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u32> {
        prop_oneof![0u32..10, Just(42u32), (100u32..200).prop_map(|v| v * 2)]
    }

    prop_compose! {
        fn pair()(a in 0u32..50, b in small()) -> (u32, u32) { (a, b) }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_and_unions_stay_in_domain(v in small(), (a, b) in pair()) {
            prop_assert!(v < 10 || v == 42 || (200..400).contains(&v));
            prop_assert!(a < 50);
            prop_assert!(b < 10 || b == 42 || (200..400).contains(&b));
        }

        #[test]
        fn collections_respect_sizes(
            xs in crate::collection::vec(any::<u8>(), 3..6),
            opt in crate::option::of(0u32..5),
            arr in crate::array::uniform4(0u64..9),
            idx in any::<crate::sample::Index>(),
        ) {
            prop_assert!((3..6).contains(&xs.len()));
            if let Some(o) = opt { prop_assert!(o < 5); }
            prop_assert!(arr.iter().all(|&v| v < 9));
            prop_assert!(idx.index(7) < 7);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = crate::collection::vec(0u64..1_000_000, 0..20);
        let a: Vec<Vec<u64>> = (0..10)
            .map(|c| s.gen_value(&mut TestRng::for_case("t", c)))
            .collect();
        let b: Vec<Vec<u64>> = (0..10)
            .map(|c| s.gen_value(&mut TestRng::for_case("t", c)))
            .collect();
        assert_eq!(a, b);
    }
}
