//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment cannot reach crates.io, so the workspace ships
//! the narrow surface it uses: [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer and float ranges, [`Rng::gen_bool`],
//! and [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++
//! seeded through SplitMix64 — different output streams than upstream
//! `StdRng` (ChaCha12), but the workspace only relies on seeded
//! *determinism*, never on specific upstream sequences.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`low..high` or `low..=high`).
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Bernoulli sample.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Maps 64 random bits to `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Debiased uniform integer in `[0, span)` via Lemire-style rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    // Rejection zone keeps the modulo unbiased.
    let zone = u128::MAX - (u128::MAX - span + 1) % span;
    loop {
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if wide <= zone {
            return wide % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_below(rng, span) as i128) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_below(rng, span) as i128) as $ty
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range");
                self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $ty
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — fast, 256-bit state, excellent statistical quality.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Alias: the workspace does not distinguish small/std generators.
    pub type SmallRng = StdRng;

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and sampling.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((27_000..33_000).contains(&hits), "hits={hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_500..11_500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn shuffle_permutes_and_choose_hits_all() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "shuffle of 50 items should move something");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle is a permutation");
        assert!(orig.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
