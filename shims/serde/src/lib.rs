//! Offline stand-in for the `serde` crate.
//!
//! Provides the `Serialize`/`Deserialize` *names* — as no-op derive
//! macros plus empty marker traits — so types can keep their derive
//! annotations without pulling the real framework. Nothing in this
//! workspace serialises through serde; the wire layer has a hand-rolled
//! codec.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize` (no methods; the no-op
/// derive does not implement it, and no code here bounds on it).
pub trait SerializeMarker {}

/// Marker counterpart of `serde::Deserialize`.
pub trait DeserializeMarker {}
