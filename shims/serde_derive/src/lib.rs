//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on plain data types
//! but never serialises through serde (the wire layer has its own
//! codec), so the derives can expand to nothing. The `serde` helper
//! attribute is registered so `#[serde(...)]` field attributes, should
//! any appear, do not break the build.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
