//! Spawning a *fleet* of wire endpoints over one simulation, so the
//! distributed scheduler ([`adcomp_core::ScheduledSource`]) has real
//! replicas to shard across: every replica is a full wire server
//! ([`adcomp_wire::serve`]) wrapping the **same** `Arc<AdPlatform>`,
//! queried through its own [`RemoteSource`] connection.
//!
//! Because all replicas of an interface share one platform instance,
//! any replica answers any query identically — which is exactly the
//! property the scheduler's determinism guarantee rests on. The fleet
//! is what the paper's audits would look like against a load-balanced
//! ads API: many HTTP frontends, one backing estimate service.
//!
//! Used by the scheduler equivalence test, the `fleet_audit` example
//! and the `sched_throughput` bench; see EXPERIMENTS.md ("Distributed
//! audits") for the topology.

use std::sync::{Arc, Mutex, MutexGuard};

use adcomp_core::experiments::EndpointSetFactory;
use adcomp_core::EstimateSource;
use adcomp_platform::{InterfaceKind, PlatformApi, Simulation};
use adcomp_wire::{serve, ClientConfig, ServerConfig, ServerHandle};

use crate::RemoteSource;

/// The interfaces [`Fleet::launch`] replicates, in a fixed internal
/// order. [`Fleet::launch_apis`] accepts any roster instead.
const FLEET_INTERFACES: [InterfaceKind; 4] = [
    InterfaceKind::FacebookNormal,
    InterfaceKind::FacebookRestricted,
    InterfaceKind::GoogleDisplay,
    InterfaceKind::LinkedIn,
];

/// `replicas` wire servers per interface plus one connected
/// [`RemoteSource`] client per server.
///
/// Handles are droppable mid-run: [`kill`](Fleet::kill) shuts a single
/// replica down while audits are in flight, which is how the failover
/// tests exercise lease expiry and requeue. Dropping the fleet drains
/// and joins every remaining server.
pub struct Fleet {
    kinds: Vec<InterfaceKind>,
    replicas: usize,
    handles: Mutex<Vec<Option<ServerHandle>>>,
    sources: Vec<Arc<RemoteSource>>,
}

impl Fleet {
    /// Launches `replicas` default-configured servers per interface.
    pub fn launch(sim: &Simulation, replicas: usize) -> std::io::Result<Fleet> {
        Fleet::launch_with(
            sim,
            replicas,
            |_, _| ServerConfig::default(),
            |_, _| ClientConfig::fast(),
        )
    }

    /// Launches with per-replica server and client configs (attach a
    /// fault hook to one replica, stretch another's socket timeout so a
    /// kill exercises lease expiry instead of fail-fast requeue, …).
    pub fn launch_with(
        sim: &Simulation,
        replicas: usize,
        server_config: impl FnMut(InterfaceKind, usize) -> ServerConfig,
        client_config: impl FnMut(InterfaceKind, usize) -> ClientConfig,
    ) -> std::io::Result<Fleet> {
        let apis = FLEET_INTERFACES
            .iter()
            .map(|&kind| {
                let platform = match kind {
                    InterfaceKind::FacebookNormal => &sim.facebook,
                    InterfaceKind::FacebookRestricted => &sim.facebook_restricted,
                    InterfaceKind::GoogleDisplay => &sim.google,
                    InterfaceKind::LinkedIn => &sim.linkedin,
                };
                (kind, platform.clone() as Arc<dyn PlatformApi>)
            })
            .collect();
        Fleet::launch_apis(apis, replicas, server_config, client_config)
    }

    /// Launches `replicas` servers per entry of an arbitrary platform
    /// roster — any [`PlatformApi`], not just the in-memory simulators.
    /// This is how a disk-backed
    /// [`SegmentedPlatform`](adcomp_platform::SegmentedPlatform) (or a
    /// fault-wrapped platform) joins a fleet: the wire protocol only
    /// sees the trait.
    ///
    /// Each entry's [`InterfaceKind`] is the key later passed to
    /// [`endpoints`](Fleet::endpoints) / [`source`](Fleet::source) /
    /// [`kill`](Fleet::kill); duplicate kinds are rejected.
    pub fn launch_apis(
        apis: Vec<(InterfaceKind, Arc<dyn PlatformApi>)>,
        replicas: usize,
        mut server_config: impl FnMut(InterfaceKind, usize) -> ServerConfig,
        mut client_config: impl FnMut(InterfaceKind, usize) -> ClientConfig,
    ) -> std::io::Result<Fleet> {
        assert!(replicas > 0, "a fleet needs at least one replica");
        assert!(!apis.is_empty(), "a fleet needs at least one platform");
        let mut kinds = Vec::with_capacity(apis.len());
        let mut handles = Vec::with_capacity(apis.len() * replicas);
        let mut sources = Vec::with_capacity(apis.len() * replicas);
        for (kind, platform) in apis {
            assert!(!kinds.contains(&kind), "duplicate fleet interface {kind:?}");
            kinds.push(kind);
            for replica in 0..replicas {
                let handle = serve(
                    platform.clone(),
                    "127.0.0.1:0",
                    server_config(kind, replica),
                )?;
                let client =
                    adcomp_wire::Client::connect_with(handle.addr(), client_config(kind, replica))?;
                let source = RemoteSource::new(client).map_err(std::io::Error::other)?;
                handles.push(Some(handle));
                sources.push(Arc::new(source));
            }
        }
        Ok(Fleet {
            kinds,
            replicas,
            handles: Mutex::new(handles),
            sources,
        })
    }

    fn iface_index(&self, kind: InterfaceKind) -> usize {
        self.kinds
            .iter()
            .position(|k| *k == kind)
            .expect("interface not in this fleet")
    }

    /// Replicas per interface.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The connected endpoint set for one interface, in replica order —
    /// the shape [`EndpointSetFactory`] wants.
    pub fn endpoints(&self, kind: InterfaceKind) -> Vec<Arc<dyn EstimateSource>> {
        let base = self.iface_index(kind) * self.replicas;
        self.sources[base..base + self.replicas]
            .iter()
            .map(|s| s.clone() as Arc<dyn EstimateSource>)
            .collect()
    }

    /// One replica's client, for direct inspection in tests.
    pub fn source(&self, kind: InterfaceKind, replica: usize) -> Arc<RemoteSource> {
        assert!(replica < self.replicas);
        self.sources[self.iface_index(kind) * self.replicas + replica].clone()
    }

    /// An [`EndpointSetFactory`] serving this fleet's endpoint sets, for
    /// [`ExperimentContext::distributed`](adcomp_core::experiments::ExperimentContext::distributed).
    pub fn factory(fleet: &Arc<Fleet>) -> EndpointSetFactory {
        let fleet = fleet.clone();
        Arc::new(move |kind| fleet.endpoints(kind))
    }

    /// Shuts one replica's server down **while audits may be running**.
    /// Its client starts failing with transport errors, the scheduler
    /// marks the endpoint unhealthy and requeues its leased units onto
    /// the survivors. Idempotent: killing a dead replica is a no-op.
    pub fn kill(&self, kind: InterfaceKind, replica: usize) {
        assert!(replica < self.replicas);
        let index = self.iface_index(kind) * self.replicas + replica;
        let handle = self.lock_handles()[index].take();
        if let Some(handle) = handle {
            handle.shutdown();
        }
    }

    /// Drains and joins every still-running server.
    pub fn shutdown(&self) {
        let handles: Vec<_> = self.lock_handles().iter_mut().map(|h| h.take()).collect();
        for handle in handles.into_iter().flatten() {
            handle.shutdown();
        }
    }

    fn lock_handles(&self) -> MutexGuard<'_, Vec<Option<ServerHandle>>> {
        self.handles
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        self.shutdown();
    }
}
