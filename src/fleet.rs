//! Spawning a *fleet* of wire endpoints over one simulation, so the
//! distributed scheduler ([`adcomp_core::ScheduledSource`]) has real
//! replicas to shard across: every replica is a full wire server
//! ([`adcomp_wire::serve`]) wrapping the **same** `Arc<AdPlatform>`,
//! queried through its own [`RemoteSource`] connection.
//!
//! Because all replicas of an interface share one platform instance,
//! any replica answers any query identically — which is exactly the
//! property the scheduler's determinism guarantee rests on. The fleet
//! is what the paper's audits would look like against a load-balanced
//! ads API: many HTTP frontends, one backing estimate service.
//!
//! Used by the scheduler equivalence test, the `fleet_audit` example
//! and the `sched_throughput` bench; see EXPERIMENTS.md ("Distributed
//! audits") for the topology.

use std::sync::{Arc, Mutex, MutexGuard};

use adcomp_core::experiments::EndpointSetFactory;
use adcomp_core::EstimateSource;
use adcomp_platform::{InterfaceKind, Simulation};
use adcomp_wire::{serve, ClientConfig, ServerConfig, ServerHandle};

use crate::RemoteSource;

/// The interfaces a fleet replicates, in a fixed internal order.
const FLEET_INTERFACES: [InterfaceKind; 4] = [
    InterfaceKind::FacebookNormal,
    InterfaceKind::FacebookRestricted,
    InterfaceKind::GoogleDisplay,
    InterfaceKind::LinkedIn,
];

fn iface_index(kind: InterfaceKind) -> usize {
    FLEET_INTERFACES
        .iter()
        .position(|k| *k == kind)
        .expect("known interface")
}

/// `replicas` wire servers per interface plus one connected
/// [`RemoteSource`] client per server.
///
/// Handles are droppable mid-run: [`kill`](Fleet::kill) shuts a single
/// replica down while audits are in flight, which is how the failover
/// tests exercise lease expiry and requeue. Dropping the fleet drains
/// and joins every remaining server.
pub struct Fleet {
    replicas: usize,
    handles: Mutex<Vec<Option<ServerHandle>>>,
    sources: Vec<Arc<RemoteSource>>,
}

impl Fleet {
    /// Launches `replicas` default-configured servers per interface.
    pub fn launch(sim: &Simulation, replicas: usize) -> std::io::Result<Fleet> {
        Fleet::launch_with(
            sim,
            replicas,
            |_, _| ServerConfig::default(),
            |_, _| ClientConfig::fast(),
        )
    }

    /// Launches with per-replica server and client configs (attach a
    /// fault hook to one replica, stretch another's socket timeout so a
    /// kill exercises lease expiry instead of fail-fast requeue, …).
    pub fn launch_with(
        sim: &Simulation,
        replicas: usize,
        mut server_config: impl FnMut(InterfaceKind, usize) -> ServerConfig,
        mut client_config: impl FnMut(InterfaceKind, usize) -> ClientConfig,
    ) -> std::io::Result<Fleet> {
        assert!(replicas > 0, "a fleet needs at least one replica");
        let mut handles = Vec::with_capacity(4 * replicas);
        let mut sources = Vec::with_capacity(4 * replicas);
        for kind in FLEET_INTERFACES {
            let platform = match kind {
                InterfaceKind::FacebookNormal => &sim.facebook,
                InterfaceKind::FacebookRestricted => &sim.facebook_restricted,
                InterfaceKind::GoogleDisplay => &sim.google,
                InterfaceKind::LinkedIn => &sim.linkedin,
            };
            for replica in 0..replicas {
                let handle = serve(
                    platform.clone(),
                    "127.0.0.1:0",
                    server_config(kind, replica),
                )?;
                let client =
                    adcomp_wire::Client::connect_with(handle.addr(), client_config(kind, replica))?;
                let source = RemoteSource::new(client).map_err(std::io::Error::other)?;
                handles.push(Some(handle));
                sources.push(Arc::new(source));
            }
        }
        Ok(Fleet {
            replicas,
            handles: Mutex::new(handles),
            sources,
        })
    }

    /// Replicas per interface.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The connected endpoint set for one interface, in replica order —
    /// the shape [`EndpointSetFactory`] wants.
    pub fn endpoints(&self, kind: InterfaceKind) -> Vec<Arc<dyn EstimateSource>> {
        let base = iface_index(kind) * self.replicas;
        self.sources[base..base + self.replicas]
            .iter()
            .map(|s| s.clone() as Arc<dyn EstimateSource>)
            .collect()
    }

    /// One replica's client, for direct inspection in tests.
    pub fn source(&self, kind: InterfaceKind, replica: usize) -> Arc<RemoteSource> {
        assert!(replica < self.replicas);
        self.sources[iface_index(kind) * self.replicas + replica].clone()
    }

    /// An [`EndpointSetFactory`] serving this fleet's endpoint sets, for
    /// [`ExperimentContext::distributed`](adcomp_core::experiments::ExperimentContext::distributed).
    pub fn factory(fleet: &Arc<Fleet>) -> EndpointSetFactory {
        let fleet = fleet.clone();
        Arc::new(move |kind| fleet.endpoints(kind))
    }

    /// Shuts one replica's server down **while audits may be running**.
    /// Its client starts failing with transport errors, the scheduler
    /// marks the endpoint unhealthy and requeues its leased units onto
    /// the survivors. Idempotent: killing a dead replica is a no-op.
    pub fn kill(&self, kind: InterfaceKind, replica: usize) {
        assert!(replica < self.replicas);
        let handle = self.lock_handles()[iface_index(kind) * self.replicas + replica].take();
        if let Some(handle) = handle {
            handle.shutdown();
        }
    }

    /// Drains and joins every still-running server.
    pub fn shutdown(&self) {
        let handles: Vec<_> = self.lock_handles().iter_mut().map(|h| h.take()).collect();
        for handle in handles.into_iter().flatten() {
            handle.shutdown();
        }
    }

    fn lock_handles(&self) -> MutexGuard<'_, Vec<Option<ServerHandle>>> {
        self.handles
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        self.shutdown();
    }
}
