//! Umbrella crate for the reproduction of *On the Potential for
//! Discrimination via Composition* (Venkatadri & Mislove, IMC 2020).
//!
//! Re-exports the workspace crates under stable module names and provides
//! the glue that lets the audit pipeline run against a platform behind
//! the wire protocol ([`RemoteSource`]).
//!
//! See the repository README for the architecture overview and
//! EXPERIMENTS.md for the paper-versus-measured record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use adcomp_agg as agg;
pub use adcomp_bitset as bitset;
pub use adcomp_core as audit;
pub use adcomp_delivery as delivery;
pub use adcomp_infer as infer;
pub use adcomp_obs as obs;
pub use adcomp_platform as platform;
pub use adcomp_population as population;
pub use adcomp_sched as sched;
pub use adcomp_serve as serve;
pub use adcomp_store as store;
pub use adcomp_targeting as targeting;
pub use adcomp_wire as wire;

pub mod fleet;
pub use fleet::Fleet;

use std::collections::HashMap;
use std::sync::Mutex;

use adcomp_core::{EstimateSource, SourceError};
use adcomp_targeting::{AttributeId, FeatureId, TargetingSpec};
use adcomp_wire::{Client, ClientError, InterfaceDescription};

/// An [`EstimateSource`] backed by a wire-protocol [`Client`], letting
/// every audit in `adcomp-core` run unchanged against a *remote*
/// platform — the audit cannot tell the difference, just as the paper's
/// scripts only saw HTTP endpoints.
///
/// Attribute metadata is fetched lazily and cached; estimates always go
/// to the server.
pub struct RemoteSource {
    client: Client,
    description: InterfaceDescription,
    features: Mutex<HashMap<u32, Option<FeatureId>>>,
    names: Mutex<HashMap<u32, String>>,
}

impl RemoteSource {
    /// Wraps a connected client, fetching the interface description.
    pub fn new(client: Client) -> Result<RemoteSource, ClientError> {
        let description = client.describe()?;
        Ok(RemoteSource {
            client,
            description,
            features: Mutex::new(HashMap::new()),
            names: Mutex::new(HashMap::new()),
        })
    }

    /// Bulk-downloads the whole catalog's metadata through the paginated
    /// endpoint, so subsequent `attribute_name`/`attribute_feature`/
    /// `can_compose` calls are served from cache instead of one
    /// round-trip each. Returns the number of entries fetched.
    pub fn prefetch_catalog(&self) -> Result<usize, ClientError> {
        let mut start = 0u32;
        let mut fetched = 0usize;
        loop {
            let (entries, next) = self.client.catalog_page(start, 1_000)?;
            {
                let mut names = self.lock_names();
                let mut features = self.lock_features();
                for (offset, (name, feature)) in entries.iter().enumerate() {
                    let id = start + offset as u32;
                    names.insert(id, name.clone());
                    features.insert(id, Some(FeatureId(*feature)));
                }
            }
            fetched += entries.len();
            match next {
                Some(n) => start = n,
                None => return Ok(fetched),
            }
        }
    }

    /// Connects and wraps in one step.
    pub fn connect<A: std::net::ToSocketAddrs>(addr: A) -> Result<RemoteSource, ClientError> {
        let client = Client::connect(addr)
            .map_err(|e| ClientError::Transport(adcomp_wire::FrameError::Io(e)))?;
        RemoteSource::new(client)
    }

    /// The cached interface description.
    pub fn description(&self) -> &InterfaceDescription {
        &self.description
    }

    fn feature_cached(&self, id: AttributeId) -> Option<FeatureId> {
        if let Some(f) = self.lock_features().get(&id.0) {
            return *f;
        }
        let fetched = match self.client.attribute_info(id.0) {
            Ok((_, feature)) => Some(FeatureId(feature)),
            Err(_) => None,
        };
        self.lock_features().insert(id.0, fetched);
        fetched
    }

    fn lock_features(&self) -> std::sync::MutexGuard<'_, HashMap<u32, Option<FeatureId>>> {
        self.features
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn lock_names(&self) -> std::sync::MutexGuard<'_, HashMap<u32, String>> {
        self.names
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Maps a wire-client failure onto the audit's error taxonomy, so the
/// resilience layer in `adcomp-core` can classify remote failures
/// exactly like local ones (rate limits stay retryable with their hint,
/// policy rejections stay fatal).
fn map_client_error(e: ClientError) -> SourceError {
    use adcomp_wire::ErrorCode;
    match e {
        ClientError::Server {
            code: ErrorCode::RateLimited,
            retry_after,
            ..
        } => SourceError::RateLimited { retry_after },
        ClientError::Server {
            code: ErrorCode::Internal,
            message,
            ..
        } => SourceError::Platform(adcomp_platform::PlatformError::Transient(message)),
        ClientError::CircuitOpen { retry_in } => SourceError::CircuitOpen { retry_in },
        ClientError::Server { code, message, .. } => {
            SourceError::Rejected(format!("server {code:?}: {message}"))
        }
        other => SourceError::Transport(other.to_string()),
    }
}

impl EstimateSource for RemoteSource {
    fn label(&self) -> String {
        self.description.label.clone()
    }

    fn estimate(&self, spec: &TargetingSpec) -> Result<u64, SourceError> {
        self.client.estimate(spec).map_err(map_client_error)
    }

    fn estimate_batch(&self, specs: &[TargetingSpec]) -> Vec<Result<u64, SourceError>> {
        // Pipelined: the client keeps a window of tagged requests in
        // flight on the one connection instead of paying a round-trip
        // per query.
        self.client
            .estimate_batch(specs)
            .into_iter()
            .map(|r| r.map_err(map_client_error))
            .collect()
    }

    fn batch_window(&self) -> usize {
        self.client.config().pipeline_window.max(1)
    }

    fn check(&self, spec: &TargetingSpec) -> Result<(), SourceError> {
        self.client.check(spec).map_err(map_client_error)
    }

    fn catalog_len(&self) -> u32 {
        self.description.catalog_len
    }

    fn attribute_name(&self, id: AttributeId) -> Option<String> {
        if let Some(name) = self.lock_names().get(&id.0) {
            return Some(name.clone());
        }
        let (name, feature) = self.client.attribute_info(id.0).ok()?;
        self.lock_names().insert(id.0, name.clone());
        self.lock_features().insert(id.0, Some(FeatureId(feature)));
        Some(name)
    }

    fn attribute_feature(&self, id: AttributeId) -> Option<FeatureId> {
        self.feature_cached(id)
    }

    fn can_compose(&self, a: AttributeId, b: AttributeId) -> bool {
        if a == b {
            return false;
        }
        if self.description.same_feature_and {
            true
        } else {
            match (self.feature_cached(a), self.feature_cached(b)) {
                (Some(fa), Some(fb)) => fa != fb,
                _ => false,
            }
        }
    }

    fn supports_demographics(&self) -> bool {
        self.description.gender_targeting && self.description.age_targeting
    }
}
