//! Fleet telemetry acceptance: three audit daemons push metrics and
//! drift alerts into one aggregator over the wire, and the merged view
//! must be exact — fleet counters equal the sum of per-daemon counters,
//! alerts land exactly once per `(source, epoch)` even when a daemon is
//! killed mid-drift and re-delivers on resume, and the audit digests
//! stay byte-identical to a telemetry-free run of the same world.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use adcomp_obs::{Clock, ManualClock};
use discrimination_via_composition::agg::{
    AggService, Aggregator, PusherConfig, Scrape, TelemetryPusher,
};
use discrimination_via_composition::platform::{FaultKind, FaultPlan, Schedule};
use discrimination_via_composition::serve::{
    run_clean, Daemon, FaultInjector, FaultPoint, PushAlertSink, ServeConfig, SimProvider, Tick,
    CHAOS_KILL,
};
use discrimination_via_composition::wire::{serve_service, ServerConfig};

fn tmp_root(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("adcomp-agg-fleet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn daemon_config(root: &std::path::Path) -> ServeConfig {
    let mut cfg = ServeConfig::default_at(root);
    cfg.seed = 2020;
    cfg.max_epochs = 3;
    cfg.interval_ms = 10;
    cfg.epoch_retries = 0;
    cfg.fsync = false;
    cfg.resilient = false;
    cfg
}

/// Noise plus drift at epoch 1: enough four-fifths crossings for every
/// daemon to raise an alert (same plan the serve-crate tests use).
fn drifting_plan() -> FaultPlan {
    FaultPlan::new(41)
        .with(
            FaultKind::Noise { amplitude: 0.35 },
            Schedule::EveryNth {
                period: 2,
                offset: 0,
            },
        )
        .with(
            FaultKind::Drift { rate: 0.0005 },
            Schedule::EveryNth {
                period: 1,
                offset: 0,
            },
        )
}

fn provider(cfg: &ServeConfig) -> Arc<SimProvider> {
    Arc::new(SimProvider::from_config(cfg).with_fault(1, drifting_plan()))
}

/// Kills the daemon once, during the drift stage of epoch 1 — after the
/// alert is journaled and pushed, before `DriftChecked` lands. The
/// resumed incarnation re-runs the stage and re-delivers the alert.
struct KillDuringDrift {
    armed: AtomicBool,
}

impl FaultInjector for KillDuringDrift {
    fn should_die(&self, point: FaultPoint) -> bool {
        matches!(point, FaultPoint::DuringDrift { epoch: 1 })
            && self.armed.swap(false, Ordering::AcqRel)
    }
}

/// Drives a daemon to completion on its manual clock, returning the
/// per-epoch digests. Panics on any error other than a chaos kill.
fn drive(daemon: &mut Daemon, clock: &Arc<ManualClock>) -> Result<Vec<u64>, String> {
    let mut digests = Vec::new();
    loop {
        match daemon.tick() {
            Ok(Tick::Completed { digest, .. }) => digests.push(digest),
            Ok(Tick::Idle { until }) => {
                let now = clock.now();
                if until > now {
                    clock.advance(until - now);
                }
            }
            Ok(Tick::Finished) => return Ok(digests),
            Err(e) if e.to_string().contains(CHAOS_KILL) => return Err(e.to_string()),
            Err(e) => panic!("daemon failed: {e}"),
        }
    }
}

#[test]
fn three_daemons_converge_on_one_aggregator_with_exactly_once_alerts() {
    // ── Baseline: same world, telemetry never attached. ─────────────
    let baseline_root = tmp_root("baseline");
    let baseline_cfg = daemon_config(&baseline_root);
    let baseline = run_clean(&baseline_cfg, provider(&baseline_cfg)).unwrap();
    assert_eq!(baseline.digests.len(), 3);
    assert!(
        baseline.alerted_epochs.contains(&1),
        "the drifting plan must alert at epoch 1: {:?}",
        baseline.alerted_epochs
    );

    // ── The aggregator, served over real TCP. ───────────────────────
    let agg = Arc::new(Aggregator::new());
    let handle = serve_service(
        Arc::new(AggService::new(agg.clone())),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind aggregator");
    let agg_addr = handle.addr().to_string();

    // ── Three daemons, each its own journal root and pusher. ────────
    let mut roots = Vec::new();
    let mut pushers: Vec<Arc<TelemetryPusher>> = Vec::new();
    let mut statuses = Vec::new();
    for i in 0..3usize {
        let source = format!("serve-{i}");
        let root = tmp_root(&source);
        let cfg = daemon_config(&root);
        let pusher = Arc::new(TelemetryPusher::start(PusherConfig::new(
            agg_addr.clone(),
            source.clone(),
        )));
        let clock = Arc::new(ManualClock::new());
        let mut daemon = Daemon::open(cfg.clone(), provider(&cfg), clock.clone())
            .unwrap()
            .with_telemetry(pusher.clone())
            .with_alert_sink(Arc::new(PushAlertSink::new(pusher.clone())));
        let digests = if i == 0 {
            // Daemon 0 dies mid-drift at epoch 1 (alert already pushed)
            // and resumes: the aggregator sees the alert twice.
            daemon = daemon.with_injector(Arc::new(KillDuringDrift {
                armed: AtomicBool::new(true),
            }));
            let killed = drive(&mut daemon, &clock);
            assert!(killed.is_err(), "injector must kill daemon 0");
            drop(daemon);
            let mut revived = Daemon::open(cfg.clone(), provider(&cfg), clock.clone())
                .unwrap()
                .with_telemetry(pusher.clone())
                .with_alert_sink(Arc::new(PushAlertSink::new(pusher.clone())));
            // Epoch 0 completed pre-kill and lives in the journal; the
            // revived incarnation reports epochs 1 and 2.
            let digests = drive(&mut revived, &clock).expect("revived daemon finishes");
            statuses.push(revived.status());
            digests
        } else {
            let digests = drive(&mut daemon, &clock).expect("daemon finishes");
            statuses.push(daemon.status());
            digests
        };
        // Every epoch a daemon *completed* digests identically to the
        // baseline (daemon 0's pre-kill epochs live in its journal).
        for (idx, d) in digests.iter().enumerate() {
            let epoch = baseline.digests.len() - digests.len() + idx;
            assert_eq!(
                *d, baseline.digests[epoch],
                "{source}: epoch {epoch} digest differs from telemetry-free baseline"
            );
        }
        roots.push(root);
        pushers.push(pusher);
    }

    // Everything queued must land before we read the merged view.
    for pusher in &pushers {
        assert!(
            pusher.flush(Duration::from_secs(10)),
            "pusher drained before deadline"
        );
    }

    // ── Fleet counters are the sum of the per-daemon counters. ──────
    let mut sources = agg.sources();
    sources.sort();
    assert_eq!(sources, vec!["serve-0", "serve-1", "serve-2"]);
    let fleet = agg.fleet();
    let fleet_epochs = fleet.counter("adcomp_serve_epochs_total");
    let sum_epochs: u64 = statuses
        .iter()
        .map(|s| s.epochs.load(Ordering::Acquire))
        .sum();
    assert_eq!(fleet_epochs, sum_epochs, "fleet epochs = Σ per-daemon");
    assert_eq!(fleet_epochs, 9, "three daemons × three epochs");
    let fleet_alerts = fleet.counter("adcomp_serve_alerts_total");
    let sum_alerts: u64 = statuses
        .iter()
        .map(|s| s.alerts.load(Ordering::Acquire))
        .sum();
    assert_eq!(fleet_alerts, sum_alerts, "fleet alerts = Σ per-daemon");

    // ── Alerts: exactly once per (source, epoch), dedup visible. ────
    let alerts = agg.alerts();
    let mut seen = std::collections::BTreeSet::new();
    for a in &alerts {
        assert!(
            seen.insert((a.source.clone(), a.epoch)),
            "duplicate alert escaped dedup: {}@{}",
            a.source,
            a.epoch
        );
    }
    for i in 0..3 {
        assert!(
            seen.contains(&(format!("serve-{i}"), 1)),
            "serve-{i} epoch-1 alert observed: {alerts:?}"
        );
    }
    // Daemon 0 delivered its epoch-1 alert at least twice (kill+resume)
    // and the aggregator counted the surplus.
    let scrape = Scrape::parse(&agg.render_prometheus());
    let dups = scrape
        .value("adcomp_agg_duplicate_alerts_total")
        .unwrap_or(0.0);
    assert!(
        dups >= 1.0,
        "resumed drift stage re-delivered the alert (dups={dups})"
    );

    handle.shutdown();
    for pusher in pushers {
        drop(pusher);
    }
    std::fs::remove_dir_all(&baseline_root).ok();
    for root in roots {
        std::fs::remove_dir_all(&root).ok();
    }
}
