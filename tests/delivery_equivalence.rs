//! The delivery simulation must be execution-mode-invisible (ISSUE 9
//! acceptance): the paired-ad delivery table — impression-log digests
//! included — must be byte-identical whether the measurement side runs
//! serially, on a pooled query engine, or sharded across a three-replica
//! wire fleet with one replica killed mid-run. And a recorded delivery
//! audit must survive a coordinator kill+resume without re-issuing a
//! single answered query, proven by platform-side counters.

use std::sync::Arc;

use discrimination_via_composition::audit::experiments::delivery_exp::{
    delivery_table, delivery_table_tsv, delivery_table_with, paired_ad_cell, DELIVERY_INTERFACES,
};
use discrimination_via_composition::audit::experiments::{ExperimentConfig, ExperimentContext};
use discrimination_via_composition::audit::{EngineConfig, QueryEngine, SchedulerConfig};
use discrimination_via_composition::platform::Simulation;
use discrimination_via_composition::store::RunStore;
use discrimination_via_composition::Fleet;

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("adcomp-deliv-eq-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Estimates the backing platforms actually answered. The delivery
/// simulation resolves eligibility through ground-truth audiences
/// (`exact_audience`), which never touches the estimate path — so this
/// counts exactly the resumable, journaled measurement queries.
fn platform_queries(local: &Simulation, remote: &Simulation) -> u64 {
    let count = |sim: &Simulation| {
        sim.facebook.stats().estimates
            + sim.facebook_restricted.stats().estimates
            + sim.google.stats().estimates
            + sim.linkedin.stats().estimates
    };
    count(local) + count(remote)
}

#[test]
fn delivery_table_is_byte_identical_across_execution_modes() {
    let config = ExperimentConfig::test(94);

    // Serial single-endpoint baseline.
    let serial_tsv = delivery_table_tsv(&delivery_table(&ExperimentContext::new(config)).unwrap());

    // Pooled engine: measurement queries fan out over four workers.
    let engine = Arc::new(QueryEngine::new(EngineConfig::with_workers(4)));
    let pooled_ctx = ExperimentContext::new(config);
    let pooled_tsv = delivery_table_tsv(&delivery_table_with(&pooled_ctx, Some(&engine)).unwrap());
    assert_eq!(
        pooled_tsv, serial_tsv,
        "engine-pooled delivery table must be byte-identical to the serial run"
    );

    // Distributed: three wire replicas per interface, one killed before
    // the table runs — requeue onto the survivors must not move a byte.
    let fleet_sim = Simulation::build(config.seed, config.scale);
    let fleet = Arc::new(Fleet::launch(&fleet_sim, 3).unwrap());
    let ctx =
        ExperimentContext::distributed(config, Fleet::factory(&fleet), SchedulerConfig::fast());
    for kind in DELIVERY_INTERFACES {
        fleet.kill(kind, 2);
    }
    let distributed_tsv = delivery_table_tsv(&delivery_table(&ctx).unwrap());
    assert_eq!(
        distributed_tsv, serial_tsv,
        "distributed delivery table must be byte-identical to the serial run"
    );
    fleet.shutdown();
}

#[test]
fn recorded_delivery_run_resumes_without_reissuing_queries() {
    let config = ExperimentConfig::test(95);
    let sched = SchedulerConfig::default(); // long TTL: exactly-once dispatch

    let plain_tsv = delivery_table_tsv(&delivery_table(&ExperimentContext::new(config)).unwrap());

    // Uninterrupted distributed+recorded run: one full run's query budget.
    let ref_dir = temp_dir("ref");
    let ref_fleet_sim = Simulation::build(config.seed, config.scale);
    let ref_fleet = Arc::new(Fleet::launch(&ref_fleet_sim, 3).unwrap());
    let ref_store = Arc::new(RunStore::open(&ref_dir).unwrap());
    let ref_ctx = ExperimentContext::distributed_recorded(
        config,
        ref_store.clone(),
        Fleet::factory(&ref_fleet),
        sched.clone(),
    );
    let ref_tsv = delivery_table_tsv(&delivery_table(&ref_ctx).unwrap());
    assert_eq!(ref_tsv, plain_tsv, "recording must not change the table");
    let full_queries = platform_queries(&ref_ctx.simulation, &ref_fleet_sim);
    assert!(full_queries > 0);
    ref_fleet.shutdown();

    // "Killed coordinator": only the first interface's cell completes.
    let dir = temp_dir("resume");
    let fleet_sim_a = Simulation::build(config.seed, config.scale);
    let fleet_a = Arc::new(Fleet::launch(&fleet_sim_a, 3).unwrap());
    let store_a = Arc::new(RunStore::open(&dir).unwrap());
    let ctx_a = ExperimentContext::distributed_recorded(
        config,
        store_a.clone(),
        Fleet::factory(&fleet_a),
        sched.clone(),
    );
    paired_ad_cell(&ctx_a, DELIVERY_INTERFACES[0]).unwrap();
    let partial_queries = platform_queries(&ctx_a.simulation, &fleet_sim_a);
    assert!(partial_queries > 0);
    drop(ctx_a);
    drop(store_a);
    fleet_a.shutdown();
    drop(fleet_a);

    // Resume: fresh coordinator and fleet, same store. Every answered
    // measurement replays from disk and never reaches an endpoint.
    let fleet_sim_b = Simulation::build(config.seed, config.scale);
    let fleet_b = Arc::new(Fleet::launch(&fleet_sim_b, 3).unwrap());
    let store_b = Arc::new(RunStore::open(&dir).unwrap());
    let ctx_b = ExperimentContext::distributed_recorded(
        config,
        store_b.clone(),
        Fleet::factory(&fleet_b),
        sched.clone(),
    );
    let resumed_tsv = delivery_table_tsv(&delivery_table(&ctx_b).unwrap());
    let resumed_queries = platform_queries(&ctx_b.simulation, &fleet_sim_b);

    assert_eq!(
        resumed_tsv, plain_tsv,
        "resumed delivery table must be byte-identical to the serial run"
    );
    assert_eq!(
        partial_queries + resumed_queries,
        full_queries,
        "coordinator resume must not re-issue answered queries"
    );

    fleet_b.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&ref_dir).ok();
}
