//! End-to-end pipeline tests: the paper's qualitative findings must hold
//! on the simulated platforms, driving everything through the public
//! audit API exactly as the experiment binaries do.

use discrimination_via_composition::audit::experiments::distributions::{
    distributions_for, SetLabel,
};
use discrimination_via_composition::audit::experiments::table1::table1_cell;
use discrimination_via_composition::audit::experiments::{ExperimentConfig, ExperimentContext};
use discrimination_via_composition::audit::{removal_sweep, Direction, Selector, SensitiveClass};
use discrimination_via_composition::platform::InterfaceKind;
use discrimination_via_composition::population::{AgeBucket, Gender};
use std::sync::OnceLock;

fn ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::new(ExperimentConfig::test(777)))
}

const MALE: SensitiveClass = SensitiveClass::Gender(Gender::Male);

#[test]
fn finding1_composition_amplifies_on_restricted_interface() {
    // §4.1: even the sanitized interface yields skewed compositions, and
    // 3-way compositions out-skew 2-way.
    let rows =
        distributions_for(ctx(), InterfaceKind::FacebookRestricted, &[MALE], &[2, 3]).unwrap();
    let stat = |set: SetLabel, f: fn(&discrimination_via_composition::audit::BoxStats) -> f64| {
        rows.iter()
            .find(|r| r.set == set)
            .map(|r| f(&r.stats))
            .unwrap()
    };
    let ind_p90 = stat(SetLabel::Individual, |b| b.p90);
    let top2_p90 = stat(SetLabel::Top(2), |b| b.p90);
    let top3_p90 = stat(SetLabel::Top(3), |b| b.p90);
    assert!(
        ind_p90 > 1.25,
        "individuals already violate four-fifths at p90"
    );
    assert!(top2_p90 > ind_p90);
    assert!(
        top3_p90 > top2_p90,
        "skew grows with arity: {top2_p90} -> {top3_p90}"
    );
    let bot2_p10 = stat(SetLabel::Bottom(2), |b| b.p10);
    assert!(bot2_p10 < stat(SetLabel::Individual, |b| b.p10));
}

#[test]
fn finding2_all_platforms_have_skewed_individuals() {
    // §4.2: every interface has individual options violating four-fifths.
    for kind in discrimination_via_composition::audit::experiments::INTERFACE_ORDER {
        let rows = distributions_for(ctx(), kind, &[MALE], &[2]).unwrap();
        let ind = rows.iter().find(|r| r.set == SetLabel::Individual).unwrap();
        assert!(
            ind.violating > 0.0,
            "{}: some individuals must violate the band",
            kind.label()
        );
    }
}

#[test]
fn finding3_random_pairs_add_modest_skew() {
    // §4.3: random compositions tend to be more skewed than individuals
    // (wider distribution), though far less than the discovered tops.
    let rows = distributions_for(ctx(), InterfaceKind::FacebookNormal, &[MALE], &[2]).unwrap();
    let spread = |set: SetLabel| {
        let r = rows.iter().find(|r| r.set == set).unwrap();
        r.stats.p90 / r.stats.p10
    };
    let ind = spread(SetLabel::Individual);
    let random = spread(SetLabel::Random(2));
    let top = rows
        .iter()
        .find(|r| r.set == SetLabel::Top(2))
        .unwrap()
        .stats
        .p90;
    assert!(
        random > ind * 0.9,
        "random pairs should not be materially tighter than individuals: {random} vs {ind}"
    );
    assert!(
        top > rows
            .iter()
            .find(|r| r.set == SetLabel::Random(2))
            .unwrap()
            .stats
            .p90
    );
}

#[test]
fn finding4_removal_is_insufficient() {
    // §4.3/Fig 3: dropping the most skewed decile of individuals lowers
    // but does not fix compositional skew.
    let target = ctx().target(InterfaceKind::FacebookRestricted);
    let survey = ctx().survey(InterfaceKind::FacebookRestricted).unwrap();
    let sweep = removal_sweep(
        &target,
        survey,
        MALE,
        Direction::Toward,
        &ctx().config.discovery,
        2.0,
        10.0,
    )
    .unwrap();
    let first = sweep.points.first().unwrap();
    let last = sweep.points.last().unwrap();
    assert!(
        last.tail_ratio <= first.tail_ratio,
        "removal reduces the tail"
    );
    assert!(sweep.still_violating_after_removal(), "but does not fix it");
}

#[test]
fn finding5_union_raises_recall() {
    // §4.3/Table 1: top-10 union recall well above top-1.
    let favoured = Selector::Class(SensitiveClass::Gender(Gender::Female));
    let cell = table1_cell(ctx(), InterfaceKind::FacebookNormal, favoured).unwrap();
    assert!(cell.top10_recall as f64 >= cell.top1_recall as f64 * 1.5);
    if let Some(overlap) = cell.median_overlap {
        assert!(overlap < 0.5, "audiences barely overlap: {overlap}");
    }
}

#[test]
fn finding6_age_exclusion_possible_on_linkedin() {
    // Appendix A: "we can effectively exclude older users (for example,
    // users on LinkedIn aged 55+) via targeting compositions."
    let old = SensitiveClass::Age(AgeBucket::A55Plus);
    let rows = distributions_for(ctx(), InterfaceKind::LinkedIn, &[old], &[2]).unwrap();
    let bottom = rows.iter().find(|r| r.set == SetLabel::Bottom(2)).unwrap();
    assert!(
        bottom.stats.p10 < 0.8,
        "bottom compositions must under-represent 55+: p10 = {}",
        bottom.stats.p10
    );
}
