//! End-to-end resilience: the audit must measure *exactly* the same
//! numbers through a flaky wire transport as it does in-process, and a
//! killed probe must resume from its checkpoint without re-issuing the
//! queries it already answered — the properties that make a multi-day
//! audit of a real platform feasible.

use std::sync::Arc;
use std::time::Duration;

use discrimination_via_composition::audit::{
    median_pairwise_overlap, rank_individuals, survey_individuals, top_compositions, union_recall,
    AuditTarget, Direction, DiscoveryConfig, GranularityProbe, ProbeCheckpoint, ResilienceConfig,
    Selector, SensitiveClass, SourceError,
};
use discrimination_via_composition::platform::{
    FaultKind, FaultPlan, FaultyPlatform, RetryPolicy, Schedule, SimScale, Simulation,
};
use discrimination_via_composition::population::Gender;
use discrimination_via_composition::targeting::TargetingSpec;
use discrimination_via_composition::wire::{serve, ClientConfig, FaultPlanHook, ServerConfig};
use discrimination_via_composition::RemoteSource;

/// The Table-1 metrics for one favoured population: median pairwise
/// overlap of the top compositions, top-1 recall, top-k union recall,
/// and the favoured population size. Mirrors `table1_cell` with explicit
/// targets so local and remote runs use byte-identical code paths.
#[derive(Debug, PartialEq)]
struct CellMetrics {
    median_overlap: Option<f64>,
    top1_recall: u64,
    union_recall: u64,
    population: u64,
}

fn table1_metrics(target: &AuditTarget) -> CellMetrics {
    let favoured = Selector::Class(SensitiveClass::Gender(Gender::Male));
    let class = SensitiveClass::Gender(Gender::Male);
    let cfg = DiscoveryConfig {
        top_k: 15,
        ..DiscoveryConfig::default()
    };

    let survey = survey_individuals(target).unwrap();
    let ranked = rank_individuals(&survey, class, Direction::Toward, cfg.min_reach);
    let compositions = top_compositions(target, &survey, &ranked, &cfg).unwrap();
    let specs: Vec<TargetingSpec> = compositions.iter().map(|c| c.spec.clone()).collect();

    let median_overlap =
        median_pairwise_overlap(target, &specs, favoured, 8.min(specs.len())).unwrap();
    let population = target
        .selector_estimate(&TargetingSpec::everyone(), favoured)
        .unwrap();
    let top1_recall = target.selector_estimate(&specs[0], favoured).unwrap();
    let top = &specs[..specs.len().min(5)];
    let union = union_recall(target, top, favoured, top.len()).unwrap();

    CellMetrics {
        median_overlap,
        top1_recall,
        union_recall: union.recall,
        population,
    }
}

/// A deterministic plan mixing every metric-neutral fault: transient
/// server errors, rate-limit rejections with a structured hint, and
/// dropped connections. (Noise/drift faults are deliberately absent —
/// they *should* change the numbers.)
fn lossy_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with(
            FaultKind::Transient,
            Schedule::EveryNth {
                period: 31,
                offset: 7,
            },
        )
        .with(
            FaultKind::RateLimit {
                retry_after: Duration::from_millis(2),
            },
            Schedule::EveryNth {
                period: 41,
                offset: 3,
            },
        )
        .with(
            FaultKind::Drop { mid_frame: false },
            Schedule::EveryNth {
                period: 53,
                offset: 11,
            },
        )
}

#[test]
fn faulty_wire_audit_matches_fault_free_metrics() {
    let sim = Simulation::build(771, SimScale::Test);

    // Fault-free baseline, in-process.
    let local = AuditTarget::for_platform(&sim.linkedin, &sim);
    let baseline = table1_metrics(&local);

    // The same audit through a wire transport that injects transient
    // errors and rate limits at the platform and drops connections at
    // the transport, with the resilient client stack in front.
    let plan = lossy_plan(9);
    let faulty = Arc::new(FaultyPlatform::new(sim.linkedin.clone(), plan.clone()));
    let config = ServerConfig::default().with_fault_hook(Arc::new(FaultPlanHook(plan)));
    let handle = serve(faulty.clone(), "127.0.0.1:0", config).unwrap();
    let client = discrimination_via_composition::wire::Client::connect_with(
        handle.addr(),
        ClientConfig::fast(),
    )
    .unwrap();
    let remote = Arc::new(RemoteSource::new(client).unwrap());
    let resilience = ResilienceConfig {
        retry: RetryPolicy::fast(8),
        degradation: discrimination_via_composition::audit::DegradationPolicy::Abort,
    };
    let target = AuditTarget::direct(remote).with_resilience(resilience);
    let measured = table1_metrics(&target);

    assert_eq!(
        measured, baseline,
        "faults must never change what the audit measures"
    );
    assert!(
        faulty.injected().total() > 0,
        "the plan must actually have fired (otherwise this test proves nothing)"
    );
    handle.shutdown();
}

#[test]
fn killed_probe_resumes_without_reissuing_answered_queries() {
    const SEED: u64 = 402;
    const QUERIES: usize = 60;

    // Clean reference run over its own identical simulation, so its
    // query counters are not polluted by the faulty run.
    let clean_sim = Simulation::build(772, SimScale::Test);
    let clean_handle = serve(
        clean_sim.linkedin.clone(),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let clean_remote = Arc::new(RemoteSource::connect(clean_handle.addr()).unwrap());
    let clean_target = AuditTarget::direct(clean_remote);
    let mut clean_probe = GranularityProbe::new(SEED, QUERIES);
    let clean_report = clean_probe.run(&clean_target).unwrap();
    let clean_estimates = clean_sim.linkedin.stats().estimates;
    clean_handle.shutdown();

    // Faulty run: the connection is dropped once, mid-probe. The client
    // retries nothing (RetryPolicy::none), so the kill surfaces as a
    // transport error and the probe checkpoints where it stood.
    let sim = Simulation::build(772, SimScale::Test);
    let plan = FaultPlan::new(1).with(
        FaultKind::Drop { mid_frame: false },
        Schedule::Once { at: 25 },
    );
    let config = ServerConfig::default().with_fault_hook(Arc::new(FaultPlanHook(plan)));
    let handle = serve(sim.linkedin.clone(), "127.0.0.1:0", config).unwrap();

    let dir = std::env::temp_dir().join(format!("adcomp-fault-path-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("probe.ckpt");

    let brittle = ClientConfig {
        retry: RetryPolicy::none(),
        ..ClientConfig::fast()
    };
    let client =
        discrimination_via_composition::wire::Client::connect_with(handle.addr(), brittle).unwrap();
    let remote = Arc::new(RemoteSource::new(client).unwrap());
    let target = AuditTarget::direct(remote);
    let mut probe = GranularityProbe::new(SEED, QUERIES);
    let err = probe.run_checkpointed(&target, &path, 10).unwrap_err();
    assert!(
        matches!(err, SourceError::Transport(_)),
        "kill must surface as transport: {err}"
    );
    assert!(!probe.completed());
    let answered_before_kill = probe.observations().len() as u64;
    drop(probe);
    drop(target);

    // "Crash" over: a fresh process loads the checkpoint with a fresh
    // (now resilient) client and finishes the probe.
    let checkpoint = ProbeCheckpoint::load(&path).unwrap();
    assert_eq!(checkpoint.observations.len() as u64, answered_before_kill);
    let client = discrimination_via_composition::wire::Client::connect_with(
        handle.addr(),
        ClientConfig::fast(),
    )
    .unwrap();
    let remote = Arc::new(RemoteSource::new(client).unwrap());
    let target = AuditTarget::direct(remote);
    let mut resumed = GranularityProbe::resume(checkpoint);
    let report = resumed.run_checkpointed(&target, &path, 10).unwrap();

    assert_eq!(
        report, clean_report,
        "resumed probe must reproduce the clean run exactly"
    );
    // The decisive count: across kill and resume the platform answered
    // exactly as many estimate queries as the uninterrupted run issued —
    // nothing answered before the kill was ever asked again (the dropped
    // request itself never reached the platform).
    assert_eq!(sim.linkedin.stats().estimates, clean_estimates);

    std::fs::remove_dir_all(&dir).ok();
    handle.shutdown();
}
