//! Auditing lookalike expansion (paper §2.1–2.2 extension): regular
//! Lookalike Audiences replicate a seed's demographic skew, and the
//! restricted interface's "Special Ad Audiences" — which drop explicit
//! demographic features — still inherit skew through attribute
//! co-membership. Measured with the paper's representation-ratio metric.

use discrimination_via_composition::bitset::Bitset;
use discrimination_via_composition::platform::{LookalikeConfig, SimScale, Simulation};
use discrimination_via_composition::population::Gender;
use std::sync::OnceLock;

fn sim() -> &'static Simulation {
    static SIM: OnceLock<Simulation> = OnceLock::new();
    SIM.get_or_init(|| Simulation::build(4242, SimScale::Test))
}

/// Representation ratio toward males of an arbitrary user set, computed
/// from ground truth (this is an audience the advertiser uploads, not a
/// targeting the platform estimates).
fn male_ratio(set: &Bitset) -> f64 {
    let u = sim().facebook.universe();
    let males = u.gender_audience(Gender::Male);
    let females = u.gender_audience(Gender::Female);
    let male_rate = set.intersection_len(males) as f64 / males.len() as f64;
    let female_rate = set.intersection_len(females) as f64 / females.len() as f64;
    male_rate / female_rate
}

/// A male-skewed seed: the most male-leaning attribute's audience.
fn skewed_seed() -> Bitset {
    let fb = &sim().facebook;
    let mut best: Option<(f64, Bitset)> = None;
    for idx in 0..fb.catalog().len() {
        let audience = fb.attribute_audience_raw(idx).unwrap();
        if audience.len() < 500 {
            continue;
        }
        let r = male_ratio(audience);
        if best.as_ref().is_none_or(|(prev, _)| r > *prev) {
            best = Some((r, audience.clone()));
        }
    }
    best.expect("catalog has attributes").1
}

#[test]
fn regular_lookalike_amplifies_reach_while_keeping_skew() {
    let seed = skewed_seed();
    let seed_ratio = male_ratio(&seed);
    assert!(
        seed_ratio > 1.5,
        "seed must be clearly skewed ({seed_ratio:.2})"
    );

    let lal = sim()
        .facebook
        .lookalike(&seed, &LookalikeConfig::default())
        .unwrap();
    assert!(lal.len() >= seed.len() * 4, "expansion grows reach");
    let lal_ratio = male_ratio(&lal);
    assert!(
        lal_ratio > 1.25,
        "lookalike stays outside the four-fifths band ({lal_ratio:.2})"
    );
}

#[test]
fn special_ad_audience_adjustment_is_insufficient() {
    // The restricted interface replaces lookalikes with Special Ad
    // Audiences "adjusted to comply with the audience selection
    // restrictions" (§2.2). The adjustment drops demographic features —
    // but behavioural similarity still carries demographics, so the SAA
    // remains skewed: another instance of the paper's thesis that
    // feature-level mitigations miss outcome-level skew.
    let seed = skewed_seed();
    let regular = sim()
        .facebook
        .lookalike(&seed, &LookalikeConfig::default())
        .unwrap();
    let saa = sim()
        .facebook
        .lookalike(&seed, &LookalikeConfig::special_ad_audience())
        .unwrap();

    let regular_ratio = male_ratio(&regular);
    let saa_ratio = male_ratio(&saa);
    assert!(
        saa_ratio <= regular_ratio + 1e-9,
        "adjustment must not increase skew ({saa_ratio:.2} vs {regular_ratio:.2})"
    );
    assert!(
        saa_ratio > 1.25,
        "SAA still violates the four-fifths band ({saa_ratio:.2})"
    );
}

#[test]
fn lookalike_of_balanced_seed_stays_balanced() {
    // Control: a demographically balanced seed must not acquire skew
    // from the expansion machinery itself.
    let u = sim().facebook.universe();
    let seed: Bitset = (0..u.n_users()).filter(|v| v % 37 == 0).collect();
    let seed_ratio = male_ratio(&seed);
    assert!(
        (0.8..=1.25).contains(&seed_ratio),
        "random seed is balanced"
    );
    let lal = sim()
        .facebook
        .lookalike(&seed, &LookalikeConfig::default())
        .unwrap();
    let lal_ratio = male_ratio(&lal);
    assert!(
        (0.6..=1.6).contains(&lal_ratio),
        "balanced seed must expand roughly balanced ({lal_ratio:.2})"
    );
}
