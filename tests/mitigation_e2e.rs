//! End-to-end test of the §5 mitigation extensions: the outcome-based
//! pre-flight gate and the advertiser anomaly monitor, driven over the
//! wire protocol like a platform-side service would run them.

use std::sync::Arc;

use discrimination_via_composition::audit::{
    measure_spec, rank_individuals, survey_individuals, top_compositions, AdvertiserMonitor,
    AuditTarget, Direction, DiscoveryConfig, PreflightConfig, PreflightGate, PreflightVerdict,
    SensitiveClass,
};
use discrimination_via_composition::platform::{SimScale, Simulation};
use discrimination_via_composition::population::Gender;
use discrimination_via_composition::targeting::TargetingSpec;
use discrimination_via_composition::wire::{serve, ServerConfig};
use discrimination_via_composition::RemoteSource;

#[test]
fn preflight_gate_blocks_discovered_compositions_over_the_wire() {
    let sim = Simulation::build(1234, SimScale::Test);
    // The "platform side" exposes Facebook over TCP; the gate runs as a
    // client of that API — it needs nothing but rounded estimates.
    let handle = serve(sim.facebook.clone(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let remote = Arc::new(RemoteSource::connect(handle.addr()).unwrap());
    let target = AuditTarget::direct(remote);

    let gate = PreflightGate::new(&target, PreflightConfig::default()).unwrap();

    // An adversarial advertiser discovers skewed compositions…
    let male = SensitiveClass::Gender(Gender::Male);
    let survey = survey_individuals(&target).unwrap();
    let cfg = DiscoveryConfig {
        top_k: 30,
        ..DiscoveryConfig::default()
    };
    let ranked = rank_individuals(&survey, male, Direction::Toward, cfg.min_reach);
    let top = top_compositions(&target, &survey, &ranked, &cfg).unwrap();
    assert!(!top.is_empty());

    // …and the gate flags the bulk of them, with per-class evidence.
    let mut flagged = 0;
    for comp in &top {
        match gate.check_measurement(&comp.measurement) {
            PreflightVerdict::Flag { violations } => {
                flagged += 1;
                assert!(violations.iter().any(|(_, r)| *r > 1.25 || *r < 0.8));
            }
            PreflightVerdict::Accept | PreflightVerdict::TooSmall { .. } => {}
        }
    }
    assert!(
        flagged * 2 > top.len(),
        "gate flagged only {flagged}/{} compositions",
        top.len()
    );

    handle.shutdown();
}

#[test]
fn monitor_distinguishes_adversarial_from_honest_advertisers() {
    let sim = Simulation::build(1235, SimScale::Test);
    let target = AuditTarget::for_platform(&sim.facebook, &sim);
    let base = measure_spec(&target, &TargetingSpec::everyone()).unwrap();

    // Adversarial history: the top male-skewed compositions.
    let male = SensitiveClass::Gender(Gender::Male);
    let survey = survey_individuals(&target).unwrap();
    let cfg = DiscoveryConfig {
        top_k: 20,
        ..DiscoveryConfig::default()
    };
    let ranked = rank_individuals(&survey, male, Direction::Toward, cfg.min_reach);
    let adversarial = top_compositions(&target, &survey, &ranked, &cfg).unwrap();

    // Honest history: broad individual targetings near parity.
    let honest: Vec<_> = survey
        .entries
        .iter()
        .filter(|e| {
            e.measurement.total >= 100_000
                && e.ratio(&survey.base, male)
                    .is_some_and(|r| (0.9..=1.1).contains(&r))
        })
        .take(8)
        .collect();
    assert!(
        honest.len() >= 3,
        "need near-parity attributes, got {}",
        honest.len()
    );

    let mut monitor = AdvertiserMonitor::new(0.3, 0.5, 3);
    for comp in adversarial.iter().take(8) {
        monitor.observe("skewco", &comp.measurement, &base);
    }
    for entry in &honest {
        monitor.observe("fairco", &entry.measurement, &base);
    }

    let skew = monitor.report("skewco").unwrap();
    assert!(
        skew.flagged,
        "adversarial advertiser must be flagged: {:?}",
        skew.scores
    );
    let fair = monitor.report("fairco").unwrap();
    assert!(
        !fair.flagged,
        "honest advertiser must not be flagged: {:?}",
        fair.scores
    );
    assert_eq!(monitor.flagged(), vec!["skewco".to_string()]);
}

#[test]
fn gate_accepts_everyone_and_rejects_microtargeting() {
    let sim = Simulation::build(1236, SimScale::Test);
    let target = AuditTarget::for_platform(&sim.facebook, &sim);
    let gate = PreflightGate::new(&target, PreflightConfig::default()).unwrap();
    // Targeting everyone is by definition unskewed.
    let everyone = measure_spec(&target, &TargetingSpec::everyone()).unwrap();
    assert_eq!(gate.check_measurement(&everyone), PreflightVerdict::Accept);
    // Empty-ish audiences are rejected as too small to assess.
    let tiny = discrimination_via_composition::audit::SpecMeasurement {
        total: 500,
        by_gender: [300, 200],
        by_age: [100, 150, 150, 100],
    };
    assert!(matches!(
        gate.check_measurement(&tiny),
        PreflightVerdict::TooSmall { reach: 500 }
    ));
}
