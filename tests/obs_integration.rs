//! The observability acceptance path: an audit driven over a hostile
//! wire transport must leave a complete record in the global registry —
//! non-zero retry, rate-limit, and reconnect counters — plus a trace of
//! the phase and a run report that surfaces all of it. Assertions are
//! deltas around the audited stretch, since the registry is
//! process-global.

use std::sync::Arc;
use std::time::Duration;

use adcomp_obs::{Registry, RunReport, Tracer};
use discrimination_via_composition::audit::{survey_individuals, AuditTarget, ResilienceConfig};
use discrimination_via_composition::platform::{
    FaultKind, FaultPlan, FaultyPlatform, Schedule, SimScale, Simulation,
};
use discrimination_via_composition::wire::{
    serve, Client, ClientConfig, FaultPlanHook, ServerConfig,
};
use discrimination_via_composition::RemoteSource;

/// Sum of a labelled counter across every label combination.
fn counter(snap: &adcomp_obs::Snapshot, name: &str, label: Option<(&str, &str)>) -> u64 {
    snap.counters
        .iter()
        .filter(|(k, _)| {
            k.name == name
                && label.is_none_or(|(lk, lv)| k.labels.iter().any(|(a, b)| a == lk && b == lv))
        })
        .map(|(_, v)| *v)
        .sum()
}

#[test]
fn faulty_wire_audit_leaves_full_observability_record() {
    let before = Registry::global().snapshot();

    let sim = Simulation::build(991, SimScale::Test);
    // Deterministic fault mix: transient errors, rate limits with a
    // structured hint, and dropped connections.
    let plan = FaultPlan::new(5)
        .with(
            FaultKind::Transient,
            Schedule::EveryNth {
                period: 23,
                offset: 4,
            },
        )
        .with(
            FaultKind::RateLimit {
                retry_after: Duration::from_millis(1),
            },
            Schedule::EveryNth {
                period: 29,
                offset: 9,
            },
        )
        .with(
            FaultKind::Drop { mid_frame: false },
            Schedule::EveryNth {
                period: 37,
                offset: 2,
            },
        );
    let faulty = Arc::new(FaultyPlatform::new(sim.linkedin.clone(), plan.clone()));
    let config = ServerConfig::default().with_fault_hook(Arc::new(FaultPlanHook(plan)));
    let handle = serve(faulty, "127.0.0.1:0", config).expect("bind");

    let client = Client::connect_with(handle.addr(), ClientConfig::fast()).expect("connect");
    let remote = Arc::new(RemoteSource::new(client).expect("describe"));
    let target = AuditTarget::direct(remote).with_resilience(ResilienceConfig::standard(991));

    let survey = {
        let _span = Tracer::global().span("test:obs_survey");
        survey_individuals(&target).expect("survey over faulty wire")
    };
    assert!(!survey.entries.is_empty(), "the audit itself succeeded");
    handle.shutdown();

    let after = Registry::global().snapshot();
    let delta = |name: &str, label: Option<(&str, &str)>| {
        counter(&after, name, label) - counter(&before, name, label)
    };

    // Every layer of the stack reported the turbulence it absorbed.
    assert!(
        delta("adcomp_faults_injected_total", None) > 0,
        "the plan injected faults"
    );
    assert!(
        delta("adcomp_retries_total", None) > 0,
        "the resilience layer retried"
    );
    assert!(
        delta(
            "adcomp_wire_retries_total",
            Some(("reason", "rate_limited"))
        ) > 0,
        "the wire client waited out rate limits"
    );
    assert!(
        delta("adcomp_wire_reconnects_total", None) > 0,
        "dropped connections forced reconnects"
    );
    assert!(
        delta("adcomp_wire_frames_total", None) > 0,
        "wire traffic was counted"
    );
    assert_eq!(
        delta("adcomp_skipped_total", None),
        0,
        "nothing was skipped — every spec was eventually answered"
    );

    // The trace ring covers the phase, and the run report surfaces both
    // the phase and the counters.
    assert!(Tracer::global()
        .span_names()
        .iter()
        .any(|n| n == "test:obs_survey"));
    let text = RunReport::new("obs_integration").render();
    assert!(text.contains("test:obs_survey"));
    assert!(text.contains("adcomp_wire_reconnects_total"));
}
