//! Calibration-shape tests: the simulation's aggregate behaviour must
//! match the paper's *directional* findings (who leans which way, what
//! is niche, what violates the band) — the contract DESIGN.md §5 states.

use discrimination_via_composition::audit::experiments::{ExperimentConfig, ExperimentContext};
use discrimination_via_composition::audit::{BoxStats, SensitiveClass};
use discrimination_via_composition::platform::InterfaceKind;
use discrimination_via_composition::population::{AgeBucket, Gender};
use std::sync::OnceLock;

fn ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::new(ExperimentConfig::test(888)))
}

fn individual_ratios(kind: InterfaceKind, class: SensitiveClass) -> Vec<f64> {
    let survey = ctx().survey(kind).unwrap();
    survey
        .entries
        .iter()
        .filter(|e| e.measurement.total >= 10_000)
        .filter_map(|e| e.ratio(&survey.base, class))
        .collect()
}

fn box_of(kind: InterfaceKind, class: SensitiveClass) -> BoxStats {
    BoxStats::from_samples(&individual_ratios(kind, class)).expect("non-empty")
}

const MALE: SensitiveClass = SensitiveClass::Gender(Gender::Male);
const YOUNG: SensitiveClass = SensitiveClass::Age(AgeBucket::A18_24);
const OLD: SensitiveClass = SensitiveClass::Age(AgeBucket::A55Plus);

#[test]
fn linkedin_attributes_lean_male_facebook_lean_female() {
    // Paper §4.2: LinkedIn p90 toward males ≈ 2.09; Facebook ≈ 1.45 with
    // a female lean overall.
    let li = box_of(InterfaceKind::LinkedIn, MALE);
    let fb = box_of(InterfaceKind::FacebookNormal, MALE);
    assert!(
        li.p90 > fb.p90,
        "LinkedIn p90 {} vs Facebook {}",
        li.p90,
        fb.p90
    );
    assert!(li.median > fb.median, "median lean ordering");
    assert!(
        li.p90 > 1.5,
        "LinkedIn must have clearly male-skewed options"
    );
}

#[test]
fn google_and_linkedin_lean_away_from_young_users() {
    // Paper §4.2: Google's and LinkedIn's attributes skew away from
    // 18-24 and toward 55+.
    for kind in [InterfaceKind::GoogleDisplay, InterfaceKind::LinkedIn] {
        let young = box_of(kind, YOUNG);
        let old = box_of(kind, OLD);
        assert!(
            young.median < old.median,
            "{}: young median {} should be below old median {}",
            kind.label(),
            young.median,
            old.median
        );
    }
}

#[test]
fn individual_skew_has_paper_magnitude() {
    // Fig 1 Individual column: p90 ≈ 1.84, p10 ≈ 0.5 on FB-restricted.
    // Shape requirement: both whiskers outside the four-fifths band but
    // single-digit.
    let b = box_of(InterfaceKind::FacebookRestricted, MALE);
    assert!(b.p90 > 1.25 && b.p90 < 6.0, "p90 = {}", b.p90);
    assert!(b.p10 < 0.8 && b.p10 > 0.1, "p10 = {}", b.p10);
    assert!(b.median > 0.5 && b.median < 2.0, "median = {}", b.median);
}

#[test]
fn restricted_interface_is_milder_than_full_interface() {
    // The sanitized catalog drops the most extreme options, so its
    // individual tails sit inside the full interface's.
    let restricted = box_of(InterfaceKind::FacebookRestricted, MALE);
    let full = box_of(InterfaceKind::FacebookNormal, MALE);
    assert!(
        restricted.max <= full.max,
        "restricted max {} must not exceed full max {}",
        restricted.max,
        full.max
    );
    let spread_r = restricted.p90 / restricted.p10;
    let spread_f = full.p90 / full.p10;
    assert!(
        spread_r <= spread_f * 1.05,
        "restricted spread {spread_r} vs full {spread_f}"
    );
}

#[test]
fn population_totals_are_platform_scale() {
    // Fig 5 reference lines: platform-scale sensitive-population totals.
    let fb = ctx().survey(InterfaceKind::FacebookNormal).unwrap();
    let females = fb.base.class_count(SensitiveClass::Gender(Gender::Female));
    assert!(
        (50_000_000..400_000_000).contains(&females),
        "facebook female total {females}"
    );
    let google = ctx().survey(InterfaceKind::GoogleDisplay).unwrap();
    assert!(
        google.base.total > 1_000_000_000,
        "google impressions total {}",
        google.base.total
    );
    let li = ctx().survey(InterfaceKind::LinkedIn).unwrap();
    let li_males = li.base.class_count(MALE);
    let li_females = li.base.class_count(SensitiveClass::Gender(Gender::Female));
    assert!(li_males > li_females, "LinkedIn member base leans male");
}

#[test]
fn individual_recalls_are_niche() {
    // §4.3: median individual recalls are a few percent of the sensitive
    // population.
    let survey = ctx().survey(InterfaceKind::FacebookNormal).unwrap();
    let females = survey
        .base
        .class_count(SensitiveClass::Gender(Gender::Female));
    let mut recalls: Vec<f64> = survey
        .entries
        .iter()
        .filter(|e| e.measurement.total >= 10_000)
        .map(|e| {
            e.measurement
                .class_count(SensitiveClass::Gender(Gender::Female)) as f64
        })
        .collect();
    recalls.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = recalls[recalls.len() / 2];
    let fraction = median / females as f64;
    assert!(
        fraction < 0.25,
        "median individual recall should be a niche fraction, got {fraction}"
    );
}
