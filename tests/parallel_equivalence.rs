//! The worker-pool engine is a pure wall-clock optimisation: every audit
//! result must be byte-identical to the serial path, on every simulated
//! platform, and budget accounting must be exact even when the transport
//! underneath is retrying.

use std::sync::Arc;

use discrimination_via_composition::audit::{
    rank_individuals, survey_individuals, top_compositions, AuditTarget, BudgetedSource, Direction,
    DiscoveryConfig, EngineConfig, QueryBudget, QueryEngine, SensitiveClass, QUERIES_PER_SPEC,
};
use discrimination_via_composition::platform::{
    FaultKind, FaultPlan, InterfaceKind, Schedule, SimScale, Simulation,
};
use discrimination_via_composition::population::Gender;
use discrimination_via_composition::wire::{
    serve, Client, ClientConfig, FaultPlanHook, ServerConfig,
};
use discrimination_via_composition::RemoteSource;

#[test]
fn pooled_audit_is_bit_identical_to_serial_on_every_platform() {
    let sim = Simulation::build(909, SimScale::Test);
    let engine = Arc::new(QueryEngine::new(EngineConfig::with_workers(4)));
    let cfg = DiscoveryConfig {
        top_k: 10,
        ..DiscoveryConfig::default()
    };
    let male = SensitiveClass::Gender(Gender::Male);
    for kind in [
        InterfaceKind::FacebookNormal,
        InterfaceKind::FacebookRestricted,
        InterfaceKind::GoogleDisplay,
        InterfaceKind::LinkedIn,
    ] {
        let platform = match kind {
            InterfaceKind::FacebookNormal => &sim.facebook,
            InterfaceKind::FacebookRestricted => &sim.facebook_restricted,
            InterfaceKind::GoogleDisplay => &sim.google,
            InterfaceKind::LinkedIn => &sim.linkedin,
        };
        let serial = AuditTarget::for_platform(platform, &sim);
        let pooled = serial.with_engine(engine.clone());

        let serial_survey = survey_individuals(&serial).unwrap();
        let pooled_survey = survey_individuals(&pooled).unwrap();
        assert_eq!(serial_survey.base, pooled_survey.base, "{kind:?} base");
        assert_eq!(
            serial_survey.entries, pooled_survey.entries,
            "{kind:?} survey"
        );

        let ranked = rank_individuals(&serial_survey, male, Direction::Toward, cfg.min_reach);
        assert_eq!(
            ranked,
            rank_individuals(&pooled_survey, male, Direction::Toward, cfg.min_reach),
            "{kind:?} ranking"
        );
        let serial_top = top_compositions(&serial, &serial_survey, &ranked, &cfg).unwrap();
        let pooled_top = top_compositions(&pooled, &pooled_survey, &ranked, &cfg).unwrap();
        assert_eq!(serial_top.len(), pooled_top.len(), "{kind:?} top count");
        for (s, p) in serial_top.iter().zip(&pooled_top) {
            assert_eq!(s.attrs, p.attrs, "{kind:?} composition attrs");
            assert_eq!(s.measurement, p.measurement, "{kind:?} measurement");
        }
    }
}

#[test]
fn pipelined_retries_over_a_faulty_wire_never_double_charge_the_budget() {
    // Kill the connection mid-survey: the client reconnects and re-issues
    // the unanswered tail of its pipeline window. The budget sits *above*
    // the transport, so a logical query is charged exactly once no matter
    // how many times the wire has to carry it.
    let sim = Simulation::build(910, SimScale::Test);
    let plan = FaultPlan::new(17).with(
        FaultKind::Drop { mid_frame: false },
        Schedule::Once { at: 9 },
    );
    let config = ServerConfig::default()
        .with_executors(4)
        .with_fault_hook(Arc::new(FaultPlanHook(plan)));
    let handle = serve(sim.linkedin.clone(), "127.0.0.1:0", config).unwrap();
    let client = Client::connect_with(
        handle.addr(),
        ClientConfig {
            pipeline_window: 8,
            ..ClientConfig::default()
        },
    )
    .unwrap();
    let remote = Arc::new(RemoteSource::new(client).unwrap());
    let budgeted = Arc::new(BudgetedSource::new(remote, QueryBudget::capped(100_000)));
    let target = AuditTarget::direct(budgeted.clone())
        .with_engine(Arc::new(QueryEngine::new(EngineConfig::with_workers(4))));

    let survey = survey_individuals(&target).unwrap();
    let logical_queries = (survey.entries.len() as u64 + 1) * QUERIES_PER_SPEC as u64;
    assert_eq!(
        budgeted.used(),
        logical_queries,
        "each logical query must be charged exactly once despite transport retries"
    );

    // And the answers are still the clean in-process answers.
    let local = survey_individuals(&AuditTarget::for_platform(&sim.linkedin, &sim)).unwrap();
    assert_eq!(survey.base, local.base);
    assert_eq!(survey.entries, local.entries);
    handle.shutdown();
}
