//! The audit must be transport-agnostic: running it through the wire
//! protocol ([`RemoteSource`]) must produce the same measurements as
//! running it in-process.

use std::sync::Arc;

use discrimination_via_composition::audit::{
    measure_spec, rank_individuals, survey_individuals, top_compositions, AuditTarget, Direction,
    DiscoveryConfig, EstimateSource, SensitiveClass,
};
use discrimination_via_composition::platform::{SimScale, Simulation};
use discrimination_via_composition::population::Gender;
use discrimination_via_composition::targeting::{AttributeId, TargetingSpec};
use discrimination_via_composition::wire::{serve, ServerConfig};
use discrimination_via_composition::RemoteSource;

#[test]
fn remote_audit_equals_in_process_audit() {
    let sim = Simulation::build(555, SimScale::Test);
    let handle = serve(sim.linkedin.clone(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let remote = Arc::new(RemoteSource::connect(handle.addr()).unwrap());

    // Source-level equivalence.
    assert_eq!(remote.label(), "LinkedIn");
    assert_eq!(remote.catalog_len() as usize, sim.linkedin.catalog().len());
    assert_eq!(
        remote.attribute_name(AttributeId(3)),
        Some(
            sim.linkedin
                .catalog()
                .get(AttributeId(3))
                .unwrap()
                .name
                .clone()
        )
    );
    assert!(remote.supports_demographics());
    assert!(remote.can_compose(AttributeId(0), AttributeId(1)));
    assert!(!remote.can_compose(AttributeId(0), AttributeId(0)));

    // Measurement-level equivalence on a composed, demographically
    // constrained spec.
    let remote_target = AuditTarget::direct(remote);
    let local_target = AuditTarget::for_platform(&sim.linkedin, &sim);
    let spec = TargetingSpec::and_of([AttributeId(0), AttributeId(5)]);
    assert_eq!(
        measure_spec(&remote_target, &spec).unwrap(),
        measure_spec(&local_target, &spec).unwrap()
    );

    // Pipeline-level equivalence: discovery finds the same compositions
    // with the same measurements.
    let male = SensitiveClass::Gender(Gender::Male);
    let cfg = DiscoveryConfig {
        top_k: 20,
        ..DiscoveryConfig::default()
    };
    let remote_survey = survey_individuals(&remote_target).unwrap();
    let local_survey = survey_individuals(&local_target).unwrap();
    assert_eq!(remote_survey.base, local_survey.base);
    let rr = rank_individuals(&remote_survey, male, Direction::Toward, cfg.min_reach);
    let lr = rank_individuals(&local_survey, male, Direction::Toward, cfg.min_reach);
    assert_eq!(rr, lr, "rankings must be identical");
    let rt = top_compositions(&remote_target, &remote_survey, &rr, &cfg).unwrap();
    let lt = top_compositions(&local_target, &local_survey, &lr, &cfg).unwrap();
    assert_eq!(rt.len(), lt.len());
    for (r, l) in rt.iter().zip(&lt) {
        assert_eq!(r.attrs, l.attrs);
        assert_eq!(r.measurement, l.measurement);
    }

    handle.shutdown();
}

#[test]
fn prefetch_catalog_matches_per_id_fetches() {
    let sim = Simulation::build(558, SimScale::Test);
    let handle = serve(sim.facebook.clone(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let bulk = RemoteSource::connect(handle.addr()).unwrap();
    let fetched = bulk.prefetch_catalog().unwrap();
    assert_eq!(fetched as u32, bulk.catalog_len());
    let lazy = RemoteSource::connect(handle.addr()).unwrap();
    for id in (0..bulk.catalog_len()).step_by(17) {
        let id = AttributeId(id);
        assert_eq!(bulk.attribute_name(id), lazy.attribute_name(id));
        assert_eq!(bulk.attribute_feature(id), lazy.attribute_feature(id));
    }
    handle.shutdown();
}

#[test]
fn remote_source_respects_interface_policy() {
    let sim = Simulation::build(556, SimScale::Test);
    let handle = serve(
        sim.facebook_restricted.clone(),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let remote = RemoteSource::connect(handle.addr()).unwrap();
    // Restricted interface: no demographics over the wire either.
    assert!(!remote.supports_demographics());
    let gendered = TargetingSpec::builder().gender(Gender::Male).build();
    assert!(remote.check(&gendered).is_err());
    assert!(remote.estimate(&gendered).is_err());
    assert!(remote
        .estimate(&TargetingSpec::and_of([AttributeId(0)]))
        .is_ok());
    handle.shutdown();
}

#[test]
fn remote_google_exposes_cross_feature_rule() {
    let sim = Simulation::build(557, SimScale::Test);
    let handle = serve(sim.google.clone(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let remote = RemoteSource::connect(handle.addr()).unwrap();
    // Find attributes in both features via the wire metadata.
    let mut first_by_feature = std::collections::HashMap::new();
    for id in 0..remote.catalog_len() {
        let id = AttributeId(id);
        if let Some(f) = remote.attribute_feature(id) {
            first_by_feature.entry(f).or_insert(id);
        }
        if first_by_feature.len() == 2 {
            break;
        }
    }
    let ids: Vec<AttributeId> = first_by_feature.values().copied().collect();
    assert_eq!(ids.len(), 2);
    assert!(remote.can_compose(ids[0], ids[1]));
    let same_feature_pair = [AttributeId(0), AttributeId(1)];
    let same_feature = remote.attribute_feature(same_feature_pair[0])
        == remote.attribute_feature(same_feature_pair[1]);
    if same_feature {
        assert!(!remote.can_compose(same_feature_pair[0], same_feature_pair[1]));
    }
    handle.shutdown();
}
