//! Deterministic replay: a recorded run reproduces its results
//! byte-for-byte with the platform layer fully detached — the offline
//! analogue of re-running the paper's analysis over saved crawl data
//! instead of re-crawling the platforms.

use std::sync::Arc;
use std::time::Duration;

use discrimination_via_composition::audit::experiments::table1::{table1, table1_tsv};
use discrimination_via_composition::audit::experiments::{ExperimentConfig, ExperimentContext};
use discrimination_via_composition::audit::{
    median_pairwise_overlap, rank_individuals, survey_individuals, top_compositions, union_recall,
    AuditTarget, DegradationPolicy, Direction, DiscoveryConfig, ResilienceConfig, Selector,
    SensitiveClass,
};
use discrimination_via_composition::platform::{
    FaultKind, FaultPlan, FaultyPlatform, RetryPolicy, Schedule, SimScale, Simulation,
};
use discrimination_via_composition::population::Gender;
use discrimination_via_composition::store::RunStore;
use discrimination_via_composition::targeting::TargetingSpec;
use discrimination_via_composition::wire::{
    serve, Client, ClientConfig, FaultPlanHook, ServerConfig,
};
use discrimination_via_composition::RemoteSource;

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "adcomp-replay-determinism-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn platform_queries(sim: &Simulation) -> u64 {
    sim.facebook.stats().estimates
        + sim.facebook_restricted.stats().estimates
        + sim.google.stats().estimates
        + sim.linkedin.stats().estimates
}

#[test]
fn recorded_table1_replays_byte_identically_offline() {
    let dir = temp_dir("table1");
    let config = ExperimentConfig::test(7);

    // Record a complete Table-1 run.
    let store = Arc::new(RunStore::open(&dir).unwrap());
    let ctx = ExperimentContext::recorded(config, store.clone());
    let recorded_tsv = table1_tsv(&table1(&ctx).unwrap());
    store.sync().unwrap();
    drop(ctx);
    drop(store);

    // Replay it: targets are reconstructed purely from the store, and
    // the simulation this context owns is never consulted.
    let store = Arc::new(RunStore::open(&dir).unwrap());
    let ctx = ExperimentContext::replayed(config, store.clone());
    let replayed_tsv = table1_tsv(&table1(&ctx).unwrap());

    assert_eq!(
        replayed_tsv, recorded_tsv,
        "replayed Table 1 must be byte-identical to the recorded run"
    );
    assert_eq!(
        platform_queries(&ctx.simulation),
        0,
        "replay must never touch the platform layer"
    );
    assert_eq!(store.stats().appends, 0, "replay never writes the store");

    std::fs::remove_dir_all(&dir).ok();
}

/// The Table-1 metrics for one favoured population, computed with
/// explicit targets so the wire-recorded run and the offline replay use
/// byte-identical code paths (mirrors `tests/fault_path.rs`).
#[derive(Debug, PartialEq)]
struct CellMetrics {
    median_overlap: Option<f64>,
    top1_recall: u64,
    union_recall: u64,
    population: u64,
}

fn table1_metrics(target: &AuditTarget) -> CellMetrics {
    let favoured = Selector::Class(SensitiveClass::Gender(Gender::Male));
    let class = SensitiveClass::Gender(Gender::Male);
    let cfg = DiscoveryConfig {
        top_k: 15,
        ..DiscoveryConfig::default()
    };

    let survey = survey_individuals(target).unwrap();
    let ranked = rank_individuals(&survey, class, Direction::Toward, cfg.min_reach);
    let compositions = top_compositions(target, &survey, &ranked, &cfg).unwrap();
    let specs: Vec<TargetingSpec> = compositions.iter().map(|c| c.spec.clone()).collect();

    let median_overlap =
        median_pairwise_overlap(target, &specs, favoured, 8.min(specs.len())).unwrap();
    let population = target
        .selector_estimate(&TargetingSpec::everyone(), favoured)
        .unwrap();
    let top1_recall = target.selector_estimate(&specs[0], favoured).unwrap();
    let top = &specs[..specs.len().min(5)];
    let union = union_recall(target, top, favoured, top.len()).unwrap();

    CellMetrics {
        median_overlap,
        top1_recall,
        union_recall: union.recall,
        population,
    }
}

/// Metric-neutral faults only (transients, rate limits, dropped
/// connections) — the resilience layer must absorb them, so the recorded
/// answers stay identical to an in-process run.
fn lossy_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with(
            FaultKind::Transient,
            Schedule::EveryNth {
                period: 31,
                offset: 7,
            },
        )
        .with(
            FaultKind::RateLimit {
                retry_after: Duration::from_millis(2),
            },
            Schedule::EveryNth {
                period: 41,
                offset: 3,
            },
        )
        .with(
            FaultKind::Drop { mid_frame: false },
            Schedule::EveryNth {
                period: 53,
                offset: 11,
            },
        )
}

#[test]
fn faulty_wire_run_replays_after_the_platform_is_torn_down() {
    let dir = temp_dir("wire");
    let sim = Simulation::build(616, SimScale::Test);

    // Record a survey plus Table-1 metrics through a faulty wire
    // transport, recorder outermost so the store holds the final
    // post-resilience answers.
    let plan = lossy_plan(5);
    let faulty = Arc::new(FaultyPlatform::new(sim.linkedin.clone(), plan.clone()));
    let server = ServerConfig::default().with_fault_hook(Arc::new(FaultPlanHook(plan)));
    let handle = serve(faulty.clone(), "127.0.0.1:0", server).unwrap();
    let client = Client::connect_with(handle.addr(), ClientConfig::fast()).unwrap();
    let remote = Arc::new(RemoteSource::new(client).unwrap());
    let resilience = ResilienceConfig {
        retry: RetryPolicy::fast(8),
        degradation: DegradationPolicy::Abort,
    };
    let store = Arc::new(RunStore::open(&dir).unwrap());
    let target = AuditTarget::direct(remote)
        .with_resilience(resilience)
        .with_recording(store.clone())
        .unwrap();

    let recorded_survey = survey_individuals(&target).unwrap();
    let recorded_metrics = table1_metrics(&target);
    assert!(
        faulty.injected().total() > 0,
        "the plan must actually have fired (otherwise this test proves nothing)"
    );
    store.sync().unwrap();
    drop(target);
    drop(store);

    // Tear the platform down completely: server gone, simulation gone.
    handle.shutdown();
    drop(sim);

    // Offline replay from the store alone reproduces the survey and the
    // Table-1 metrics byte-for-byte.
    let store = Arc::new(RunStore::open(&dir).unwrap());
    let replay = AuditTarget::from_replay(&store, "LinkedIn").unwrap();
    let replayed_survey = survey_individuals(&replay).unwrap();
    let replayed_metrics = table1_metrics(&replay);

    assert_eq!(replayed_survey.entries, recorded_survey.entries);
    assert_eq!(replayed_survey.base, recorded_survey.base);
    assert_eq!(
        replayed_metrics, recorded_metrics,
        "offline replay must reproduce the Table-1 metrics exactly"
    );

    // And the faults never leaked into the record: the replay matches a
    // clean in-process run of the same simulation seed.
    let clean_sim = Simulation::build(616, SimScale::Test);
    let clean_target = AuditTarget::for_platform(&clean_sim.linkedin, &clean_sim);
    let clean = survey_individuals(&clean_target).unwrap();
    assert_eq!(replayed_survey.entries, clean.entries);

    std::fs::remove_dir_all(&dir).ok();
}
