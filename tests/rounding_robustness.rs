//! Rounding-robustness: the audit computes ratios from rounded estimates
//! only. These tests verify (a) the rounded-data ratios stay close to the
//! ground-truth ratios the simulator can compute exactly, and (b) the
//! paper's interval analysis — the ratio bounds derived from the rounding
//! ladders always contain the exact ratio.

use discrimination_via_composition::audit::{
    measure_spec, ratio_bounds, rep_ratio, rep_ratio_of, AuditTarget, SensitiveClass,
};
use discrimination_via_composition::platform::{SimScale, Simulation};
use discrimination_via_composition::population::Gender;
use discrimination_via_composition::targeting::{AttributeId, TargetingSpec};
use std::sync::OnceLock;

fn sim() -> &'static Simulation {
    static SIM: OnceLock<Simulation> = OnceLock::new();
    SIM.get_or_init(|| Simulation::build(999, SimScale::Test))
}

/// Ground-truth ratio via the simulator's exact sets (what the audit can
/// never see on a real platform).
fn exact_ratio(spec: &TargetingSpec, class: SensitiveClass) -> Option<f64> {
    let fb = &sim().facebook;
    let audience = fb.exact_audience(spec).unwrap();
    let u = fb.universe();
    let (class_set, complement_set) = match class {
        SensitiveClass::Gender(g) => (
            u.gender_audience(g).clone(),
            u.gender_audience(g.other()).clone(),
        ),
        SensitiveClass::Age(a) => {
            let mut complement = adcomp_bitset_everyone(u);
            let class_set = u.age_audience(a).clone();
            complement = complement.and_not(&class_set);
            (class_set, complement)
        }
    };
    rep_ratio(
        audience.intersection_len(&class_set),
        audience.intersection_len(&complement_set),
        class_set.len(),
        complement_set.len(),
    )
}

fn adcomp_bitset_everyone(
    u: &discrimination_via_composition::population::Universe,
) -> discrimination_via_composition::bitset::Bitset {
    u.everyone().clone()
}

#[test]
fn rounded_ratios_track_exact_ratios() {
    let target = AuditTarget::for_platform(&sim().facebook, sim());
    let base = measure_spec(&target, &TargetingSpec::everyone()).unwrap();
    let male = SensitiveClass::Gender(Gender::Male);
    let mut checked = 0;
    for id in 0..40u32 {
        let spec = TargetingSpec::and_of([AttributeId(id)]);
        let m = measure_spec(&target, &spec).unwrap();
        if m.total < 100_000 {
            continue; // tiny audiences have coarse rounding; skip for the tracking check
        }
        let (Some(rounded), Some(exact)) =
            (rep_ratio_of(&m, &base, male), exact_ratio(&spec, male))
        else {
            continue;
        };
        let rel = (rounded - exact).abs() / exact;
        assert!(
            rel < 0.25,
            "attr {id}: rounded {rounded:.3} vs exact {exact:.3} ({rel:.2} rel err)"
        );
        checked += 1;
    }
    assert!(checked >= 10, "need a meaningful sample, got {checked}");
}

#[test]
fn ratio_bounds_contain_exact_ratio() {
    // Paper §3: "we confirm that even allowing for the representation
    // ratios to take their least skewed values (subject to the rounding
    // ranges), we find very similar degrees of skew."
    let target = AuditTarget::for_platform(&sim().facebook, sim());
    let rounding = sim().facebook.config().rounding;
    let base = measure_spec(&target, &TargetingSpec::everyone()).unwrap();
    let male = SensitiveClass::Gender(Gender::Male);
    let mut checked = 0;
    for id in 0..40u32 {
        let spec = TargetingSpec::and_of([AttributeId(id)]);
        let m = measure_spec(&target, &spec).unwrap();
        let (Some(bounds), Some(exact)) = (
            ratio_bounds(&m, &base, male, &rounding),
            exact_ratio(&spec, male),
        ) else {
            continue;
        };
        assert!(
            bounds.lo <= exact && exact <= bounds.hi,
            "attr {id}: exact {exact:.4} outside [{:.4}, {:.4}]",
            bounds.lo,
            bounds.hi
        );
        checked += 1;
    }
    assert!(checked >= 10, "need a meaningful sample, got {checked}");
}

#[test]
fn least_skewed_values_preserve_conclusions() {
    // For clearly skewed attributes, even the least skewed value in the
    // rounding interval stays outside the four-fifths band.
    let target = AuditTarget::for_platform(&sim().facebook, sim());
    let rounding = sim().facebook.config().rounding;
    let base = measure_spec(&target, &TargetingSpec::everyone()).unwrap();
    let male = SensitiveClass::Gender(Gender::Male);
    let mut strong = 0;
    for id in 0..sim().facebook.catalog().len() as u32 {
        let spec = TargetingSpec::and_of([AttributeId(id)]);
        let m = measure_spec(&target, &spec).unwrap();
        if m.total < 100_000 {
            continue;
        }
        let Some(point) = rep_ratio_of(&m, &base, male) else {
            continue;
        };
        if point < 2.0 {
            continue; // only strongly skewed attributes
        }
        let bounds = ratio_bounds(&m, &base, male, &rounding).unwrap();
        assert!(
            bounds.least_skewed() > 1.25,
            "attr {id}: point {point:.2} but least-skewed {:.2} inside band",
            bounds.least_skewed()
        );
        strong += 1;
    }
    assert!(
        strong >= 3,
        "need some strongly skewed attributes, got {strong}"
    );
}
