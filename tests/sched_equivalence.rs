//! The distributed scheduler must be *invisible* in the results: the
//! full Table-1 driver and the individual survey, sharded across three
//! wire replicas per interface — one of them fault-injected, one of
//! them killed partway through the experiment — must produce output
//! byte-identical to the single-endpoint serial run. And a coordinator
//! kill+resume through the run store must, exactly like the
//! single-endpoint guarantee in `tests/store_replay.rs`, never re-issue
//! an answered query to any endpoint — proven with platform-side
//! counters, not scheduler bookkeeping.

use std::sync::Arc;
use std::time::Duration;

use discrimination_via_composition::audit::experiments::table1::{
    favoured_populations, table1, table1_cell, table1_tsv, TABLE1_INTERFACES,
};
use discrimination_via_composition::audit::experiments::{ExperimentConfig, ExperimentContext};
use discrimination_via_composition::audit::{sched_events_in, SchedEvent, SchedulerConfig};
use discrimination_via_composition::platform::{
    FaultKind, FaultPlan, InterfaceKind, Schedule, Simulation,
};
use discrimination_via_composition::store::RunStore;
use discrimination_via_composition::wire::{ClientConfig, FaultPlanHook, ServerConfig};
use discrimination_via_composition::Fleet;

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("adcomp-sched-eq-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Estimates the backing platforms actually answered — targeting-side
/// queries land on `local`, scheduled measurement queries on the
/// fleet's `remote` simulation (same seed, so identical answers).
fn platform_queries(local: &Simulation, remote: &Simulation) -> u64 {
    let count = |sim: &Simulation| {
        sim.facebook.stats().estimates
            + sim.facebook_restricted.stats().estimates
            + sim.google.stats().estimates
            + sim.linkedin.stats().estimates
    };
    count(local) + count(remote)
}

/// A transport-level fault plan for the designated bad replica:
/// connections die at a frame boundary every 23rd request. Frame-drop
/// faults are metric-neutral — the dropped request is never dispatched,
/// the client retries or the scheduler requeues — so the merged results
/// must not move.
fn drop_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed).with(
        FaultKind::Drop { mid_frame: false },
        Schedule::EveryNth {
            period: 89,
            offset: 5,
        },
    )
}

/// Client tuning for fleets whose endpoints are *expected* to die:
/// short socket timeout and barely any client-side retrying, because
/// failover is the scheduler's job — a failed unit requeues onto a
/// healthy replica faster than a retry ladder resurrects a dead one.
fn failfast_client() -> ClientConfig {
    ClientConfig {
        io_timeout: Some(Duration::from_millis(400)),
        retry: discrimination_via_composition::platform::RetryPolicy::fast(1),
        ..ClientConfig::fast()
    }
}

#[test]
fn distributed_table1_is_byte_identical_despite_fault_and_kill() {
    let config = ExperimentConfig::test(91);

    // Serial single-endpoint baseline.
    let serial_ctx = ExperimentContext::new(config);
    let serial_survey = serial_ctx.survey(InterfaceKind::LinkedIn).unwrap().clone();
    let serial_tsv = table1_tsv(&table1(&serial_ctx).unwrap());

    // Three replicas per interface; replica 1 drops connections on a
    // deterministic schedule, replica 2 will be killed mid-experiment.
    let fleet_sim = Simulation::build(config.seed, config.scale);
    let fleet = Arc::new(
        Fleet::launch_with(
            &fleet_sim,
            3,
            |kind, replica| {
                if replica == 1 {
                    ServerConfig::default().with_fault_hook(Arc::new(FaultPlanHook(drop_plan(
                        kind.label().len() as u64,
                    ))))
                } else {
                    ServerConfig::default()
                }
            },
            |_, _| failfast_client(),
        )
        .unwrap(),
    );
    // The aggressive profile: tiny units, a 250 ms lease TTL that the
    // killed replica's 400 ms socket timeout overshoots — so its stuck
    // leases *expire* and requeue rather than waiting out the error.
    let ctx =
        ExperimentContext::distributed(config, Fleet::factory(&fleet), SchedulerConfig::fast());

    // First half of the experiment with all three replicas up…
    let distributed_survey = ctx.survey(InterfaceKind::LinkedIn).unwrap().clone();
    assert_eq!(distributed_survey.entries, serial_survey.entries);
    assert_eq!(distributed_survey.base, serial_survey.base);

    // …then replica 2 of every interface dies mid-run. Its in-flight
    // units either fail fast (closed connection) or expire their
    // leases; both paths requeue onto the survivors.
    for kind in [
        InterfaceKind::FacebookNormal,
        InterfaceKind::FacebookRestricted,
        InterfaceKind::GoogleDisplay,
        InterfaceKind::LinkedIn,
    ] {
        fleet.kill(kind, 2);
    }

    let distributed_tsv = table1_tsv(&table1(&ctx).unwrap());
    assert_eq!(
        distributed_tsv, serial_tsv,
        "distributed Table 1 must be byte-identical to the serial run"
    );
    fleet.shutdown();
}

#[test]
fn coordinator_kill_resume_reissues_no_answered_query() {
    let config = ExperimentConfig::test(92);
    let sched = SchedulerConfig::default(); // 10 s TTL: no expiry, exactly-once dispatch

    // Serial baseline for the final numbers.
    let plain_tsv = table1_tsv(&table1(&ExperimentContext::new(config)).unwrap());

    // Uninterrupted distributed+recorded run: the total platform-side
    // query budget of one complete run.
    let ref_dir = temp_dir("ref");
    let ref_fleet_sim = Simulation::build(config.seed, config.scale);
    let ref_fleet = Arc::new(Fleet::launch(&ref_fleet_sim, 3).unwrap());
    let ref_store = Arc::new(RunStore::open(&ref_dir).unwrap());
    let ref_ctx = ExperimentContext::distributed_recorded(
        config,
        ref_store.clone(),
        Fleet::factory(&ref_fleet),
        sched.clone(),
    );
    let ref_tsv = table1_tsv(&table1(&ref_ctx).unwrap());
    assert_eq!(ref_tsv, plain_tsv, "recording must not change the table");
    let full_queries = platform_queries(&ref_ctx.simulation, &ref_fleet_sim);
    ref_fleet.shutdown();

    // "Killed coordinator": only the first favoured population's row
    // completes, then every handle is dropped — store, fleet, context.
    let dir = temp_dir("resume");
    let fleet_sim_a = Simulation::build(config.seed, config.scale);
    let fleet_a = Arc::new(Fleet::launch(&fleet_sim_a, 3).unwrap());
    let store_a = Arc::new(RunStore::open(&dir).unwrap());
    let ctx_a = ExperimentContext::distributed_recorded(
        config,
        store_a.clone(),
        Fleet::factory(&fleet_a),
        sched.clone(),
    );
    let first_favoured = favoured_populations()[0];
    for kind in TABLE1_INTERFACES {
        table1_cell(&ctx_a, kind, first_favoured).unwrap();
    }
    let partial_queries = platform_queries(&ctx_a.simulation, &fleet_sim_a);
    assert!(partial_queries > 0);
    // The journal must already hold the partial run's unit trail.
    let events_before_kill = sched_events_in(&store_a);
    assert!(
        events_before_kill
            .iter()
            .any(|e| matches!(e, SchedEvent::Completed { .. })),
        "partial run must journal completed units"
    );
    drop(ctx_a);
    drop(store_a);
    fleet_a.shutdown();
    drop(fleet_a);

    // Resume: fresh coordinator, fresh fleet, same store. Everything
    // the partial run answered replays from disk and never reaches any
    // endpoint — the scheduler only ever sees the unanswered tail.
    let fleet_sim_b = Simulation::build(config.seed, config.scale);
    let fleet_b = Arc::new(Fleet::launch(&fleet_sim_b, 3).unwrap());
    let store_b = Arc::new(RunStore::open(&dir).unwrap());
    let ctx_b = ExperimentContext::distributed_recorded(
        config,
        store_b.clone(),
        Fleet::factory(&fleet_b),
        sched.clone(),
    );
    let resumed_tsv = table1_tsv(&table1(&ctx_b).unwrap());
    let resumed_queries = platform_queries(&ctx_b.simulation, &fleet_sim_b);

    assert_eq!(
        resumed_tsv, plain_tsv,
        "resumed distributed Table 1 must be byte-identical to the serial run"
    );
    // The decisive platform-side count: across kill and resume the
    // backing platforms answered exactly one run's worth of estimates —
    // zero answered queries were re-issued to any endpoint.
    assert_eq!(
        partial_queries + resumed_queries,
        full_queries,
        "coordinator resume must not re-issue answered queries"
    );
    // And the resumed run appended its own journal trail after the
    // partial run's (monotonic sequence keys, no overwrites).
    let events_after = sched_events_in(&store_b);
    assert!(events_after.len() > events_before_kill.len());

    fleet_b.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&ref_dir).ok();
}

#[test]
fn lease_ttl_shorter_than_unit_requeues_through_heartbeat_loss() {
    // A scheduler whose lease TTL is far below the time a dead
    // endpoint's socket takes to fail still finishes: expiry requeues
    // the unit while the stuck worker's eventual completion lands
    // `Stale` and is discarded. Single interface to keep it quick.
    let config = ExperimentConfig::test(93);
    let serial = ExperimentContext::new(config)
        .survey(InterfaceKind::GoogleDisplay)
        .unwrap()
        .clone();

    let fleet_sim = Simulation::build(config.seed, config.scale);
    let fleet = Arc::new(
        Fleet::launch_with(
            &fleet_sim,
            3,
            |_, _| ServerConfig::default(),
            |_, _| failfast_client(),
        )
        .unwrap(),
    );
    let sched = SchedulerConfig {
        unit_size: 2,
        lease_ttl: Duration::from_millis(120),
        ..SchedulerConfig::fast()
    };
    let ctx = ExperimentContext::distributed(config, Fleet::factory(&fleet), sched);
    fleet.kill(InterfaceKind::GoogleDisplay, 0);
    let distributed = ctx.survey(InterfaceKind::GoogleDisplay).unwrap().clone();
    assert_eq!(distributed.entries, serial.entries);
    assert_eq!(distributed.base, serial.base);
    fleet.shutdown();
}
