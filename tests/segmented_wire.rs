//! Wire-serving a disk-backed [`SegmentedPlatform`] (ROADMAP follow-on
//! to the 20M-user scaling PR): the wire protocol only sees
//! [`PlatformApi`], so the streamed segment store must be servable and
//! fleet-replicable exactly like the in-memory simulators — and answer
//! byte-identically over the wire.

use std::sync::Arc;

use discrimination_via_composition::audit::{
    measure_spec, rank_individuals, survey_individuals, top_compositions, ApiSource, AuditTarget,
    Direction, DiscoveryConfig, EstimateSource, SensitiveClass,
};
use discrimination_via_composition::platform::{
    Catalog, CategorySpec, EstimateKind, InterfaceKind, Objective, PlatformApi, PlatformConfig,
    RoundingRule, SegmentedPlatform, SkewProfile,
};
use discrimination_via_composition::population::{
    DemographicProfile, Gender, SegmentStore, UniverseConfig, SEGMENT_ALIGN,
};
use discrimination_via_composition::targeting::{
    AttributeId, Capabilities, FeatureId, TargetingSpec,
};
use discrimination_via_composition::wire::{serve, ClientConfig, ServerConfig};
use discrimination_via_composition::{Fleet, RemoteSource};

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("adcomp-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A three-segment store behind the Facebook interface config.
fn segmented_platform(dir: &std::path::Path, seed: u64) -> Arc<SegmentedPlatform> {
    let skew = |lean: f32| {
        let mut s = SkewProfile::neutral().lean_male(lean);
        s.popularity_range = (0.02, 0.35);
        s
    };
    let catalog = Catalog::generate(
        seed ^ 0x5eed,
        &[
            CategorySpec {
                name: "Interests",
                domain: "interests",
                feature: FeatureId(0),
                count: 16,
                skew: skew(0.35),
            },
            CategorySpec {
                name: "Lifestyle",
                domain: "lifestyle",
                feature: FeatureId(1),
                count: 16,
                skew: skew(-0.2),
            },
        ],
    );
    let models: Vec<_> = catalog.entries().iter().map(|e| e.model.clone()).collect();
    let store = SegmentStore::create(
        dir,
        &UniverseConfig {
            n_users: 3 * SEGMENT_ALIGN,
            seed,
            scale: 1.0,
            profile: DemographicProfile::balanced(),
        },
        SEGMENT_ALIGN,
        &models,
        4 << 20,
    )
    .expect("create segment store");
    Arc::new(SegmentedPlatform::new(
        PlatformConfig {
            kind: InterfaceKind::FacebookNormal,
            capabilities: Capabilities::permissive(),
            rounding: RoundingRule::facebook(),
            estimate_kind: EstimateKind::Users,
            supported_objectives: vec![Objective::Reach],
            default_objective: Objective::Reach,
        },
        store,
        catalog,
    ))
}

#[test]
fn wire_served_segment_store_equals_in_process() {
    let dir = temp_dir("segwire");
    let platform = segmented_platform(&dir, 808);

    let handle = serve(
        platform.clone() as Arc<dyn PlatformApi>,
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let remote = Arc::new(RemoteSource::connect(handle.addr()).unwrap());

    // Source-level equivalence.
    assert_eq!(remote.label(), platform.label());
    assert_eq!(remote.catalog_len() as usize, platform.catalog().len());
    assert!(remote.supports_demographics());

    let remote_target = AuditTarget::direct(remote);
    let local_target = AuditTarget::direct(Arc::new(ApiSource(platform.clone())));

    // Measurement-level equivalence on a composed spec.
    let spec = TargetingSpec::and_of([AttributeId(0), AttributeId(17)]);
    assert_eq!(
        measure_spec(&remote_target, &spec).unwrap(),
        measure_spec(&local_target, &spec).unwrap()
    );

    // Pipeline-level equivalence: the full discovery loop sees the same
    // platform through either transport.
    let male = SensitiveClass::Gender(Gender::Male);
    let cfg = DiscoveryConfig {
        top_k: 15,
        min_reach: 50,
        ..DiscoveryConfig::default()
    };
    let remote_survey = survey_individuals(&remote_target).unwrap();
    let local_survey = survey_individuals(&local_target).unwrap();
    assert_eq!(remote_survey.base, local_survey.base);
    let remote_rank = rank_individuals(&remote_survey, male, Direction::Toward, cfg.min_reach);
    let local_rank = rank_individuals(&local_survey, male, Direction::Toward, cfg.min_reach);
    assert_eq!(remote_rank, local_rank, "rankings must be identical");
    let remote_top = top_compositions(&remote_target, &remote_survey, &remote_rank, &cfg).unwrap();
    let local_top = top_compositions(&local_target, &local_survey, &local_rank, &cfg).unwrap();
    assert!(!local_top.is_empty());
    assert_eq!(remote_top.len(), local_top.len());
    for (r, l) in remote_top.iter().zip(&local_top) {
        assert_eq!(r.attrs, l.attrs);
        assert_eq!(r.measurement, l.measurement);
    }

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fleet_replicates_a_segmented_platform() {
    let dir = temp_dir("segfleet");
    let platform = segmented_platform(&dir, 909);
    let baseline = AuditTarget::direct(Arc::new(ApiSource(platform.clone())));
    let spec = TargetingSpec::and_of([AttributeId(2), AttributeId(20)]);
    let expected = measure_spec(&baseline, &spec).unwrap();

    // A fleet over an arbitrary PlatformApi roster: every replica wraps
    // the same store, so any replica answers any query identically.
    let fleet = Fleet::launch_apis(
        vec![(
            InterfaceKind::FacebookNormal,
            platform.clone() as Arc<dyn PlatformApi>,
        )],
        2,
        |_, _| ServerConfig::default(),
        |_, _| ClientConfig::fast(),
    )
    .unwrap();
    assert_eq!(fleet.replicas(), 2);

    let endpoints = fleet.endpoints(InterfaceKind::FacebookNormal);
    assert_eq!(endpoints.len(), 2);
    for replica in 0..2 {
        let source = fleet.source(InterfaceKind::FacebookNormal, replica);
        let via_replica = measure_spec(&AuditTarget::direct(source), &spec).unwrap();
        assert_eq!(
            via_replica, expected,
            "replica {replica} must answer like the in-process store"
        );
    }

    fleet.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
