//! The audit daemon over a *real* wire fleet: epochs are surveyed
//! through `RemoteSource` clients against wire servers, one replica is
//! killed between epochs, and the daemon must degrade — survivors carry
//! the epoch, the degradation is journaled and reported — while the
//! results stay byte-identical to a purely local run of the same world.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use adcomp_obs::{Clock, ManualClock};

use discrimination_via_composition::audit::recording::EpochEvent;
use discrimination_via_composition::audit::EstimateSource;
use discrimination_via_composition::platform::{InterfaceKind, Simulation};
use discrimination_via_composition::serve::{
    run_clean, Daemon, ServeConfig, SimProvider, SourceProvider, Tick,
};
use discrimination_via_composition::Fleet;

fn tmp_root(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("adcomp-serve-fleet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fleet_config(root: &std::path::Path) -> ServeConfig {
    let mut cfg = ServeConfig::default_at(root);
    cfg.seed = 2020;
    cfg.max_epochs = 2;
    cfg.interval_ms = 10;
    cfg.epoch_retries = 0;
    cfg.fsync = false;
    cfg.resilient = false;
    cfg.replicas = 2;
    cfg
}

/// A [`SourceProvider`] whose endpoints are wire clients into a
/// [`Fleet`] — the daemon audits over TCP exactly as it would audit a
/// load-balanced ads API, and never learns the platform is simulated.
struct FleetProvider {
    fleet: Arc<Fleet>,
    kind: InterfaceKind,
}

impl SourceProvider for FleetProvider {
    fn label(&self) -> String {
        self.kind.label().to_string()
    }

    fn endpoints(&self, _epoch: u64) -> Vec<Arc<dyn EstimateSource>> {
        self.fleet.endpoints(self.kind)
    }
}

#[test]
fn fleet_backed_daemon_degrades_on_replica_kill_with_identical_results() {
    // ── Local baseline: same seed, same world, no wire. ─────────────
    let local_root = tmp_root("local");
    let local_cfg = fleet_config(&local_root);
    let baseline = run_clean(&local_cfg, Arc::new(SimProvider::from_config(&local_cfg))).unwrap();
    assert_eq!(baseline.digests.len(), 2);

    // ── Fleet run: two wire replicas, one killed between epochs. ────
    let fleet_root = tmp_root("wire");
    let cfg = fleet_config(&fleet_root);
    let sim = Simulation::build(cfg.seed, cfg.scale);
    let fleet = Arc::new(Fleet::launch(&sim, 2).unwrap());
    let provider = Arc::new(FleetProvider {
        fleet: fleet.clone(),
        kind: cfg.interface,
    });

    let clock = Arc::new(ManualClock::new());
    let mut daemon = Daemon::open(cfg.clone(), provider, clock.clone()).unwrap();
    let mut digests = Vec::new();
    loop {
        match daemon.tick().unwrap() {
            Tick::Completed { epoch, digest, .. } => {
                digests.push(digest);
                if epoch == 0 {
                    // Both replicas answered epoch 0; replica 1 dies
                    // before epoch 1 starts.
                    fleet.kill(cfg.interface, 1);
                }
            }
            Tick::Idle { until } => {
                let now = clock.now();
                if until > now {
                    clock.advance(until - now);
                }
            }
            Tick::Finished => break,
        }
    }

    // Byte-identical to the local run, wire and kill notwithstanding.
    assert_eq!(digests, baseline.digests);

    // Epoch 1 ran degraded — the status counter moved once, the report
    // noted it, and the journal holds a durable Degraded record for
    // epoch 1 and none for epoch 0.
    assert_eq!(daemon.status().degraded.load(Ordering::Acquire), 1);
    assert!(daemon.report().degraded());
    let degraded: Vec<u64> = daemon
        .journal()
        .events()
        .into_iter()
        .filter_map(|e| match e {
            EpochEvent::Degraded { epoch, .. } => Some(epoch),
            _ => None,
        })
        .collect();
    assert_eq!(degraded, vec![1]);

    fleet.shutdown();
    std::fs::remove_dir_all(&local_root).ok();
    std::fs::remove_dir_all(&fleet_root).ok();
}
