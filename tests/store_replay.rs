//! Kill+resume through the run store: any experiment driver wrapped in a
//! [`RecordingSource`] can be killed mid-run and re-run against the same
//! store — answered queries replay from disk, only the unanswered tail
//! reaches the platform, and the final numbers are byte-identical to an
//! uninterrupted run. This extends the checkpoint guarantee the
//! granularity probe already had (see `tests/fault_path.rs`) to the
//! individual survey and the full Table-1 driver.
//!
//! [`RecordingSource`]: discrimination_via_composition::audit::RecordingSource

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use discrimination_via_composition::audit::experiments::table1::{
    favoured_populations, table1, table1_cell, table1_tsv, TABLE1_INTERFACES,
};
use discrimination_via_composition::audit::experiments::{ExperimentConfig, ExperimentContext};
use discrimination_via_composition::audit::{
    survey_individuals, AuditTarget, EstimateSource, SourceError,
};
use discrimination_via_composition::platform::{SimScale, Simulation};
use discrimination_via_composition::store::RunStore;
use discrimination_via_composition::targeting::{AttributeId, FeatureId, TargetingSpec};

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("adcomp-store-replay-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Total estimate queries the simulated platforms actually answered —
/// the ground truth for "did the audit touch the platform again?".
fn platform_queries(sim: &Simulation) -> u64 {
    sim.facebook.stats().estimates
        + sim.facebook_restricted.stats().estimates
        + sim.google.stats().estimates
        + sim.linkedin.stats().estimates
}

/// A transport that dies permanently after `budget` answered estimates —
/// the in-process stand-in for a process kill partway through a run.
struct FailAfter {
    inner: Arc<dyn EstimateSource>,
    remaining: AtomicI64,
}

impl FailAfter {
    fn new(inner: Arc<dyn EstimateSource>, budget: i64) -> FailAfter {
        FailAfter {
            inner,
            remaining: AtomicI64::new(budget),
        }
    }
}

impl EstimateSource for FailAfter {
    fn label(&self) -> String {
        self.inner.label()
    }

    fn estimate(&self, spec: &TargetingSpec) -> Result<u64, SourceError> {
        if self.remaining.fetch_sub(1, Ordering::SeqCst) <= 0 {
            return Err(SourceError::Transport("simulated crash".into()));
        }
        self.inner.estimate(spec)
    }

    fn check(&self, spec: &TargetingSpec) -> Result<(), SourceError> {
        self.inner.check(spec)
    }

    fn catalog_len(&self) -> u32 {
        self.inner.catalog_len()
    }

    fn attribute_name(&self, id: AttributeId) -> Option<String> {
        self.inner.attribute_name(id)
    }

    fn attribute_feature(&self, id: AttributeId) -> Option<FeatureId> {
        self.inner.attribute_feature(id)
    }

    fn can_compose(&self, a: AttributeId, b: AttributeId) -> bool {
        self.inner.can_compose(a, b)
    }

    fn supports_demographics(&self) -> bool {
        self.inner.supports_demographics()
    }
}

#[test]
fn killed_survey_resumes_without_reissuing_answered_queries() {
    const SEED: u64 = 4242;
    let dir = temp_dir("survey-resume");

    // Clean reference run: the entries a survey must produce.
    let clean_sim = Simulation::build(SEED, SimScale::Test);
    let clean_target = AuditTarget::for_platform(&clean_sim.linkedin, &clean_sim);
    let clean = survey_individuals(&clean_target).unwrap();

    // Clean *recorded* run over a throwaway store: how many platform
    // queries a survey costs when answered queries are deduplicated
    // through the store (the apples-to-apples baseline for resume).
    let ref_dir = temp_dir("survey-resume-ref");
    let ref_sim = Simulation::build(SEED, SimScale::Test);
    let ref_store = Arc::new(RunStore::open(&ref_dir).unwrap());
    let ref_target = AuditTarget::for_platform(&ref_sim.linkedin, &ref_sim)
        .with_recording(ref_store.clone())
        .unwrap();
    let reference = survey_individuals(&ref_target).unwrap();
    assert_eq!(reference.entries, clean.entries);
    assert_eq!(reference.base, clean.base);
    let full_queries = ref_sim.linkedin.stats().estimates;

    // "Killed" run: the transport dies after 25 answered estimates. The
    // recorder sits outermost, so everything answered before the crash
    // is already on disk.
    let sim_a = Simulation::build(SEED, SimScale::Test);
    let store_a = Arc::new(RunStore::open(&dir).unwrap());
    let flaky = Arc::new(FailAfter::new(sim_a.linkedin.clone(), 25));
    let target_a = AuditTarget::direct(flaky)
        .with_recording(store_a.clone())
        .unwrap();
    let err = survey_individuals(&target_a).unwrap_err();
    assert!(
        matches!(err, SourceError::Transport(_)),
        "crash must surface as a transport error: {err}"
    );
    let answered_before_crash = sim_a.linkedin.stats().estimates;
    assert!(
        answered_before_crash > 0 && answered_before_crash <= 25,
        "crash must land mid-survey (answered {answered_before_crash})"
    );
    drop(target_a);
    drop(store_a);

    // Resume: a fresh "process" reopens the store. Answered queries
    // replay from disk; only the unanswered tail reaches the platform.
    let sim_b = Simulation::build(SEED, SimScale::Test);
    let store_b = Arc::new(RunStore::open(&dir).unwrap());
    let target_b = AuditTarget::for_platform(&sim_b.linkedin, &sim_b)
        .with_recording(store_b.clone())
        .unwrap();
    let resumed = survey_individuals(&target_b).unwrap();
    let resumed_queries = sim_b.linkedin.stats().estimates;

    assert_eq!(
        resumed.entries, clean.entries,
        "resumed survey must be byte-identical to the clean run"
    );
    assert_eq!(resumed.base, clean.base);
    // The decisive count: across kill and resume the platform answered
    // exactly as many estimates as one uninterrupted run — nothing
    // answered before the crash was ever asked again.
    assert_eq!(
        answered_before_crash + resumed_queries,
        full_queries,
        "resume must not re-issue answered queries"
    );

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&ref_dir).ok();
}

#[test]
fn killed_table1_resumes_and_then_replays_entirely_from_disk() {
    let dir = temp_dir("table1-resume");
    let config = ExperimentConfig::test(33);

    // Plain uninterrupted run: the reference TSV.
    let plain_ctx = ExperimentContext::new(config);
    let plain_tsv = table1_tsv(&table1(&plain_ctx).unwrap());

    // Full recorded run over a throwaway store: the query budget of one
    // complete run with store-level deduplication.
    let ref_dir = temp_dir("table1-resume-ref");
    let ref_store = Arc::new(RunStore::open(&ref_dir).unwrap());
    let ref_ctx = ExperimentContext::recorded(config, ref_store.clone());
    let ref_tsv = table1_tsv(&table1(&ref_ctx).unwrap());
    assert_eq!(ref_tsv, plain_tsv, "recording must not change the table");
    let full_queries = platform_queries(&ref_ctx.simulation);

    // "Killed" run: only the first favoured population's row of cells
    // completes before the run stops.
    let store_a = Arc::new(RunStore::open(&dir).unwrap());
    let ctx_a = ExperimentContext::recorded(config, store_a.clone());
    let first_favoured = favoured_populations()[0];
    for kind in TABLE1_INTERFACES {
        table1_cell(&ctx_a, kind, first_favoured).unwrap();
    }
    let partial_queries = platform_queries(&ctx_a.simulation);
    assert!(partial_queries > 0);
    drop(ctx_a);
    drop(store_a);

    // Resume: reopen the store, run the whole table. Everything the
    // partial run answered is served from disk.
    let store_b = Arc::new(RunStore::open(&dir).unwrap());
    let ctx_b = ExperimentContext::recorded(config, store_b.clone());
    let resumed_tsv = table1_tsv(&table1(&ctx_b).unwrap());
    let resumed_queries = platform_queries(&ctx_b.simulation);
    assert_eq!(
        resumed_tsv, plain_tsv,
        "resumed Table 1 must be byte-identical to an uninterrupted run"
    );
    assert_eq!(
        partial_queries + resumed_queries,
        full_queries,
        "resume must not re-issue answered queries"
    );
    drop(ctx_b);
    drop(store_b);

    // Third run over the now-complete store: the platform is never
    // queried and no new estimate is appended — the run replays entirely
    // from disk while still going through the live-target code path.
    let store_c = Arc::new(RunStore::open(&dir).unwrap());
    let ctx_c = ExperimentContext::recorded(config, store_c.clone());
    let keys_before = store_c.len();
    let replayed_tsv = table1_tsv(&table1(&ctx_c).unwrap());
    assert_eq!(replayed_tsv, plain_tsv);
    assert_eq!(
        platform_queries(&ctx_c.simulation),
        0,
        "a complete store must serve every query"
    );
    assert_eq!(
        store_c.len(),
        keys_before,
        "no new estimates may appear on a pure re-run"
    );

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&ref_dir).ok();
}
