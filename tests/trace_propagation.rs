//! Distributed-tracing acceptance: one estimate driven through the
//! scheduler, over the wire, into the platform must leave a *single*
//! connected span tree spanning both processes' tracers — same trace id
//! in the client's and the server's JSONL sinks, server spans parented
//! to client span ids — and the latency attribution computed from the
//! client sink must decompose the observed end-to-end latency into
//! queue-wait / lease / wire segments that sum to within 5% of the
//! total.
//!
//! The scheduler is configured *serially* (one unit, one worker, one
//! endpoint) so that no two spans of the trace overlap in wall time;
//! that is what makes the exact-decomposition assertion meaningful.
//! Concurrent workers attribute overlapping wall-clock honestly but
//! then segments legitimately sum past the root span.

use std::fs;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Both tests flip the process-global kill switch and the global
/// tracer's sink; serialize them.
static GLOBAL_TRACER: Mutex<()> = Mutex::new(());

use adcomp_obs::{latency_attribution, EventKind, TraceEvent, Tracer};
use discrimination_via_composition::audit::{EstimateSource, ScheduledSource, SchedulerConfig};
use discrimination_via_composition::platform::{SimScale, Simulation};
use discrimination_via_composition::targeting::{AttributeId, TargetingSpec};
use discrimination_via_composition::wire::{serve, ServerConfig};
use discrimination_via_composition::RemoteSource;

fn sink_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("adcomp-trace-{tag}-{}.jsonl", std::process::id()))
}

fn read_events(path: &PathBuf) -> Vec<TraceEvent> {
    let text = fs::read_to_string(path).unwrap_or_default();
    text.lines().filter_map(TraceEvent::from_json).collect()
}

/// A serial scheduler: the whole batch is one unit, claimed by one
/// worker against one endpoint, so spans nest without overlapping.
fn serial_config(batch: usize) -> SchedulerConfig {
    SchedulerConfig {
        unit_size: batch.max(1),
        workers_per_endpoint: 1,
        ..SchedulerConfig::default()
    }
}

#[test]
fn one_estimate_yields_one_cross_process_span_tree() {
    let _serial = GLOBAL_TRACER.lock().unwrap_or_else(|p| p.into_inner());
    adcomp_obs::set_enabled(true);
    let client_sink = sink_path("client");
    let server_sink = sink_path("server");
    let _ = fs::remove_file(&client_sink);
    let _ = fs::remove_file(&server_sink);

    // The server records its continuation spans into its *own* tracer —
    // a genuinely separate event stream, as a second process would be.
    let server_tracer = Arc::new(Tracer::new(4096));
    server_tracer.install_jsonl(&server_sink).unwrap();
    Tracer::global().install_jsonl(&client_sink).unwrap();

    let sim = Simulation::build(4242, SimScale::Test);
    let handle = serve(
        sim.linkedin.clone(),
        "127.0.0.1:0",
        ServerConfig::default().with_tracer(server_tracer.clone()),
    )
    .expect("bind");
    let remote: Arc<dyn EstimateSource> =
        Arc::new(RemoteSource::connect(handle.addr()).expect("connect"));

    let specs: Vec<TargetingSpec> = (0u32..24)
        .map(|i| TargetingSpec::and_of([AttributeId(i)]))
        .collect();
    let scheduled = ScheduledSource::new(vec![remote], serial_config(specs.len()), None);

    let (results, total_us) = {
        let root = Tracer::global().span("audit:estimate");
        let started = std::time::Instant::now();
        let results = scheduled.estimate_batch(&specs);
        let elapsed = started.elapsed().as_micros() as u64;
        drop(root);
        (results, elapsed)
    };
    assert_eq!(results.len(), specs.len());
    assert!(results.iter().all(|r| r.is_ok()), "all estimates answered");
    handle.shutdown();

    Tracer::global().flush();
    server_tracer.flush();
    Tracer::global().remove_sink();
    server_tracer.remove_sink();

    let client_events = read_events(&client_sink);
    let server_events = read_events(&server_sink);
    assert!(!client_events.is_empty(), "client sink captured the audit");
    assert!(
        !server_events.is_empty(),
        "server sink captured continuation spans"
    );

    // One trace id, shared across both processes' sinks.
    let root_trace = client_events
        .iter()
        .find(|e| e.name == "audit:estimate" && e.kind == EventKind::SpanStart)
        .and_then(|e| e.trace_id)
        .expect("root span start in client sink");
    let server_traces: std::collections::BTreeSet<u64> =
        server_events.iter().filter_map(|e| e.trace_id).collect();
    assert_eq!(
        server_traces,
        std::collections::BTreeSet::from([root_trace]),
        "every server-side event belongs to the one client trace"
    );

    // The tree is *connected*: every server continuation span hangs off
    // a span id that exists in the client sink (the wire:rtt spans).
    let client_span_ids: std::collections::BTreeSet<u64> = client_events
        .iter()
        .filter(|e| e.kind == EventKind::SpanStart)
        .map(|e| e.seq)
        .collect();
    let server_roots: Vec<&TraceEvent> = server_events
        .iter()
        .filter(|e| e.kind == EventKind::SpanStart && e.name.starts_with("platform:"))
        .collect();
    assert!(!server_roots.is_empty(), "server continued platform spans");
    for span in &server_roots {
        let parent = span.parent.expect("continuation span has a parent");
        assert!(
            client_span_ids.contains(&parent),
            "server span {} parented to unknown client span {parent}",
            span.seq
        );
    }

    // The client sink decomposes the end-to-end latency: queue-wait,
    // lease, and wire RTT segments that sum back to the observed total.
    let attributions = latency_attribution(&client_events);
    let attr = attributions
        .iter()
        .find(|a| a.root == "audit:estimate")
        .expect("attribution entry for the audit root");
    assert_eq!(attr.trace_id, root_trace);
    assert!(
        attr.segment_us("sched") > 0,
        "sched segment present: {}",
        attr.render()
    );
    assert!(
        attr.segment_us("wire") > 0,
        "wire segment present: {}",
        attr.render()
    );
    let attributed = attr.attributed_us();
    let tolerance = (attr.total_us / 20).max(1);
    assert!(
        attributed.abs_diff(attr.total_us) <= tolerance,
        "segments must sum to the root within 5%: attributed={attributed} total={} ({})",
        attr.total_us,
        attr.render()
    );
    // And the root itself covers the wall clock we measured around it.
    assert!(
        attr.total_us <= total_us.saturating_add(total_us / 10 + 2_000),
        "root span ({} µs) tracks observed e2e latency ({total_us} µs)",
        attr.total_us
    );

    fs::remove_file(&client_sink).ok();
    fs::remove_file(&server_sink).ok();
}

#[test]
fn kill_switch_suppresses_trace_frames_entirely() {
    let _serial = GLOBAL_TRACER.lock().unwrap_or_else(|p| p.into_inner());
    let sink = sink_path("disabled");
    let _ = fs::remove_file(&sink);

    let sim = Simulation::build(4243, SimScale::Test);
    let server_tracer = Arc::new(Tracer::new(1024));
    server_tracer.install_jsonl(&sink).unwrap();
    let handle = serve(
        sim.facebook.clone(),
        "127.0.0.1:0",
        ServerConfig::default().with_tracer(server_tracer.clone()),
    )
    .expect("bind");
    let remote: Arc<dyn EstimateSource> =
        Arc::new(RemoteSource::connect(handle.addr()).expect("connect"));
    let specs: Vec<TargetingSpec> = (0u32..8)
        .map(|i| TargetingSpec::and_of([AttributeId(i)]))
        .collect();

    adcomp_obs::set_enabled(false);
    let scheduled = ScheduledSource::new(vec![remote], serial_config(specs.len()), None);
    let root = Tracer::global().span("audit:disabled");
    let results = scheduled.estimate_batch(&specs);
    drop(root);
    adcomp_obs::set_enabled(true);

    assert!(results.iter().all(|r| r.is_ok()));
    handle.shutdown();
    server_tracer.flush();
    server_tracer.remove_sink();

    // With the kill switch off no Traced frames crossed the wire, so
    // the server tracer saw nothing to continue.
    let events = read_events(&sink);
    assert!(
        events.iter().all(|e| !e.name.starts_with("platform:")),
        "no continuation spans while disabled: {events:?}"
    );
    fs::remove_file(&sink).ok();
}
