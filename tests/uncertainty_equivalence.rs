//! The uncertainty table must be execution-mode-invisible (ISSUE 10
//! acceptance): the scenario-family table — bootstrap replicates
//! included — must be byte-identical whether it runs serially, on a
//! pooled query engine, or recorded-then-resumed after a coordinator
//! kill, with zero answered queries re-issued (proven by platform-side
//! counters). On top of that, the verdicts must be *right*: oracle
//! attributes reduce every confident verdict to its point band, the
//! loaded job ad's delivery sits confidently under the four-fifths
//! line, and a high-error observation channel degrades the delivery
//! verdict to `Indeterminate` rather than silently calling it clean.

use std::sync::{Arc, Mutex};

use discrimination_via_composition::audit::experiments::uncertainty_exp::{
    scenario_family, uncertainty_cells, uncertainty_table_with, uncertainty_tsv, Scenario, Stage,
    UncertaintyConfig,
};
use discrimination_via_composition::audit::experiments::{ExperimentConfig, ExperimentContext};
use discrimination_via_composition::audit::{EngineConfig, QueryEngine, SkewBand};
use discrimination_via_composition::infer::RatioVerdict;
use discrimination_via_composition::platform::AdPlatform;
use discrimination_via_composition::population::AttributeInference;
use discrimination_via_composition::store::RunStore;

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("adcomp-unc-eq-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Small bootstrap, fixed confidence: the same `ucfg` in every mode so
/// byte-equality of the TSVs is exactly execution-mode equivalence.
fn ucfg() -> UncertaintyConfig {
    UncertaintyConfig {
        replicates: 24,
        confidence: 0.95,
    }
}

#[test]
fn uncertainty_table_is_byte_identical_serial_vs_pooled_and_verdicts_hold() {
    let config = ExperimentConfig::test(101);
    let ucfg = ucfg();

    let serial = uncertainty_table_with(
        config,
        &ucfg,
        |_, config| ExperimentContext::new(config),
        None,
    )
    .unwrap();
    let serial_tsv = uncertainty_tsv(&serial);

    // Pooled engine: measurement queries AND bootstrap replicates fan
    // out over four workers.
    let engine = Arc::new(QueryEngine::new(EngineConfig::with_workers(4)));
    let pooled = uncertainty_table_with(
        config,
        &ucfg,
        |_, config| ExperimentContext::new(config),
        Some(&engine),
    )
    .unwrap();
    assert_eq!(
        uncertainty_tsv(&pooled),
        serial_tsv,
        "engine-pooled uncertainty table must be byte-identical to the serial run"
    );

    // Oracle attributes: the observation channel is exact, so every
    // ratio is identified and a verdict may differ from its point band
    // only as an honest Indeterminate — the residual sampling/rounding
    // interval genuinely straddling a four-fifths edge — never as a
    // *different* determinate band.
    let oracle: Vec<_> = serial.iter().filter(|c| c.scenario == "oracle").collect();
    assert!(!oracle.is_empty());
    for cell in &oracle {
        assert!(
            cell.ratio.identified,
            "oracle {} {} cell must be identified",
            cell.interface,
            cell.stage.label()
        );
        let expected = match cell.point_band {
            SkewBand::Under => RatioVerdict::Under,
            SkewBand::Within => RatioVerdict::Within,
            SkewBand::Over => RatioVerdict::Over,
        };
        let verdict = cell.verdict();
        assert!(
            verdict == expected
                || (verdict == RatioVerdict::Indeterminate && cell.ratio.straddles_four_fifths()),
            "oracle {} {} {:?}: verdict {verdict:?} contradicts point band {:?}",
            cell.interface,
            cell.stage.label(),
            cell.creative,
            cell.point_band
        );
    }

    // MNAR missingness is the other high-uncertainty axis: a quarter of
    // the panel unobservable (and not at random) must push every
    // delivery verdict to Indeterminate, not to a confident call.
    for cell in serial
        .iter()
        .filter(|c| c.scenario == "missing" && c.stage == Stage::Delivery)
    {
        assert_eq!(
            cell.verdict(),
            RatioVerdict::Indeterminate,
            "missing-panel {} {:?} delivery cell must be Indeterminate",
            cell.interface,
            cell.creative
        );
    }

    // The loaded job ad (delivery stage, Facebook) under oracle
    // attributes: confidently under the four-fifths line — the whole
    // 95% interval below 0.8, not just the point.
    let job = oracle
        .iter()
        .find(|c| {
            c.stage == Stage::Delivery && c.interface == "Facebook" && c.creative == Some("job")
        })
        .expect("oracle Facebook job delivery cell");
    assert_eq!(job.verdict(), RatioVerdict::Under);
    assert!(
        job.ratio.interval.hi < 0.8,
        "loaded creative's interval must sit entirely below four-fifths, got hi {}",
        job.ratio.interval.hi
    );
    assert!(job.ratio.confidence >= 0.95);
}

#[test]
fn high_error_channel_degrades_delivery_verdict_to_indeterminate() {
    // Near-half gender error: sensitivity + specificity - 1 = 0.2, so
    // deconvolution amplifies every count fluctuation fivefold. The
    // honest answer is "cannot tell", and the verdict must say so
    // rather than flip to Within.
    let mut config = ExperimentConfig::test(101);
    let scenario = Scenario {
        name: "extreme",
        inference: Some(AttributeInference::noisy(101, 0.40, 0.40)),
    };
    config.inference = scenario.inference;
    let ctx = ExperimentContext::new(config);
    let cells = uncertainty_cells(&ctx, &scenario, &ucfg(), None).unwrap();
    let delivery: Vec<_> = cells
        .iter()
        .filter(|c| c.stage == Stage::Delivery)
        .collect();
    assert!(!delivery.is_empty());
    for cell in &delivery {
        // No delivery cell may be declared clean through a channel this
        // noisy — not even the baseline creative, which really is near
        // parity on the ground.
        assert_ne!(
            cell.verdict(),
            RatioVerdict::Within,
            "high-error {} {:?} delivery verdict must never flip to Within",
            cell.interface,
            cell.creative
        );
    }
    for cell in delivery.iter().filter(|c| c.creative == Some("baseline")) {
        assert_eq!(
            cell.verdict(),
            RatioVerdict::Indeterminate,
            "high-error {} baseline delivery verdict must degrade to Indeterminate",
            cell.interface
        );
    }
}

#[test]
fn recorded_uncertainty_run_resumes_without_reissuing_queries() {
    let config = ExperimentConfig::test(102);
    let ucfg = ucfg();

    let plain_tsv = uncertainty_tsv(
        &uncertainty_table_with(
            config,
            &ucfg,
            |_, config| ExperimentContext::new(config),
            None,
        )
        .unwrap(),
    );

    // The `make_ctx` hook: each scenario records into its own store
    // directory (record keys are per-interface, and the same question
    // has different answers under different observation channels), and
    // the platform Arcs are stashed so the platform-side query counters
    // outlive the contexts that issued the queries.
    type Platforms = Arc<Mutex<Vec<Arc<AdPlatform>>>>;
    let hook = |dir: std::path::PathBuf, platforms: Platforms| {
        move |scenario: &Scenario, config: ExperimentConfig| {
            let store = Arc::new(RunStore::open(dir.join(scenario.name)).unwrap());
            let ctx = ExperimentContext::recorded(config, store);
            let sim = &ctx.simulation;
            platforms.lock().unwrap().extend([
                sim.facebook.clone(),
                sim.facebook_restricted.clone(),
                sim.google.clone(),
                sim.linkedin.clone(),
            ]);
            ctx
        }
    };
    let total = |platforms: &Platforms| -> u64 {
        platforms
            .lock()
            .unwrap()
            .iter()
            .map(|p| p.stats().estimates)
            .sum()
    };

    // Uninterrupted recorded run: one full run's query budget.
    let ref_dir = temp_dir("ref");
    let ref_platforms: Platforms = Default::default();
    let ref_tsv = uncertainty_tsv(
        &uncertainty_table_with(
            config,
            &ucfg,
            hook(ref_dir.clone(), ref_platforms.clone()),
            None,
        )
        .unwrap(),
    );
    assert_eq!(ref_tsv, plain_tsv, "recording must not change the table");
    let full_queries = total(&ref_platforms);
    assert!(full_queries > 0);

    // "Killed coordinator": only the first scenario's cells complete.
    let dir = temp_dir("resume");
    let partial_platforms: Platforms = Default::default();
    let scenarios = scenario_family(config.seed);
    {
        let make = hook(dir.clone(), partial_platforms.clone());
        let mut partial_config = config;
        partial_config.inference = scenarios[0].inference;
        let ctx = make(&scenarios[0], partial_config);
        uncertainty_cells(&ctx, &scenarios[0], &ucfg, None).unwrap();
    } // context and store dropped: the kill
    let partial_queries = total(&partial_platforms);
    assert!(partial_queries > 0);

    // Resume: fresh contexts, same stores. The first scenario replays
    // wholly from disk and never reaches a platform.
    let resumed_platforms: Platforms = Default::default();
    let resumed_tsv = uncertainty_tsv(
        &uncertainty_table_with(
            config,
            &ucfg,
            hook(dir.clone(), resumed_platforms.clone()),
            None,
        )
        .unwrap(),
    );
    let resumed_queries = total(&resumed_platforms);

    assert_eq!(
        resumed_tsv, plain_tsv,
        "resumed uncertainty table must be byte-identical to the serial run"
    );
    assert_eq!(
        partial_queries + resumed_queries,
        full_queries,
        "coordinator resume must not re-issue answered queries"
    );

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&ref_dir).ok();
}
